"""Resilience primitives: the system degrades instead of dying.

The paper's operational premise (Sections 3 and 6) is that failures and
load spikes are routine at Tencent scale. This package supplies the four
reusable guards the serving and ingestion paths are built on:

* :class:`Deadline` — a time budget created at the top of a request and
  propagated through nested calls, so slow dependencies are cut off
  instead of waited out.
* :class:`RetryPolicy` / :class:`RetryBudget` — exponential backoff with
  deterministic jitter and per-caller budgets, so transient failures
  (master failover, data-server restarts) are absorbed without retry
  storms.
* :class:`CircuitBreaker` — closed/open/half-open with probe recovery,
  so known-unhealthy dependencies fail fast and are re-admitted
  gradually.
* :class:`LoadShedder` — bounded admission per window with priority
  classes and drop accounting, so overload squeezes out low-priority
  traffic first.

Everything takes injected clocks/seeds, so chaos runs replay
deterministically.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    Transition,
)
from repro.resilience.deadline import Deadline
from repro.resilience.retry import RetryBudget, RetryPolicy
from repro.resilience.shedder import DEFAULT_THRESHOLDS, LoadShedder

__all__ = [
    "CLOSED",
    "DEFAULT_THRESHOLDS",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "Deadline",
    "LoadShedder",
    "RetryBudget",
    "RetryPolicy",
    "Transition",
]
