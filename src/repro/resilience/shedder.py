"""Load shedding: bounded admission with priority classes.

A front end that admits every query during a spike serves all of them
badly; one that sheds the overflow serves the admitted ones within
their deadlines and answers the shed ones from the cheap end of the
degradation ladder. :class:`LoadShedder` models the bounded admission
queue as a per-window token pool (the window standing in for the queue
drain rate): each window admits at most ``capacity`` queries, and each
priority class is cut off at its own fraction of that capacity, so low
priority traffic is shed first and high priority traffic can always use
the full queue.

Every decision is accounted per class — shed counts are a first-class
monitoring signal, not a side effect.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import ConfigurationError, OverloadError

DEFAULT_THRESHOLDS: dict[str, float] = {
    "high": 1.0,
    "normal": 0.8,
    "low": 0.5,
}


class LoadShedder:
    """Admits at most ``capacity`` requests per ``window`` seconds.

    Parameters
    ----------
    now:
        Clock source; window roll-over is purely time-based.
    capacity:
        Admission slots per window across all classes.
    window:
        Window length in seconds.
    thresholds:
        priority -> fraction of ``capacity`` that class may fill the
        window up to. A class is shed once current admissions reach its
        fraction, so classes with lower fractions are squeezed out
        first.
    """

    def __init__(
        self,
        now: Callable[[], float],
        capacity: int,
        window: float = 1.0,
        thresholds: Mapping[str, float] | None = None,
    ):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1: {capacity}")
        if window <= 0:
            raise ConfigurationError(f"window must be positive: {window}")
        thresholds = dict(
            DEFAULT_THRESHOLDS if thresholds is None else thresholds
        )
        if not thresholds:
            raise ConfigurationError("need at least one priority class")
        for priority, fraction in thresholds.items():
            if not 0.0 < fraction <= 1.0:
                raise ConfigurationError(
                    f"threshold for {priority!r} must be in (0, 1]: {fraction}"
                )
        self._now = now
        self.capacity = capacity
        self.window = float(window)
        self.thresholds = thresholds
        self._window_started = now()
        self._window_admitted = 0
        self.windows = 1
        self.admitted: dict[str, int] = {p: 0 for p in thresholds}
        self.shed: dict[str, int] = {p: 0 for p in thresholds}

    def _roll_window(self):
        elapsed = self._now() - self._window_started
        if elapsed >= self.window:
            # skip forward in whole windows so long idle gaps do not bank
            # admission slots
            skipped = int(elapsed // self.window)
            self._window_started += skipped * self.window
            self._window_admitted = 0
            self.windows += skipped

    def _limit_for(self, priority: str) -> int:
        try:
            fraction = self.thresholds[priority]
        except KeyError:
            raise ConfigurationError(
                f"unknown priority {priority!r}; known: "
                f"{sorted(self.thresholds)}"
            ) from None
        return max(1, int(self.capacity * fraction))

    def try_admit(self, priority: str = "normal") -> bool:
        """Admit one request of ``priority``; False means shed it."""
        limit = self._limit_for(priority)
        self._roll_window()
        if self._window_admitted >= limit:
            self.shed[priority] += 1
            return False
        self._window_admitted += 1
        self.admitted[priority] += 1
        return True

    def admit(self, priority: str = "normal"):
        """Like :meth:`try_admit` but raises :class:`OverloadError`."""
        if not self.try_admit(priority):
            raise OverloadError(
                f"shed {priority!r} request: window at "
                f"{self._window_admitted}/{self._limit_for(priority)}"
            )

    # -- accounting --------------------------------------------------------

    def total_admitted(self) -> int:
        return sum(self.admitted.values())

    def total_shed(self) -> int:
        return sum(self.shed.values())

    def shed_rate(self) -> float:
        """Fraction of all offered requests that were shed."""
        offered = self.total_admitted() + self.total_shed()
        return self.total_shed() / offered if offered else 0.0

    def __repr__(self) -> str:
        return (
            f"LoadShedder(capacity={self.capacity}/{self.window}s, "
            f"admitted={self.total_admitted()}, shed={self.total_shed()})"
        )
