"""Circuit breakers: fast failure for known-unhealthy dependencies.

Retries handle blips; breakers handle outages. Once a dependency has
failed enough times in a row, continuing to call it buys nothing except
latency (each caller waits out its deadline before degrading) and load
(the struggling dependency is hammered hardest exactly when it is
trying to recover). The breaker trades those calls for an immediate
:class:`~repro.errors.CircuitOpenError`, which the serving ladder turns
into a degraded-but-instant answer.

States follow the classic three-way machine:

* **closed** — calls flow; ``failure_threshold`` consecutive failures
  open the breaker.
* **open** — calls are rejected without being tried until
  ``recovery_time`` has elapsed.
* **half-open** — up to ``probe_count`` trial calls are let through;
  the first failure re-opens, ``probe_count`` successes re-close.

Time comes from an injected ``now`` so chaos runs are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import CircuitOpenError, ConfigurationError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class Transition:
    """One state change, for monitoring and post-hoc chaos assertions."""

    at: float
    from_state: str
    to_state: str


class CircuitBreaker:
    """Closed/open/half-open breaker with probe-based recovery."""

    def __init__(
        self,
        now: Callable[[], float],
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        probe_count: int = 1,
        name: str = "breaker",
    ):
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1: {failure_threshold}"
            )
        if recovery_time <= 0:
            raise ConfigurationError(
                f"recovery_time must be positive: {recovery_time}"
            )
        if probe_count < 1:
            raise ConfigurationError(f"probe_count must be >= 1: {probe_count}")
        self._now = now
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_time = float(recovery_time)
        self.probe_count = probe_count
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.rejections = 0
        self.opens = 0
        self.transitions: list[Transition] = []

    # -- state machine -----------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, with the time-based open -> half-open edge
        applied (reading the state can move it, never the counters)."""
        self._maybe_enter_half_open()
        return self._state

    def _set_state(self, to_state: str):
        if to_state == self._state:
            return
        self.transitions.append(Transition(self._now(), self._state, to_state))
        self._state = to_state

    def _maybe_enter_half_open(self):
        if (
            self._state == OPEN
            and self._now() >= self._opened_at + self.recovery_time
        ):
            self._set_state(HALF_OPEN)
            self._probes_in_flight = 0
            self._probe_successes = 0

    def allow(self) -> bool:
        """May a call proceed right now? Half-open reserves a probe slot."""
        self._maybe_enter_half_open()
        if self._state == OPEN:
            self.rejections += 1
            return False
        if self._state == HALF_OPEN:
            if self._probes_in_flight >= self.probe_count:
                self.rejections += 1
                return False
            self._probes_in_flight += 1
        return True

    def record_success(self):
        if self._state == HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.probe_count:
                self._set_state(CLOSED)
                self._consecutive_failures = 0
        elif self._state == CLOSED:
            self._consecutive_failures = 0

    def record_failure(self):
        if self._state == HALF_OPEN:
            self._trip()
        elif self._state == CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip()

    def _trip(self):
        self._set_state(OPEN)
        self._opened_at = self._now()
        self.opens += 1
        self._consecutive_failures = 0

    # -- convenience -------------------------------------------------------

    def call(
        self,
        fn: Callable[[], Any],
        failure_types: tuple[type[BaseException], ...] = (Exception,),
    ) -> Any:
        """Run ``fn`` through the breaker."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit breaker {self.name!r} is {self._state}; "
                f"call rejected"
            )
        try:
            result = fn()
        except failure_types:
            self.record_failure()
            raise
        self.record_success()
        return result

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, {self.state}, "
            f"opens={self.opens}, rejections={self.rejections})"
        )
