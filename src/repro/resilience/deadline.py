"""Time budgets propagated through nested calls.

A serving path that waits on a slow dependency for longer than the user
would wait for the answer has already failed; it just has not noticed
yet. A :class:`Deadline` makes the remaining budget explicit: it is
created once at the top of a request with the whole budget, handed down
through nested calls (client -> failover -> storage op), and every layer
checks it *before* doing more work. Child deadlines (:meth:`child`) can
only shrink the window, never extend it, so a sub-operation can bound
its own slice without breaking the caller's promise.

All timing runs against an injected ``now`` callable — the simulated
clock in tests and chaos runs — so deadline behaviour is deterministic.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError, DeadlineExceededError

Now = Callable[[], float]


class Deadline:
    """A fixed point in time by which an operation must finish.

    Parameters
    ----------
    now:
        Clock source (e.g. ``SimClock.now``); shared with whatever is
        charging time against the budget.
    budget:
        Seconds from now until expiry; must be positive.
    """

    def __init__(self, now: Now, budget: float):
        if budget <= 0:
            raise ConfigurationError(f"deadline budget must be positive: {budget}")
        self._now = now
        self.budget = float(budget)
        self.started_at = now()
        self.expires_at = self.started_at + self.budget

    def remaining(self) -> float:
        """Seconds left before expiry (negative once blown)."""
        return self.expires_at - self._now()

    @property
    def expired(self) -> bool:
        return self._now() >= self.expires_at

    def elapsed(self) -> float:
        return self._now() - self.started_at

    def check(self, what: str = "operation"):
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"{what} exceeded its {self.budget:.3f}s deadline "
                f"({self.elapsed():.3f}s elapsed)",
                elapsed=self.elapsed(),
                budget=self.budget,
            )

    def allows(self, cost: float) -> bool:
        """Would spending ``cost`` more seconds still meet the deadline?"""
        return cost <= self.remaining()

    def child(self, budget: float) -> "Deadline":
        """A sub-deadline: at most ``budget`` more seconds, and never
        later than this deadline itself."""
        sub = Deadline(self._now, budget)
        if sub.expires_at > self.expires_at:
            sub.expires_at = self.expires_at
            sub.budget = max(0.0, self.expires_at - sub.started_at)
        return sub

    def __repr__(self) -> str:
        return (
            f"Deadline(remaining={self.remaining():.3f}s, "
            f"budget={self.budget:.3f}s)"
        )
