"""Retries with exponential backoff, deterministic jitter, and budgets.

Retrying is the cheapest availability lever — a master failover or a
data-server restart is invisible if the caller simply tries again — but
unbounded retries turn a partial outage into a total one by multiplying
load exactly when the system can least afford it. Two guards bound them:

* backoff with *deterministic* jitter (drawn from
  :class:`~repro.utils.rng.SeedSequenceFactory`, so chaos runs replay
  byte-identically) spreads retries out in time, and
* a per-caller :class:`RetryBudget` (token bucket: successes deposit a
  fraction of a token, each retry withdraws one) caps the *ratio* of
  retries to useful work, which is what stops retry storms.

Sleeping is an injected callable — ``SimClock.advance`` in this
repository — so backoff consumes simulated time that deadlines observe.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import (
    ConfigurationError,
    RetryBudgetExhaustedError,
)
from repro.resilience.deadline import Deadline
from repro.utils.rng import SeedSequenceFactory


class RetryBudget:
    """Token bucket capping retries to a fraction of successful calls.

    Parameters
    ----------
    ratio:
        Tokens deposited per recorded success; with ``ratio=0.1`` the
        caller earns one retry per ten successes.
    initial:
        Tokens available before any success (lets a cold caller retry).
    max_tokens:
        Bucket cap, so a long healthy stretch cannot bank an unbounded
        retry burst.
    """

    def __init__(
        self, ratio: float = 0.1, initial: float = 5.0, max_tokens: float = 20.0
    ):
        if ratio < 0:
            raise ConfigurationError(f"ratio must be >= 0: {ratio}")
        if max_tokens <= 0:
            raise ConfigurationError(f"max_tokens must be positive: {max_tokens}")
        self.ratio = float(ratio)
        self.max_tokens = float(max_tokens)
        self.tokens = min(float(initial), self.max_tokens)
        self.spent = 0
        self.denied = 0

    def record_success(self):
        self.tokens = min(self.max_tokens, self.tokens + self.ratio)

    def try_spend(self) -> bool:
        """Withdraw one retry token; False when the budget is dry."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False


class RetryPolicy:
    """Exponential backoff with full deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total tries including the first; ``1`` disables retrying.
    base_delay / multiplier / max_delay:
        attempt ``k`` (1-based retry index) backs off
        ``min(max_delay, base_delay * multiplier**(k-1))`` scaled by a
        jitter factor drawn uniformly from [0.5, 1.0].
    seed:
        Root seed for the jitter stream.
    sleep:
        How to spend the backoff delay — ``SimClock.advance`` in
        simulation. ``None`` computes delays without consuming time.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 5.0,
        seed: int = 0,
        sleep: Callable[[float], None] | None = None,
    ):
        if max_attempts < 1:
            raise ConfigurationError(f"max_attempts must be >= 1: {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ConfigurationError("delays must be >= 0")
        if multiplier < 1.0:
            raise ConfigurationError(f"multiplier must be >= 1: {multiplier}")
        self.max_attempts = max_attempts
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self._rng = SeedSequenceFactory(seed).generator("retry-jitter")
        self._sleep = sleep
        self.retries = 0
        self.gave_up = 0

    def delay_for(self, retry_index: int) -> float:
        """Jittered backoff for the ``retry_index``-th retry (1-based)."""
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** (retry_index - 1)
        )
        return raw * (0.5 + 0.5 * float(self._rng.random()))

    def run(
        self,
        fn: Callable[[], Any],
        *,
        retryable: tuple[type[BaseException], ...],
        deadline: Deadline | None = None,
        budget: RetryBudget | None = None,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> Any:
        """Call ``fn`` until it succeeds, retries run out, the budget is
        exhausted, or the deadline cannot absorb the next backoff."""
        attempt = 0
        while True:
            if deadline is not None:
                deadline.check("retryable operation")
            try:
                result = fn()
            except retryable as exc:
                attempt += 1
                if attempt >= self.max_attempts:
                    self.gave_up += 1
                    raise
                if budget is not None and not budget.try_spend():
                    self.gave_up += 1
                    raise RetryBudgetExhaustedError(
                        f"retry budget exhausted after {attempt} attempt(s): "
                        f"{exc}"
                    ) from exc
                delay = self.delay_for(attempt)
                if deadline is not None and not deadline.allows(delay):
                    # the backoff alone would blow the budget: surface the
                    # underlying failure rather than sleeping into a
                    # guaranteed deadline miss
                    self.gave_up += 1
                    raise
                if self._sleep is not None and delay > 0:
                    self._sleep(delay)
                self.retries += 1
                if on_retry is not None:
                    on_retry(attempt, exc)
                continue
            if budget is not None:
                budget.record_success()
            return result
