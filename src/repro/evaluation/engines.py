"""Composite application engines for the Section 6 evaluation.

Each engine bundles the application's Table 1 algorithm with the
supporting mechanisms TencentRec always runs: the demographic complement
(Section 4.2), real-time personalized filtering (Section 4.3), and
liveness filtering of expired items. The "Original" comparators are the
same engines behind :class:`~repro.algorithms.baseline.PeriodicRecommender`
— the paper's comparison is about data freshness, not about using a
weaker algorithm.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Callable

from repro.algorithms.base import Recommender
from repro.algorithms.baseline import PeriodicRecommender
from repro.algorithms.content_based import ContentBasedRecommender
from repro.algorithms.ctr import CTRRecommender, SituationalCTR
from repro.algorithms.demographic import DemographicRecommender
from repro.algorithms.itemcf import HoeffdingPruner, PracticalItemCF
from repro.algorithms.ratings import ActionWeights, DEFAULT_ACTION_WEIGHTS
from repro.errors import EvaluationError
from repro.types import ItemMeta, Recommendation, UserAction, UserProfile
from repro.utils.clock import SECONDS_PER_HOUR

ProfileLookup = Callable[[str], "UserProfile | None"]
AliveCheck = Callable[[str, float], bool]


class _CompositeEngine(Recommender):
    """Shared plumbing: tolerant observe, liveness filtering, new items."""

    def __init__(self, weights: ActionWeights, item_alive: AliveCheck | None):
        self._weights = weights
        self._item_alive = item_alive

    def _filter_alive(
        self, recs: list[Recommendation], now: float, n: int
    ) -> list[Recommendation]:
        if self._item_alive is None:
            return recs[:n]
        return [r for r in recs if self._item_alive(r.item_id, now)][:n]

    def on_new_item(self, meta: ItemMeta):
        """Hook: called when the catalog spawns an item. Default no-op."""


class TencentRecCFEngine(_CompositeEngine):
    """Real-time item-based CF + DB complement (Videos / YiXun rows)."""

    def __init__(
        self,
        profiles: ProfileLookup,
        weights: ActionWeights = DEFAULT_ACTION_WEIGHTS,
        k: int = 20,
        linked_time: float = 6 * SECONDS_PER_HOUR,
        recent_k: int = 10,
        session_seconds: float | None = 4 * SECONDS_PER_HOUR,
        window_sessions: int | None = 12,
        pruning_delta: float | None = 0.001,
        item_alive: AliveCheck | None = None,
    ):
        super().__init__(weights, item_alive)
        pruner = HoeffdingPruner(pruning_delta) if pruning_delta else None
        self.cf = PracticalItemCF(
            weights=weights,
            k=k,
            linked_time=linked_time,
            recent_k=recent_k,
            pruner=pruner,
            session_seconds=session_seconds,
            window_sessions=window_sessions,
        )
        self.db = DemographicRecommender(profiles, weights=weights)

    def observe(self, action: UserAction):
        if not self._weights.knows(action.action):
            return
        self.cf.observe(action)
        self.db.observe(action)

    def recommend(
        self,
        user_id: str,
        n: int,
        now: float,
        context: dict[str, Any] | None = None,
    ) -> list[Recommendation]:
        rated = set(self.cf.user_history(user_id))
        recs = self.cf.predictor.predict(
            user_id,
            n * 2,
            now,
            exclude=rated,
            complement=self.db.complement_fn(user_id, now),
        )
        return self._filter_alive(recs, now, n)


class TencentRecCBEngine(_CompositeEngine):
    """Real-time content-based + DB complement (the News row)."""

    def __init__(
        self,
        profiles: ProfileLookup,
        weights: ActionWeights = DEFAULT_ACTION_WEIGHTS,
        half_life: float = 2 * SECONDS_PER_HOUR,
        freshness_tau: float | None = 6 * SECONDS_PER_HOUR,
        item_alive: AliveCheck | None = None,
    ):
        super().__init__(weights, item_alive)
        self.cb = ContentBasedRecommender(
            weights=weights, half_life=half_life, freshness_tau=freshness_tau
        )
        self.db = DemographicRecommender(profiles, weights=weights)

    def on_new_item(self, meta: ItemMeta):
        self.cb.register_item(meta)

    def observe(self, action: UserAction):
        if not self._weights.knows(action.action):
            return
        self.cb.observe(action)
        self.db.observe(action)

    def recommend(
        self,
        user_id: str,
        n: int,
        now: float,
        context: dict[str, Any] | None = None,
    ) -> list[Recommendation]:
        recs = self.cb.recommend(user_id, n * 2, now)
        if len(recs) < n:
            have = {r.item_id for r in recs}
            for rec in self.db.recommend(user_id, n * 2, now):
                if rec.item_id not in have:
                    recs.append(rec)
                    have.add(rec.item_id)
        return self._filter_alive(recs, now, n)


class TencentRecCTREngine(_CompositeEngine):
    """Situational CTR ranking over the live ad inventory (the QQ row)."""

    def __init__(
        self,
        profiles: ProfileLookup,
        session_seconds: float = 1800.0,
        window_sessions: int = 24,
        item_alive: AliveCheck | None = None,
    ):
        super().__init__(ActionWeights.of(impression=0.1, click=2.0), item_alive)
        self.ctr = CTRRecommender(
            profiles,
            SituationalCTR(
                session_seconds=session_seconds,
                window_sessions=window_sessions,
                min_impressions=20.0,
            ),
        )
        self._inventory: list[str] = []

    def on_new_item(self, meta: ItemMeta):
        self._inventory.append(meta.item_id)

    def observe(self, action: UserAction):
        if action.action in ("impression", "click"):
            self.ctr.observe(action)
        elif action.action == "browse":
            # organic browses double as impressions in the ad simulation
            self.ctr.observe(
                UserAction(action.user_id, action.item_id, "impression",
                           action.timestamp, action.context)
            )

    def recommend(
        self,
        user_id: str,
        n: int,
        now: float,
        context: dict[str, Any] | None = None,
    ) -> list[Recommendation]:
        candidates = self._inventory
        if self._item_alive is not None:
            candidates = [c for c in candidates if self._item_alive(c, now)]
        recs = self.ctr.recommend(
            user_id, n, now, context={"candidates": candidates}
        )
        return recs[:n]


class PriceIndex:
    """Sorted price index for the similar-price position (Figure 12)."""

    def __init__(self):
        self._prices: dict[str, float] = {}
        self._sorted: list[tuple[float, str]] = []

    def add(self, item_id: str, price: float | None):
        if price is None or item_id in self._prices:
            return
        self._prices[item_id] = price
        insort(self._sorted, (price, item_id))

    def price_of(self, item_id: str) -> float | None:
        return self._prices.get(item_id)

    def near(self, price: float, tolerance: float = 0.25) -> list[str]:
        """Items priced within ``±tolerance`` (relative) of ``price``."""
        low = bisect_left(self._sorted, (price * (1.0 - tolerance), ""))
        high = bisect_right(self._sorted, (price * (1.0 + tolerance), "￿"))
        return [item for __, item in self._sorted[low:high]]

    def __len__(self) -> int:
        return len(self._prices)


class SimilarPurchaseEngine(_CompositeEngine):
    """The similar-purchase position: 'commodities purchased by the users
    who have also purchased this commodity' (Section 6.4).

    Queries carry the anchor commodity in ``context['anchor']``; the
    signal is dense co-purchase/co-click history, so the stale model
    degrades gracefully — the paper observes the *smaller* improvement
    here.
    """

    def __init__(
        self,
        profiles: ProfileLookup,
        weights: ActionWeights = DEFAULT_ACTION_WEIGHTS,
        k: int = 20,
        linked_time: float = 24 * SECONDS_PER_HOUR,
        recent_k: int = 5,
        session_seconds: float | None = 4 * SECONDS_PER_HOUR,
        window_sessions: int | None = 12,
        item_alive: AliveCheck | None = None,
    ):
        super().__init__(weights, item_alive)
        self.cf = PracticalItemCF(
            weights=weights,
            k=k,
            linked_time=linked_time,
            recent_k=recent_k,
            session_seconds=session_seconds,
            window_sessions=window_sessions,
        )
        self.db = DemographicRecommender(profiles, weights=weights)

    def observe(self, action: UserAction):
        if not self._weights.knows(action.action):
            return
        self.cf.observe(action)
        self.db.observe(action)

    def recommend(
        self,
        user_id: str,
        n: int,
        now: float,
        context: dict[str, Any] | None = None,
    ) -> list[Recommendation]:
        if context is None or "anchor" not in context:
            raise EvaluationError("similar-purchase queries need an anchor item")
        anchor = context["anchor"]
        consumed = set(self.cf.user_history(user_id)) | {anchor}
        # Section 6.4: candidates come from the anchor's similar items,
        # re-ranked by the user's real-time demands (recent interests)
        recent_items = [
            item for item, __, ___ in self.cf.recent.recent(user_id)
        ]
        scored: list[tuple[float, str]] = []
        for item, __ in self.cf.table.top_similar(anchor):
            if item in consumed:
                continue
            # rescore from live counts: stored list values go stale
            sim = self.cf.similarity(anchor, item, now)
            if sim <= 0.0:
                continue
            interest = max(
                (
                    self.cf.similarity(item, recent, now)
                    for recent in recent_items
                    if recent != item
                ),
                default=0.0,
            )
            scored.append((sim + interest, item))
        scored.sort(key=lambda row: (-row[0], row[1]))
        recs = [
            Recommendation(item, score, source="cf") for score, item in scored
        ]
        if len(recs) < n:
            have = {r.item_id for r in recs} | consumed
            for rec in self.db.recommend(user_id, n * 2, now):
                if rec.item_id not in have:
                    recs.append(rec)
                    have.add(rec.item_id)
        return self._filter_alive(recs, now, n)


class SimilarPriceEngine(_CompositeEngine):
    """The similar-price position: candidates share the anchor's price
    band, a much sparser signal (Section 6.4) — real-time interest and
    the DB ranking do most of the work, so the real-time advantage is
    *larger* here, matching Figure 13 vs Figure 14.
    """

    def __init__(
        self,
        profiles: ProfileLookup,
        price_index: PriceIndex,
        weights: ActionWeights = DEFAULT_ACTION_WEIGHTS,
        k: int = 20,
        linked_time: float = 24 * SECONDS_PER_HOUR,
        recent_k: int = 10,
        price_tolerance: float = 0.25,
        item_alive: AliveCheck | None = None,
    ):
        super().__init__(weights, item_alive)
        self.cf = PracticalItemCF(
            weights=weights, k=k, linked_time=linked_time, recent_k=recent_k
        )
        self.db = DemographicRecommender(profiles, weights=weights)
        self.prices = price_index
        self._tolerance = price_tolerance

    def on_new_item(self, meta: ItemMeta):
        self.prices.add(meta.item_id, meta.price)

    def observe(self, action: UserAction):
        if not self._weights.knows(action.action):
            return
        self.cf.observe(action)
        self.db.observe(action)

    def recommend(
        self,
        user_id: str,
        n: int,
        now: float,
        context: dict[str, Any] | None = None,
    ) -> list[Recommendation]:
        if context is None or "anchor" not in context:
            raise EvaluationError("similar-price queries need an anchor item")
        anchor = context["anchor"]
        price = self.prices.price_of(anchor)
        if price is None:
            return []
        candidates = [
            c for c in self.prices.near(price, self._tolerance) if c != anchor
        ]
        consumed = set(self.cf.user_history(user_id))
        # Section 6.4: first check the user's real-time demands — is the
        # user recently interested in some candidates' neighbourhoods?
        recent_items = {
            item for item, __, ___ in self.cf.recent.recent(user_id)
        }
        hot = dict(
            (item, score)
            for item, score in self.db.hot_items(
                self.db.group_of_user(user_id), 200, now
            )
        )
        max_hot = max(hot.values(), default=1.0)
        scored: list[tuple[float, str]] = []
        for candidate in candidates:
            if candidate in consumed:
                continue
            interest = max(
                (
                    self.cf.similarity(candidate, item, now)
                    for item in recent_items
                    if item != candidate
                ),
                default=0.0,
            )
            anchor_sim = self.cf.similarity(candidate, anchor, now)
            hotness = hot.get(candidate, 0.0) / max_hot
            scored.append((2.0 * interest + anchor_sim + 0.25 * hotness, candidate))
        scored.sort(key=lambda row: (-row[0], row[1]))
        recs = [
            Recommendation(item, score, source="cf")
            for score, item in scored
            if score > 0.0
        ]
        return self._filter_alive(recs, now, n)


class _PeriodicEngine(PeriodicRecommender):
    """A periodic wrapper that also delays item-arrival notifications —
    an offline model cannot recommend an item born after its last rebuild
    — but filters already-consumed items at *serve* time: the display
    layer knows what a user clicked today even when the model is a day
    old, and every production system the paper compares against applied
    such filter conditions (Section 6.4).
    """

    def __init__(
        self,
        inner: Recommender,
        update_interval: float,
        filter_consumed: bool = True,
    ):
        super().__init__(inner, update_interval)
        self._pending_items: list[ItemMeta] = []
        self._filter_consumed = filter_consumed
        self._consumed: dict[str, set[str]] = {}

    def on_new_item(self, meta: ItemMeta):
        self._pending_items.append(meta)

    def observe(self, action: UserAction):
        if self._filter_consumed:
            self._consumed.setdefault(action.user_id, set()).add(
                action.item_id
            )
        super().observe(action)

    def recommend(self, user_id, n, now, context=None):
        if not self._filter_consumed:
            return super().recommend(user_id, n, now, context)
        recs = super().recommend(user_id, n * 2, now, context)
        consumed = self._consumed.get(user_id, ())
        return [r for r in recs if r.item_id not in consumed][:n]

    def _maybe_rebuild(self, now: float):
        boundary = (now // self.update_interval) * self.update_interval
        if boundary > self._last_boundary and hasattr(self.inner, "on_new_item"):
            keep = []
            for meta in self._pending_items:
                if meta.publish_time < boundary:
                    self.inner.on_new_item(meta)
                else:
                    keep.append(meta)
            self._pending_items = keep
        super()._maybe_rebuild(now)


def make_original(
    engine: Recommender,
    update_interval: float,
    filter_consumed: bool = True,
) -> PeriodicRecommender:
    """Wrap an engine as the application's 'Original' periodic comparator.

    ``filter_consumed`` applies a real-time display filter over the stale
    model's output (the production norm for content); set it False for
    inventories where re-exposure is intended, like advertisements.
    """
    return _PeriodicEngine(engine, update_interval, filter_consumed)
