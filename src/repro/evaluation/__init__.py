"""Evaluation harness reproducing Section 6.

Composite engines pair each application's algorithm (per Table 1) with
the demographic complement and real-time filtering; the "Original"
comparators wrap the same algorithms behind periodic model updates. The
A/B harness splits users into cohorts, serves each cohort from its
engine, scores served lists with the click model, and aggregates daily
CTR / read-count series — the data behind Table 1 and Figures 10–14.
"""

from repro.evaluation.engines import (
    TencentRecCFEngine,
    TencentRecCBEngine,
    TencentRecCTREngine,
    SimilarPurchaseEngine,
    SimilarPriceEngine,
    PriceIndex,
    make_original,
)
from repro.evaluation.metrics import DailyStats, CohortSeries, ABResult
from repro.evaluation.ab_test import ABTestRunner, ABTestConfig
from repro.evaluation.reporting import (
    format_daily_ctr_series,
    format_improvement_table,
    summarize_improvements,
)

__all__ = [
    "TencentRecCFEngine",
    "TencentRecCBEngine",
    "TencentRecCTREngine",
    "SimilarPurchaseEngine",
    "SimilarPriceEngine",
    "PriceIndex",
    "make_original",
    "DailyStats",
    "CohortSeries",
    "ABResult",
    "ABTestRunner",
    "ABTestConfig",
    "format_daily_ctr_series",
    "format_improvement_table",
    "summarize_improvements",
]
