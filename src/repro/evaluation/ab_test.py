"""The replayed-stream A/B harness (Section 6.2).

Users are hash-split into cohorts, one per engine. All engines observe
the full action stream (organic sessions plus recommendation feedback —
the paper's comparators run on the same production data; only model
freshness differs), but each user's recommendation queries are answered
by their cohort's engine, and the click model scores what was served.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import Recommender
from repro.errors import EvaluationError
from repro.evaluation.metrics import ABResult, CohortSeries
from repro.simulation.applications import ApplicationScenario
from repro.types import UserAction
from repro.utils.clock import SECONDS_PER_DAY
from repro.utils.hashing import stable_hash


@dataclass
class ABTestConfig:
    """Run parameters for one A/B experiment."""

    num_days: int = 7
    slate_size: int | None = None  # None: use the scenario's
    anchored: bool = False  # queries carry the commodity being browsed
    feed_impressions: bool = False  # synthesize impression events (ads)
    salt: str = "cohort"  # cohort-assignment salt
    # paired evaluation: every engine answers every query (scored with
    # common random numbers), while only the user's cohort engine's slate
    # is "displayed" and feeds back. This removes cohort-composition bias
    # from the CTR comparison — with a few hundred users per cohort, the
    # between-cohort base-rate difference would otherwise swamp the
    # treatment effect the paper measures on millions of users.
    paired: bool = True

    def __post_init__(self):
        if self.num_days <= 0:
            raise EvaluationError(f"num_days must be positive: {self.num_days}")


class ABTestRunner:
    """Runs one scenario against a set of competing engines."""

    def __init__(
        self,
        scenario: ApplicationScenario,
        engines: dict[str, Recommender],
        config: ABTestConfig | None = None,
    ):
        if len(engines) < 2:
            raise EvaluationError("an A/B test needs at least two engines")
        self.scenario = scenario
        self.engines = dict(engines)
        self.config = config if config is not None else ABTestConfig()
        self._engine_names = sorted(self.engines)
        self._rng = scenario.seeds.generator("abtest-schedule")

    # -- cohorts -----------------------------------------------------------

    def cohort_of(self, user_id: str) -> str:
        index = stable_hash((self.config.salt, user_id)) % len(self._engine_names)
        return self._engine_names[index]

    def cohort_sizes(self) -> dict[str, int]:
        sizes = {name: 0 for name in self._engine_names}
        for user_id in self.scenario.population.user_ids():
            sizes[self.cohort_of(user_id)] += 1
        return sizes

    # -- the run --------------------------------------------------------------

    def run(self) -> ABResult:
        scenario = self.scenario
        result = ABResult(
            scenario.name,
            {name: CohortSeries(name) for name in self._engine_names},
            self.config.num_days,
        )
        sizes = self.cohort_sizes()
        self._announce_items(
            (item.meta for item in scenario.catalog.all_items())
        )
        for day in range(self.config.num_days):
            for series in result.cohorts.values():
                series.day(day).cohort_size = sizes[series.engine_name]
            for now, kind, user_id in self._schedule_day(day):
                for born in scenario.catalog.advance_to(now):
                    self._announce_items([born.meta])
                if kind == "organic":
                    self._run_organic(user_id, now, result, day)
                else:
                    self._run_visit(user_id, now, result, day)
                result.events_processed += 1
        return result

    def _announce_items(self, metas):
        for meta in metas:
            for engine in self.engines.values():
                hook = getattr(engine, "on_new_item", None)
                if hook is not None:
                    hook(meta)

    def _schedule_day(self, day: int) -> list[tuple[float, str, str]]:
        scenario = self.scenario
        start = day * SECONDS_PER_DAY
        events: list[tuple[float, str, str]] = []
        for user in scenario.population.users():
            visits = self._rng.poisson(
                scenario.visits_per_user_per_day * user.activity
            )
            for __ in range(visits):
                events.append(
                    (start + self._rng.uniform(0, SECONDS_PER_DAY), "visit",
                     user.user_id)
                )
            organic = self._rng.poisson(
                scenario.organic_sessions_per_user_per_day * user.activity
            )
            for __ in range(organic):
                events.append(
                    (start + self._rng.uniform(0, SECONDS_PER_DAY), "organic",
                     user.user_id)
                )
        events.sort()
        return events

    def _feed_all(self, actions: list[UserAction]):
        for action in actions:
            for engine in self.engines.values():
                engine.observe(action)

    def _run_organic(self, user_id: str, now: float, result: ABResult, day: int):
        user = self.scenario.population.get(user_id)
        actions = self.scenario.behavior.organic_session(user, now)
        self._feed_all(actions)

    def _run_visit(self, user_id: str, now: float, result: ABResult, day: int):
        scenario = self.scenario
        user = scenario.population.get(user_id)
        engine_name = self.cohort_of(user_id)
        slate = self.config.slate_size or scenario.slate_size
        context = None
        if self.config.anchored:
            anchor = scenario.behavior.pick_browsing_item(user, now)
            if anchor is None:
                return
            context = {"anchor": anchor.item_id}
            # browsing the anchor is itself feedback
            scenario.behavior.mark_consumed(user_id, anchor.item_id)
            self._feed_all([UserAction(user_id, anchor.item_id, "browse", now)])
        # the user arrives with their current focus; advance drift once
        scenario.behavior.focus_of(user, now)
        uniforms = scenario.clicks.draw_uniforms(slate)
        names = self._engine_names if self.config.paired else [engine_name]
        served_outcome = None
        for name in names:
            candidate = self.engines[name]
            recommendations = candidate.recommend(user_id, slate, now, context)
            stats = result.cohorts[name].day(day)
            stats.queries += 1
            if not recommendations:
                stats.empty_queries += 1
                continue
            outcome = scenario.clicks.simulate(
                user, recommendations, now,
                uniforms=uniforms, advance_focus=False,
            )
            stats.impressions += outcome.impressions
            stats.clicks += len(outcome.clicks)
            stats.strong_actions += sum(
                1
                for action in outcome.actions
                if action.action == scenario.behavior.config.strong_action
            )
            if name == engine_name:
                served_outcome = (recommendations, outcome)
        if served_outcome is None:
            return
        recommendations, outcome = served_outcome
        # only the *served* slate's clicks are real events in the world
        for clicked in outcome.clicks:
            scenario.behavior.mark_consumed(user_id, clicked)
        if self.config.feed_impressions:
            self._feed_all(
                [
                    UserAction(user_id, rec.item_id, "impression", now)
                    for rec in recommendations
                ]
            )
        self._feed_all(outcome.actions)
