"""Evaluation metrics: daily CTR, read counts, and improvement series."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EvaluationError


@dataclass
class DailyStats:
    """Raw counters for one engine cohort on one simulated day."""

    impressions: int = 0
    clicks: int = 0
    strong_actions: int = 0
    queries: int = 0
    empty_queries: int = 0
    cohort_size: int = 0

    def ctr(self) -> float:
        """Click-through rate of served recommendations."""
        if self.impressions == 0:
            return 0.0
        return self.clicks / self.impressions

    def reads_per_user(self) -> float:
        """Average recommendation-driven reads per cohort user (Fig 11)."""
        if self.cohort_size == 0:
            return 0.0
        return self.clicks / self.cohort_size


@dataclass
class CohortSeries:
    """Per-day stats for one engine over the whole experiment."""

    engine_name: str
    days: list[DailyStats] = field(default_factory=list)

    def day(self, index: int) -> DailyStats:
        while len(self.days) <= index:
            self.days.append(DailyStats())
        return self.days[index]

    def ctr_series(self) -> list[float]:
        return [day.ctr() for day in self.days]

    def reads_series(self) -> list[float]:
        return [day.reads_per_user() for day in self.days]

    def overall_ctr(self) -> float:
        impressions = sum(day.impressions for day in self.days)
        clicks = sum(day.clicks for day in self.days)
        return clicks / impressions if impressions else 0.0


@dataclass
class ABResult:
    """Outcome of one A/B experiment."""

    application: str
    cohorts: dict[str, CohortSeries]
    num_days: int
    events_processed: int = 0

    def series(self, engine_name: str) -> CohortSeries:
        try:
            return self.cohorts[engine_name]
        except KeyError:
            raise EvaluationError(
                f"no cohort {engine_name!r}; have {sorted(self.cohorts)}"
            ) from None

    def daily_improvements(
        self, treatment: str, control: str, metric: str = "ctr"
    ) -> list[float]:
        """Per-day percentage improvement of ``treatment`` over ``control``."""
        if metric == "ctr":
            treated = self.series(treatment).ctr_series()
            controlled = self.series(control).ctr_series()
        elif metric == "reads":
            treated = self.series(treatment).reads_series()
            controlled = self.series(control).reads_series()
        else:
            raise EvaluationError(f"unknown metric {metric!r}")
        improvements = []
        for t_value, c_value in zip(treated, controlled):
            if c_value <= 0.0:
                improvements.append(0.0)
            else:
                improvements.append(100.0 * (t_value - c_value) / c_value)
        return improvements

    def improvement_summary(
        self, treatment: str, control: str, metric: str = "ctr"
    ) -> tuple[float, float, float]:
        """(avg, min, max) daily improvement, the Table 1 columns."""
        daily = self.daily_improvements(treatment, control, metric)
        if not daily:
            return (0.0, 0.0, 0.0)
        return (sum(daily) / len(daily), min(daily), max(daily))
