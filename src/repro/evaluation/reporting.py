"""Plain-text report formatting in the shape of the paper's exhibits."""

from __future__ import annotations

from repro.evaluation.metrics import ABResult


def format_daily_ctr_series(
    result: ABResult, treatment: str, control: str, metric: str = "ctr"
) -> str:
    """A Figure 10/13/14-style table: day, control, treatment, improvement."""
    if metric == "ctr":
        treated = result.series(treatment).ctr_series()
        controlled = result.series(control).ctr_series()
        value_header, scale = "CTR", 100.0
    else:
        treated = result.series(treatment).reads_series()
        controlled = result.series(control).reads_series()
        value_header, scale = "reads/user", 1.0
    improvements = result.daily_improvements(treatment, control, metric)
    lines = [
        f"{result.application}: daily {value_header}, "
        f"{treatment} vs {control}",
        f"{'day':>4}  {control:>14}  {treatment:>14}  {'improvement':>12}",
    ]
    for day, (c_value, t_value, imp) in enumerate(
        zip(controlled, treated, improvements), start=1
    ):
        lines.append(
            f"{day:>4}  {c_value * scale:>13.2f}{'%' if metric == 'ctr' else ' '} "
            f" {t_value * scale:>13.2f}{'%' if metric == 'ctr' else ' '} "
            f" {imp:>+11.2f}%"
        )
    return "\n".join(lines)


def summarize_improvements(
    result: ABResult, treatment: str, control: str, metric: str = "ctr"
) -> dict[str, float]:
    avg, low, high = result.improvement_summary(treatment, control, metric)
    return {"avg": avg, "min": low, "max": high}


def format_improvement_table(
    rows: list[tuple[str, str, dict[str, float]]]
) -> str:
    """A Table 1-style summary: application, algorithm, avg/min/max."""
    lines = [
        "Application  Algorithm  Performance Improvement (%)",
        f"{'':>24}  {'avg':>8}  {'min':>8}  {'max':>8}",
    ]
    for application, algorithm, summary in rows:
        lines.append(
            f"{application:<12} {algorithm:<10} "
            f"{summary['avg']:>8.2f}  {summary['min']:>8.2f}  "
            f"{summary['max']:>8.2f}"
        )
    return "\n".join(lines)
