"""Wire protocol: checksummed length-prefixed frames of pickled envelopes.

A frame is an 8-byte big-endian header — payload length followed by a
CRC32C (Castagnoli) checksum of the payload — and then that many bytes
of pickle (protocol 5). Requests name a method and carry positional
args; responses either carry a value or a real exception object.
TDStore's control-flow errors — :class:`~repro.errors.StaleRouteError`,
:class:`~repro.errors.MigrationInProgressError`,
:class:`~repro.errors.VersionConflictError`, ... — round-trip as
themselves (their ``__reduce__`` preserves constructor args), so the
client-side failover/fencing logic cannot tell a remote server from a
local object. Exceptions that fail to pickle degrade to
:class:`~repro.errors.RemoteOpError` carrying the remote traceback.

The checksum turns silent corruption into a typed failure: a frame
whose payload does not match its CRC raises
:class:`FrameCorruptionError` instead of unpickling garbage into state.
The same frame format is the WAL record format
(:mod:`repro.runtime.wal` appends ``encode_frame`` output verbatim), so
one integrity check covers both the wire and the log.
"""

from __future__ import annotations

import pickle
import struct
import traceback
from dataclasses import dataclass, field
from typing import Any

from repro.errors import RemoteOpError

HEADER = struct.Struct(">II")
HEADER_SIZE = HEADER.size

# a frame above this size is a protocol error, not a big payload: the
# decoder refuses it instead of trying to allocate garbage lengths read
# from a desynchronized stream
MAX_FRAME_BYTES = 256 * 1024 * 1024

PICKLE_PROTOCOL = 5

# data-plane methods that mutate TDStore state. The RPC client must not
# transparently re-send these after a corrupt or desynced reply frame —
# the first send may have applied — so they surface the typed corruption
# error and let the journaled retry path upstream decide. Everything
# else (reads, admin ops, attribute fetches) is safe to retry on a
# fresh connection.
MUTATING_DATA_METHODS = frozenset(
    {
        "put",
        "delete",
        "check_and_set",
        "apply_op",
        "put_once",
        "record_once",
        "enqueue_sync",
        "apply_pending",
        "apply_repair",
        "adopt_snapshot",
        "ensure_instance",
    }
)

# process-wide tally of corrupt frames caught by CRC verification, keyed
# for merging into ``_stats``-style dicts. Every process (parent, worker
# host, server host) accumulates its own; chaos accounting sums them.
CORRUPTION_STATS = {"frames_detected": 0}


def _build_crc32c_table() -> tuple[int, ...]:
    poly = 0x82F63B78  # Castagnoli, reflected
    table = []
    for index in range(256):
        crc = index
        for _ in range(8):
            crc = (crc >> 1) ^ poly if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_CRC32C_TABLE = _build_crc32c_table()


def crc32c(data: bytes, value: int = 0) -> int:
    """CRC32C (Castagnoli) of ``data``, pure python over the stdlib.

    ``zlib.crc32`` is the IEEE polynomial, not Castagnoli, and the
    environment pins us to the stdlib — so a 256-entry table it is.
    Frames here are KB-scale; the per-byte loop is not a hot path next
    to pickling and the syscalls around it.
    """
    crc = value ^ 0xFFFFFFFF
    table = _CRC32C_TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


@dataclass
class Request:
    """One remote invocation: ``method(*args)`` plus routing hints.

    ``target`` addresses a logical object behind the endpoint (a data
    server id, a ``(topology, component, task)`` triple, ...); ``None``
    addresses the endpoint itself.
    """

    method: str
    args: tuple = ()
    target: Any = None


@dataclass
class Response:
    """The reply to one :class:`Request`."""

    value: Any = None
    error: BaseException | None = None
    meta: dict = field(default_factory=dict)

    def unwrap(self) -> Any:
        if self.error is not None:
            raise self.error
        return self.value


class FrameError(RemoteOpError):
    """The byte stream does not parse as frames (desync or corruption)."""


class FrameCorruptionError(FrameError):
    """A complete frame failed its CRC32C check.

    The payload was delivered whole but its bytes do not match the
    checksum stamped at encode time — a flipped bit on the wire or on
    disk, not a short read. Connections drop and reconnect on it; WAL
    replay converts it to a fail-stop :class:`~repro.runtime.wal.WalError`.
    """

    def __init__(self, message: str, expected: int = 0, actual: int = 0):
        super().__init__(message)
        self.expected = expected
        self.actual = actual

    def __reduce__(self):
        return (type(self), (self.args[0], self.expected, self.actual))


def encode_frame(obj: Any) -> bytes:
    """Serialize ``obj`` into one wire frame (header + pickle)."""
    payload = pickle.dumps(obj, PICKLE_PROTOCOL)
    return HEADER.pack(len(payload), crc32c(payload)) + payload


def corrupt_frame(frame: bytes, run: int = 1) -> bytes:
    """Deterministically damage an encoded frame's *payload* (chaos/test
    helper): ``run == 1`` flips a single bit at the body midpoint,
    ``run > 1`` clobbers that many bytes. The header is left intact so
    framing survives and only CRC verification can tell.
    """
    body = len(frame) - HEADER_SIZE
    if body <= 0:
        return frame
    offset = HEADER_SIZE + body // 2
    damaged = bytearray(frame)
    if run <= 1:
        damaged[offset] ^= 0x01
    else:
        for i in range(min(run, len(frame) - offset)):
            damaged[offset + i] ^= 0xFF
    return bytes(damaged)


def sanitize_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round-trip, else flatten it.

    Anything unpicklable (or whose unpickle would fail because the
    constructor signature diverged from ``args``) becomes a
    :class:`~repro.errors.RemoteOpError` with the remote traceback baked
    into the message, so the failure stays debuggable from the caller.
    """
    try:
        return pickle.loads(pickle.dumps(exc, PICKLE_PROTOCOL))
    except Exception:
        detail = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        return RemoteOpError(
            f"remote operation failed with unpicklable "
            f"{type(exc).__name__}: {exc}\n--- remote traceback ---\n{detail}"
        )


def encode_error(exc: BaseException) -> Response:
    """Build an error response whose exception survives the wire."""
    return Response(error=sanitize_exception(exc))


class StreamDecoder:
    """Incremental frame decoder over a byte stream.

    Feed it whatever ``recv`` returned; it yields every complete decoded
    object and buffers the tail of a partial frame for the next feed. A
    complete frame whose payload fails its CRC raises
    :class:`FrameCorruptionError` — the corrupt frame is consumed from
    the buffer first, so a caller scanning a log can keep feeding to
    count further damage, while an RPC client simply drops the
    connection.
    """

    def __init__(self):
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[Any]:
        self._buf += data
        out: list[Any] = []
        while len(self._buf) >= HEADER_SIZE:
            length, expected = HEADER.unpack_from(self._buf)
            if length > MAX_FRAME_BYTES:
                raise FrameError(
                    f"frame length {length} exceeds the {MAX_FRAME_BYTES} "
                    "byte limit; stream is desynchronized"
                )
            if len(self._buf) < HEADER_SIZE + length:
                break
            payload = bytes(self._buf[HEADER_SIZE : HEADER_SIZE + length])
            del self._buf[: HEADER_SIZE + length]
            actual = crc32c(payload)
            if actual != expected:
                CORRUPTION_STATS["frames_detected"] += 1
                raise FrameCorruptionError(
                    f"frame payload of {length} bytes fails CRC32C: "
                    f"expected {expected:#010x}, got {actual:#010x}",
                    expected,
                    actual,
                )
            out.append(pickle.loads(payload))
        return out

    def pending_bytes(self) -> int:
        return len(self._buf)
