"""Wire protocol: length-prefixed frames carrying pickled envelopes.

A frame is a 4-byte big-endian length followed by that many bytes of
pickle (protocol 5). Requests name a method and carry positional args;
responses either carry a value or a real exception object. TDStore's
control-flow errors — :class:`~repro.errors.StaleRouteError`,
:class:`~repro.errors.MigrationInProgressError`,
:class:`~repro.errors.VersionConflictError`, ... — round-trip as
themselves (their ``__reduce__`` preserves constructor args), so the
client-side failover/fencing logic cannot tell a remote server from a
local object. Exceptions that fail to pickle degrade to
:class:`~repro.errors.RemoteOpError` carrying the remote traceback.
"""

from __future__ import annotations

import pickle
import struct
import traceback
from dataclasses import dataclass, field
from typing import Any

from repro.errors import RemoteOpError

HEADER = struct.Struct(">I")
HEADER_SIZE = HEADER.size

# a frame above this size is a protocol error, not a big payload: the
# decoder refuses it instead of trying to allocate garbage lengths read
# from a desynchronized stream
MAX_FRAME_BYTES = 256 * 1024 * 1024

PICKLE_PROTOCOL = 5


@dataclass
class Request:
    """One remote invocation: ``method(*args)`` plus routing hints.

    ``target`` addresses a logical object behind the endpoint (a data
    server id, a ``(topology, component, task)`` triple, ...); ``None``
    addresses the endpoint itself.
    """

    method: str
    args: tuple = ()
    target: Any = None


@dataclass
class Response:
    """The reply to one :class:`Request`."""

    value: Any = None
    error: BaseException | None = None
    meta: dict = field(default_factory=dict)

    def unwrap(self) -> Any:
        if self.error is not None:
            raise self.error
        return self.value


class FrameError(RemoteOpError):
    """The byte stream does not parse as frames (desync or corruption)."""


def encode_frame(obj: Any) -> bytes:
    """Serialize ``obj`` into one wire frame (header + pickle)."""
    payload = pickle.dumps(obj, PICKLE_PROTOCOL)
    return HEADER.pack(len(payload)) + payload


def sanitize_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round-trip, else flatten it.

    Anything unpicklable (or whose unpickle would fail because the
    constructor signature diverged from ``args``) becomes a
    :class:`~repro.errors.RemoteOpError` with the remote traceback baked
    into the message, so the failure stays debuggable from the caller.
    """
    try:
        return pickle.loads(pickle.dumps(exc, PICKLE_PROTOCOL))
    except Exception:
        detail = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        return RemoteOpError(
            f"remote operation failed with unpicklable "
            f"{type(exc).__name__}: {exc}\n--- remote traceback ---\n{detail}"
        )


def encode_error(exc: BaseException) -> Response:
    """Build an error response whose exception survives the wire."""
    return Response(error=sanitize_exception(exc))


class StreamDecoder:
    """Incremental frame decoder over a byte stream.

    Feed it whatever ``recv`` returned; it yields every complete decoded
    object and buffers the tail of a partial frame for the next feed.
    """

    def __init__(self):
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[Any]:
        self._buf += data
        out: list[Any] = []
        while len(self._buf) >= HEADER_SIZE:
            (length,) = HEADER.unpack_from(self._buf)
            if length > MAX_FRAME_BYTES:
                raise FrameError(
                    f"frame length {length} exceeds the {MAX_FRAME_BYTES} "
                    "byte limit; stream is desynchronized"
                )
            if len(self._buf) < HEADER_SIZE + length:
                break
            payload = bytes(self._buf[HEADER_SIZE : HEADER_SIZE + length])
            del self._buf[: HEADER_SIZE + length]
            out.append(pickle.loads(payload))
        return out

    def pending_bytes(self) -> int:
        return len(self._buf)
