"""Process-native chaos: real SIGKILL, network, and disk faults.

This is the layer ROADMAP item 1 called for: the full chaos vocabulary
running against *real* OS processes instead of the simulator's modeled
failures. Three pieces:

- :class:`ChaosRuntime` — the adapter a :class:`FaultInjector` fires
  process-native faults through. It SIGKILLs supervised hosts and
  workers, arms network-fault windows on the hosts' RPC transports
  (``_chaos`` admin op -> ``RpcServer.fault_hook``), and arms one-shot
  WAL disk faults (``_wal_fault`` -> ``DiskFaultShim``). Every
  host-level fault is driven to recovery *synchronously at the barrier*
  (kill -> respawn -> WAL replay -> serving probe) and timed into an
  MTTR sample.
- :class:`ChaosOrchestrator` — drives a ``RecoveryHarness`` under a
  seeded, barrier-keyed plan (never wall clock: a plan replays
  identically at any machine speed), probing front-end serve rate at
  every barrier and distilling the run into a :class:`ChaosReport`
  whose invariants the acceptance suites assert: zero lost keys, 100%
  serve rate, final state byte-identical to a fault-free reference.
- :func:`seeded_process_plan` — deterministic generator for plans
  mixing SIGKILLs, partitions, resets, delayed/dropped frames, disk
  faults, and (real-delay) latency spikes.

Why the faults converge: every mutating TDStore op is op-journaled
(``put_once``/``apply_op`` dedup) or last-write-wins, acks are withheld
until the WAL's ``fsync`` covers them, and the client proxies retry
transport failures against stable ports. A killed host replays exactly
the acknowledged prefix; a swallowed ack is re-sent and deduped; a
fail-stopped WAL host loses only un-acked writes — which is correct.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import FaultPlanError, RemoteOpError
from repro.recovery.faults import (
    Fault,
    NETWORK_FAULT_KINDS,
    WAL_CORRUPTION_KINDS,
    WAL_FAULT_KINDS,
)
from repro.runtime.rpc import RpcClient
from repro.runtime.wire import CORRUPTION_STATS
from repro.utils.rng import SeedSequenceFactory

# width (in disturbed request frames) of a one_way_partition window;
# kept under the proxies' transport-retry budget so the partition is
# absorbable by design — the proof is convergence, not outage
PARTITION_WIDTH = 2


@dataclass(frozen=True)
class MttrSample:
    """One SIGKILL (or disk-fault fail-stop) -> recovered-and-serving
    measurement: the time from the kill to the respawned host having
    replayed its WAL and answered a data-plane probe."""

    kind: str
    target: int
    seconds: float


@dataclass
class ChaosReport:
    """What a chaos run actually did, and whether it converged."""

    kills: dict = field(default_factory=dict)
    network_faults: dict = field(default_factory=dict)
    disk_faults: dict = field(default_factory=dict)
    mttr_count: int = 0
    mttr_p50: "float | None" = None
    mttr_p99: "float | None" = None
    mttr_max: "float | None" = None
    lost_keys: int = 0
    serve_attempts: int = 0
    serve_answered: int = 0
    fingerprint_match: "bool | None" = None
    skipped_faults: int = 0
    injected_faults: int = 0
    rounds: int = 0
    crashes: int = 0
    corruptions_injected: int = 0
    corruptions_detected: int = 0
    midflight_fired: int = 0
    flushed_faults: int = 0
    online_probes: int = 0
    invariant_violations: "list[str]" = field(default_factory=list)

    @property
    def serve_rate(self) -> float:
        if self.serve_attempts == 0:
            return 1.0
        return self.serve_answered / self.serve_attempts

    def to_dict(self) -> dict:
        return {
            "kills": dict(self.kills),
            "network_faults": dict(self.network_faults),
            "disk_faults": dict(self.disk_faults),
            "mttr": {
                "count": self.mttr_count,
                "p50": self.mttr_p50,
                "p99": self.mttr_p99,
                "max": self.mttr_max,
            },
            "lost_keys": self.lost_keys,
            "serve_attempts": self.serve_attempts,
            "serve_answered": self.serve_answered,
            "serve_rate": self.serve_rate,
            "fingerprint_match": self.fingerprint_match,
            "skipped_faults": self.skipped_faults,
            "injected_faults": self.injected_faults,
            "rounds": self.rounds,
            "crashes": self.crashes,
            "corruptions_injected": self.corruptions_injected,
            "corruptions_detected": self.corruptions_detected,
            "midflight_fired": self.midflight_fired,
            "flushed_faults": self.flushed_faults,
            "online_probes": self.online_probes,
            "invariant_violations": list(self.invariant_violations),
        }


def percentile(values: "list[float]", q: float) -> "float | None":
    """Nearest-rank percentile; None on an empty sample."""
    if not values:
        return None
    ordered = sorted(values)
    rank = round(q / 100.0 * (len(ordered) - 1))
    return ordered[int(min(len(ordered) - 1, max(0, rank)))]


def lost_keys(reference_state: dict, observed_state: dict) -> int:
    """Keys present in a reference state digest but absent after chaos.

    Both arguments are nested section -> {key: value} digests (see
    ``tests.recovery.helpers.state_digest``). Byte-identity is the
    stronger check; this one localizes a divergence to dropped keys.
    """
    lost = 0
    for section, ref in reference_state.items():
        if not isinstance(ref, dict):
            continue
        got = observed_state.get(section)
        got = got if isinstance(got, dict) else {}
        lost += sum(1 for key in ref if key not in got)
    return lost


class ChaosRuntime:
    """Process-native fault adapter bound to one ``ProcessSubstrate``.

    The :class:`FaultInjector` calls :meth:`fire` (and
    :meth:`kill_worker` for armed mid-drain SIGKILLs) from barrier
    hooks — quiescent points with no execution waves in flight, which
    is what lets a host be killed, respawned, and WAL-replayed
    synchronously without racing the worker pool.
    """

    def __init__(self, substrate):
        self._substrate = substrate
        self.kills: dict[str, int] = {}
        self.network_faults: dict[str, int] = {}
        self.disk_faults: dict[str, int] = {}
        self.mttr_samples: list[MttrSample] = []
        self.corruptions_injected = 0
        # CORRUPTION_STATS is process-global; snapshot it so accounting
        # reports only detections that happened under *this* runtime
        self._parent_crc_baseline = CORRUPTION_STATS["frames_detected"]

    # -- dispatch ---------------------------------------------------------

    def fire(self, fault: Fault) -> None:
        kind = fault.kind
        if kind == "host_sigkill":
            self.kill_host(fault.target[0])
        elif kind in ("conn_reset", "frame_drop", "frame_corrupt"):
            self.network_fault(fault.target[0], kind, fault.target[1])
        elif kind == "frame_delay":
            host_index, count, seconds = fault.target
            self.network_fault(host_index, "frame_delay", count, seconds)
        elif kind == "one_way_partition":
            host_index, direction, count = fault.target
            # inbound: requests die before dispatch (connection reset);
            # outbound: requests apply but their acks never come back
            mapped = "conn_reset" if direction == "inbound" else "frame_drop"
            self.network_fault(
                host_index, mapped, count * PARTITION_WIDTH,
                record_as=f"partition_{direction}",
            )
        elif kind in WAL_CORRUPTION_KINDS:
            self.corrupt_wal(fault.target[0], kind)
        elif kind in WAL_FAULT_KINDS:
            self.disk_fault(fault.target[0], kind)
        else:
            raise FaultPlanError(
                f"chaos runtime cannot fire fault kind {kind!r}"
            )

    # -- SIGKILL ----------------------------------------------------------

    def kill_host(self, host_index: int) -> MttrSample:
        """``kill -9`` a server host, respawn it, replay its WAL, and
        verify it serves again; the whole span is one MTTR sample."""
        from repro.runtime.substrate import SERVER_HOST_PREFIX

        name = f"{SERVER_HOST_PREFIX}{host_index}"
        supervisor = self._substrate.supervisor
        managed = supervisor.get(name)
        start = time.monotonic()
        self._sigkill(managed)
        # restart hooks repoint the facade and drive _replay_wal; the
        # respawn rebinds the same port, so worker-held proxies survive
        supervisor.restart(name)
        self._probe_serving(host_index)
        sample = MttrSample(
            "host_sigkill", host_index, time.monotonic() - start
        )
        self.mttr_samples.append(sample)
        self.kills["host_sigkill"] = self.kills.get("host_sigkill", 0) + 1
        return sample

    def kill_worker(self, worker_index: int) -> None:
        """SIGKILL a storm worker mid-drain. Recovery is deliberately
        *lazy*: the parent's next dispatch finds the corpse and drives
        respawn + topology reload + re-dispatch — the exactly-once
        layer absorbs the re-executed tuples."""
        from repro.runtime.substrate import WORKER_PREFIX

        name = f"{WORKER_PREFIX}{worker_index}"
        managed = self._substrate.supervisor.get(name)
        self._sigkill(managed)
        self.kills["worker_sigkill"] = (
            self.kills.get("worker_sigkill", 0) + 1
        )

    def _sigkill(self, managed) -> None:
        if managed.alive and managed.pid is not None:
            os.kill(managed.pid, signal.SIGKILL)
        managed.process.join(timeout=10.0)

    # -- network ----------------------------------------------------------

    def network_fault(
        self,
        host_index: int,
        kind: str,
        count: int,
        seconds: float = 0.0,
        *,
        record_as: "str | None" = None,
    ) -> None:
        """Arm a window of ``count`` transport faults on one host."""
        rpc = self._host_rpc(host_index)
        try:
            rpc.call("_chaos", kind, count, seconds)
        finally:
            rpc.close()
        label = record_as or kind
        self.network_faults[label] = (
            self.network_faults.get(label, 0) + count
        )

    # -- disk -------------------------------------------------------------

    def disk_fault(self, host_index: int, kind: str) -> MttrSample:
        """Arm a one-shot WAL fault, trigger it, and recover the host.

        The trigger is a probe mutation that will never be acknowledged:
        the host fail-stops on the poisoned append (``torn_write`` /
        ``disk_full``) or commit (``fsync_error``), so the probe's
        transport error *is* the fault firing. Losing an un-acked write
        is correct; WAL replay restores exactly the acknowledged prefix.
        """
        from repro.runtime.substrate import SERVER_HOST_PREFIX

        name = f"{SERVER_HOST_PREFIX}{host_index}"
        supervisor = self._substrate.supervisor
        managed = supervisor.get(name)
        server_id = self._local_server(host_index)
        if server_id is None:
            raise FaultPlanError(
                f"host {host_index} owns no data server to poison"
            )
        arm = RpcClient(*managed.address)
        try:
            arm.call("_wal_fault", kind)
        finally:
            arm.close()
        instance = self._hosted_instance(server_id)
        start = time.monotonic()
        trigger = RpcClient(*managed.address, timeout=10.0)
        try:
            trigger.call(
                "put",
                instance,
                "__chaos_probe__",
                f"{kind}@{host_index}",
                target=("data", server_id),
            )
        except RemoteOpError:
            pass  # expected: the host died before (or instead of) acking
        finally:
            trigger.close()
        managed.process.join(timeout=10.0)
        supervisor.restart(name)
        self._probe_serving(host_index)
        sample = MttrSample(kind, host_index, time.monotonic() - start)
        self.mttr_samples.append(sample)
        self.disk_faults[kind] = self.disk_faults.get(kind, 0) + 1
        return sample

    def corrupt_wal(self, host_index: int, kind: str) -> None:
        """Arm a *silent* WAL corruption and trigger it with a probe
        mutation that IS acknowledged.

        Unlike the loud disk faults, nothing fail-stops here: the
        damaged record sits in the log, invisible, until the host's
        next respawn CRC-scans it during replay — at which point the
        substrate quarantines the log and re-seeds the host's state
        from its live replica. The plan must therefore kill this host
        *later* for the corruption to be detected (and the acceptance
        accounting to reconcile injected == detected).
        """
        from repro.runtime.substrate import SERVER_HOST_PREFIX

        managed = self._substrate.supervisor.get(
            f"{SERVER_HOST_PREFIX}{host_index}"
        )
        server_id = self._local_server(host_index)
        if server_id is None:
            raise FaultPlanError(
                f"host {host_index} owns no data server to corrupt"
            )
        arm = RpcClient(*managed.address)
        try:
            arm.call("_wal_fault", kind)
        finally:
            arm.close()
        instance = self._hosted_instance(server_id)
        trigger = RpcClient(*managed.address, timeout=10.0)
        try:
            # the append is poisoned but the op acks normally — silence
            # is the property under test
            trigger.call(
                "put",
                instance,
                "__chaos_probe__",
                f"{kind}@{host_index}",
                target=("data", server_id),
            )
        finally:
            trigger.close()
        self.disk_faults[kind] = self.disk_faults.get(kind, 0) + 1
        self.corruptions_injected += 1

    # -- plumbing ---------------------------------------------------------

    def _host_rpc(self, host_index: int) -> RpcClient:
        from repro.runtime.substrate import SERVER_HOST_PREFIX

        managed = self._substrate.supervisor.get(
            f"{SERVER_HOST_PREFIX}{host_index}"
        )
        return RpcClient(*managed.address)

    def _hosted_instance(self, server_id: int) -> int:
        """An instance the server currently hosts — a probe mutation
        against it exercises the real acceptance path end to end."""
        table = self._substrate.facade.config.route_table()
        for instance in range(table.num_instances):
            if table.route(instance).host == server_id:
                return instance
        raise FaultPlanError(
            f"data server {server_id} hosts no instance to probe"
        )

    def _local_server(self, host_index: int) -> "int | None":
        facade = self._substrate.facade
        if facade is None:
            return None
        for sid, host in sorted(facade.placement.items()):
            if host == host_index:
                return sid
        return None

    def _probe_serving(self, host_index: int) -> None:
        """The recovered host must answer both the admin plane and a
        data-plane read before the MTTR clock stops."""
        rpc = self._host_rpc(host_index)
        try:
            rpc.call("_ping")
            server_id = self._local_server(host_index)
            if server_id is not None:
                rpc.call(".alive", target=("data", server_id))
        finally:
            rpc.close()

    def stats(self) -> dict:
        durations = [s.seconds for s in self.mttr_samples]
        return {
            "kills": dict(self.kills),
            "network_faults": dict(self.network_faults),
            "disk_faults": dict(self.disk_faults),
            "mttr_count": len(durations),
            "mttr_p50": percentile(durations, 50),
            "mttr_p99": percentile(durations, 99),
            "mttr_max": max(durations) if durations else None,
        }

    def corruption_accounting(self, cluster=None) -> dict:
        """Reconcile corruption injected vs detected, cluster-wide.

        Injected: silent WAL corruptions armed by this runtime plus
        response frames the hosts' RPC servers actually damaged
        (``corrupt_response`` fires at send time, so the host's own
        tally is authoritative even when a window partially drains).

        Detected: CRC failures everywhere a frame is decoded — the
        parent process (client proxies), each host and worker process
        (their ``_stats`` carry ``frame_corruptions_detected``), and
        WAL replay scans (counted parent-side by the substrate when a
        respawn surfaces :class:`~repro.runtime.wal.WalError`, so a
        host that dies of its own scan does not double-report).
        """
        injected = self.corruptions_injected
        detected = max(
            0, CORRUPTION_STATS["frames_detected"] - self._parent_crc_baseline
        )
        detected += getattr(self._substrate, "wal_corruptions_detected", 0)
        facade = getattr(self._substrate, "facade", None)
        if facade is not None:
            for stats in facade.host_stats():
                chaos = stats.get("chaos") or {}
                injected += (chaos.get("injected") or {}).get(
                    "corrupt_response", 0
                )
                detected += stats.get("frame_corruptions_detected", 0)
        if cluster is not None and hasattr(cluster, "worker_stats"):
            for stats in cluster.worker_stats():
                detected += stats.get("frame_corruptions_detected", 0)
        return {"injected": injected, "detected": detected}


MIDFLIGHT_COUNTERS = ("tuples", "rpcs", "wal_records")

# poll remote counters (host RPC/WAL tallies) every N executions — a
# counter RPC per tuple would dominate the run without adding precision
MIDFLIGHT_POLL_EVERY = 4


@dataclass(frozen=True)
class MidFlightTrigger:
    """Fire a fault when a progress counter crosses ``at``.

    ``counter`` is one of :data:`MIDFLIGHT_COUNTERS`:

    - ``"tuples"`` — bolt executions observed parent-side;
    - ``"rpcs"`` — RPC requests served across the TDStore hosts;
    - ``"wal_records"`` — WAL records appended across the hosts.

    All three are monotone progress measures, never wall clock, so a
    seeded mid-flight schedule replays at any machine speed. On the
    simulator substrate (no host processes, so no remote counters) the
    remote counters degrade to the tuple counter — the plan still
    replays completely, with the process-native kinds recorded skipped.
    """

    counter: str
    at: int

    def __post_init__(self):
        if self.counter not in MIDFLIGHT_COUNTERS:
            raise FaultPlanError(
                f"unknown mid-flight counter {self.counter!r}; "
                f"expected one of {MIDFLIGHT_COUNTERS}"
            )
        if self.at < 0:
            raise FaultPlanError(
                f"mid-flight threshold must be >= 0, got {self.at}"
            )


class _MidFlightEntry:
    __slots__ = ("trigger", "fault", "fired")

    def __init__(self, trigger: MidFlightTrigger, fault: Fault):
        self.trigger = trigger
        self.fault = fault
        self.fired = False


class MidFlightScheduler:
    """Non-quiescent fault scheduling: faults land *mid-wave*.

    Barrier hooks fire at quiescent points — every queue drained, no
    tuple trees open. That is exactly when real failures do **not**
    happen. This scheduler keys faults to execute hooks instead: a
    SIGKILL, partition, or silent corruption fires while tuple trees
    are open, acks are pending, and the WAL group-committer holds dirty
    records.

    Execute hooks run parent-side between worker dispatches, so firing
    a fault here is race-free with the RPC plumbing while still landing
    mid-wave from the system's point of view: workers hold queued
    tuples, un-acked writes, and open ledgers when the fault lands.

    ``flush()`` fires whatever the stream was too short to reach — a
    plan always completes, so cross-substrate runs stay comparable.
    """

    def __init__(
        self, entries: "list[tuple[MidFlightTrigger, Fault]]"
    ):
        self._entries = [_MidFlightEntry(t, f) for t, f in entries]
        self._injector = None
        self._counter_source: "Callable[[], dict] | None" = None
        self._attached_to = None
        self._tuples = 0
        self._since_poll = 0
        self._remote: dict = {"rpcs": 0, "wal_records": 0}
        self.fired_midflight: "list[Fault]" = []
        self.flushed: "list[Fault]" = []

    # -- wiring -----------------------------------------------------------

    def attach(self, cluster, injector, counter_source=None) -> None:
        """Hook into ``cluster``'s execute stream, firing through
        ``injector``. ``counter_source`` (process substrate only) is a
        zero-arg callable returning ``{"rpcs": int, "wal_records": int}``
        summed across hosts; None degrades remote triggers to tuples."""
        self.detach()
        self._injector = injector
        self._counter_source = counter_source
        cluster.add_execute_hook(self._on_execute)
        self._attached_to = cluster

    def detach(self) -> None:
        if self._attached_to is not None:
            self._attached_to.remove_execute_hook(self._on_execute)
            self._attached_to = None

    def pending(self) -> int:
        return sum(1 for entry in self._entries if not entry.fired)

    # -- the non-quiescent trigger path -----------------------------------

    def _on_execute(self, topology_name: str) -> None:
        self._tuples += 1
        if self.pending() == 0:
            return
        if self._counter_source is not None and self._remote_pending():
            self._since_poll += 1
            if self._since_poll >= MIDFLIGHT_POLL_EVERY:
                self._since_poll = 0
                try:
                    polled = self._counter_source()
                except RemoteOpError:
                    polled = None  # a host is mid-respawn; poll next time
                if polled is not None:
                    self._remote.update(polled)
        self._fire_due(self._counters(), self.fired_midflight)

    def _remote_pending(self) -> bool:
        return any(
            not entry.fired and entry.trigger.counter != "tuples"
            for entry in self._entries
        )

    def _counters(self) -> dict:
        if self._counter_source is None:
            # simulator fallback: every counter is tuple progress
            return {
                "tuples": self._tuples,
                "rpcs": self._tuples,
                "wal_records": self._tuples,
            }
        counters = dict(self._remote)
        counters["tuples"] = self._tuples
        return counters

    def _fire_due(self, counters: dict, record_into: "list[Fault]") -> None:
        for entry in self._entries:
            if entry.fired:
                continue
            if counters.get(entry.trigger.counter, 0) >= entry.trigger.at:
                entry.fired = True
                record_into.append(entry.fault)
                if self._injector is not None:
                    self._injector.fire_now(entry.fault)

    def flush(self) -> int:
        """Fire every remaining trigger at quiescence (stream ended
        before its counter crossed the threshold). Returns the count."""
        remaining = [e for e in self._entries if not e.fired]
        for entry in remaining:
            entry.fired = True
            self.flushed.append(entry.fault)
            if self._injector is not None:
                self._injector.fire_now(entry.fault)
        return len(remaining)


class OnlineInvariantMonitor:
    """Invariant probes that run *concurrently with* execution.

    The acceptance suites check invariants after the run; this monitor
    checks them while faults are landing — every ``every`` executions:

    - **route-epoch monotonicity**: the config server's route-table
      version must never regress (a regressed epoch would let stale
      routes win fencing races);
    - **ledger watermark sanity**: every task ledger reports
      ``within_bound`` (the dedup window never silently under-covers
      the retained offsets);
    - **serve probe** (optional): front-end reads answered under fire.

    Probes that cannot reach a component mid-failover are not
    violations — unavailability windows are the chaos being injected;
    only *wrong answers* (regressed epoch, out-of-bound ledger) are.
    """

    def __init__(
        self,
        harness,
        *,
        every: int = 16,
        serve_probe: "Callable[[], tuple[int, int]] | None" = None,
    ):
        self.harness = harness
        self.every = max(1, every)
        self.serve_probe = serve_probe
        self.probes = 0
        self.violations: "list[str]" = []
        self.serve_attempts = 0
        self.serve_answered = 0
        self._executions = 0
        self._last_epoch: "int | None" = None
        self._attached_to = None

    def attach(self, cluster) -> None:
        self.detach()
        cluster.add_execute_hook(self._on_execute)
        self._attached_to = cluster

    def detach(self) -> None:
        if self._attached_to is not None:
            self._attached_to.remove_execute_hook(self._on_execute)
            self._attached_to = None

    def _on_execute(self, topology_name: str) -> None:
        self._executions += 1
        if self._executions % self.every == 0:
            self.probe(topology_name)

    def probe(self, topology_name: "str | None" = None) -> None:
        self.probes += 1
        self._probe_route_epoch()
        self._probe_ledgers(topology_name)
        if self.serve_probe is not None:
            attempts, answered = self.serve_probe()
            self.serve_attempts += attempts
            self.serve_answered += answered

    def _probe_route_epoch(self) -> None:
        try:
            version = self.harness.tdstore.config.route_table().version
        except Exception:
            return  # config server mid-failover: unavailability, not error
        if self._last_epoch is not None and version < self._last_epoch:
            self.violations.append(
                f"route epoch regressed: {self._last_epoch} -> {version}"
            )
        if self._last_epoch is None or version > self._last_epoch:
            self._last_epoch = version

    def _probe_ledgers(self, topology_name: "str | None") -> None:
        if topology_name is None:
            return
        try:
            stats = self.harness.cluster.exactly_once_stats(topology_name)
        except Exception:
            return  # a worker is mid-respawn: probe again next window
        for task, ledger in stats.items():
            if ledger.get("within_bound") is False:
                self.violations.append(
                    f"ledger watermark out of bound at {task}"
                )


def rekey_plan_midflight(
    plan: "list[Fault]",
    tuples_per_round: int,
    seed: int = 0,
) -> "list[tuple[MidFlightTrigger, Fault]]":
    """Convert a barrier-keyed plan into mid-flight tuple triggers.

    A fault at barrier round ``r`` becomes a trigger at
    ``(r - 1) * tuples_per_round + offset`` tuples, with a seeded
    offset inside the round — the fault that used to fire *after* the
    round's wave drains now fires somewhere *inside* it. Deterministic
    for a given (plan, tuples_per_round, seed).
    """
    if tuples_per_round < 1:
        raise FaultPlanError(
            f"tuples_per_round must be >= 1, got {tuples_per_round}"
        )
    rng = SeedSequenceFactory(seed).generator("midflight-rekey")
    entries: "list[tuple[MidFlightTrigger, Fault]]" = []
    for fault in sorted(plan, key=lambda f: f.round):
        offset = int(rng.integers(1, max(2, tuples_per_round)))
        at = max(1, (fault.round - 1) * tuples_per_round + offset)
        entries.append((MidFlightTrigger("tuples", at), fault))
    return entries


class ChaosOrchestrator:
    """Barrier-keyed chaos driver over a :class:`RecoveryHarness`.

    Fault timelines are keyed to progress barriers, never wall clock —
    the same seeded plan fires at the same logical points on any
    machine and either substrate. ``serve_probe`` (optional) runs at
    every barrier and returns ``(attempts, answered)`` for the
    front-end serve-rate invariant.
    """

    def __init__(
        self,
        harness,
        plan: "list[Fault]",
        *,
        serve_probe: "Callable[[], tuple[int, int]] | None" = None,
        scheduler: "MidFlightScheduler | None" = None,
        monitor: "OnlineInvariantMonitor | None" = None,
    ):
        self.harness = harness
        self.plan = list(plan)
        self.serve_probe = serve_probe
        self.scheduler = scheduler
        self.monitor = monitor
        self.serve_attempts = 0
        self.serve_answered = 0
        self.rounds = 0
        self.crashes = 0

    def _on_barrier(self, barrier_round: int) -> None:
        self.rounds = max(self.rounds, barrier_round)
        if self.serve_probe is not None:
            attempts, answered = self.serve_probe()
            self.serve_attempts += attempts
            self.serve_answered += answered

    def _hook_storm(self) -> None:
        self.harness.cluster.add_barrier_hook(self._on_barrier)
        if self.scheduler is not None:
            # fired flags persist across re-attach: a crash/rebuild never
            # re-fires an already-landed mid-flight fault
            self.scheduler.attach(
                self.harness.cluster,
                self.harness.injector,
                self._counter_source(),
            )
        if self.monitor is not None:
            self.monitor.attach(self.harness.cluster)

    def _counter_source(self) -> "Callable[[], dict] | None":
        """Cluster-wide RPC/WAL progress reader for mid-flight triggers;
        None on the simulator substrate (no host processes to poll)."""
        facade = getattr(self.harness.substrate, "facade", None)
        if facade is None or not hasattr(facade, "host_stats"):
            return None

        def read() -> dict:
            rpcs = 0
            wal_records = 0
            for stats in facade.host_stats():
                rpcs += stats.get("rpc_requests", 0)
                wal_records += (stats.get("wal") or {}).get("records", 0)
            return {"rpcs": rpcs, "wal_records": wal_records}

        return read

    def run(self, *, max_crashes: int = 8) -> str:
        """Start the harness under the plan and drive it to completion,
        re-hooking the rebuilt storm cluster after each crash."""
        self.harness.start(self.plan)
        self._hook_storm()
        while True:
            status = self.harness.run()
            if status != "crashed":
                if self.scheduler is not None:
                    self.scheduler.flush()
                return status
            self.crashes += 1
            if self.crashes > max_crashes:
                raise FaultPlanError(
                    f"chaos run exceeded {max_crashes} crash recoveries"
                )
            self.harness.recover()
            self._hook_storm()

    def report(
        self,
        *,
        fingerprint: "tuple | None" = None,
        reference: "tuple | None" = None,
    ) -> ChaosReport:
        """Distill the run. ``fingerprint``/``reference`` are
        ``(recommendations_bytes, state_digest)`` pairs; when both are
        given the report carries byte-identity and lost-key results."""
        runtime = self.harness.substrate.chaos_runtime()
        stats = runtime.stats() if runtime is not None else {}
        injector = self.harness.injector
        report = ChaosReport(
            kills=stats.get("kills", {}),
            network_faults=stats.get("network_faults", {}),
            disk_faults=stats.get("disk_faults", {}),
            mttr_count=stats.get("mttr_count", 0),
            mttr_p50=stats.get("mttr_p50"),
            mttr_p99=stats.get("mttr_p99"),
            mttr_max=stats.get("mttr_max"),
            serve_attempts=self.serve_attempts,
            serve_answered=self.serve_answered,
            skipped_faults=len(injector.skipped) if injector else 0,
            injected_faults=len(injector.injected) if injector else 0,
            rounds=self.rounds,
            crashes=self.crashes,
        )
        if runtime is not None:
            # armed mid-drain worker SIGKILLs fire through the injector
            report.kills.setdefault("worker_sigkill", 0)
            accounting = runtime.corruption_accounting(
                cluster=self.harness.cluster
            )
            report.corruptions_injected = accounting["injected"]
            report.corruptions_detected = accounting["detected"]
        if self.scheduler is not None:
            report.midflight_fired = len(self.scheduler.fired_midflight)
            report.flushed_faults = len(self.scheduler.flushed)
        if self.monitor is not None:
            report.online_probes = self.monitor.probes
            report.invariant_violations = list(self.monitor.violations)
            report.serve_attempts += self.monitor.serve_attempts
            report.serve_answered += self.monitor.serve_answered
        if fingerprint is not None and reference is not None:
            report.fingerprint_match = fingerprint == reference
            report.lost_keys = lost_keys(reference[1], fingerprint[1])
        return report


def seeded_process_plan(
    seed: int,
    *,
    horizon: int,
    hosts: int,
    workers: int,
    host_kills: int = 1,
    worker_kills: int = 1,
    partitions: int = 1,
    conn_resets: int = 1,
    frame_drops: int = 1,
    frame_delays: int = 1,
    delay_seconds: float = 0.02,
    disk_faults: "tuple[str, ...]" = (),
    latency_spikes: int = 0,
    spike_seconds: float = 0.05,
    tdstore_servers: "list[int] | None" = None,
    sigkill_after: int = 3,
    rewind_depth: int = 6,
) -> "list[Fault]":
    """Deterministic process-native chaos plan.

    Host SIGKILLs and disk faults start at round 2 (some acknowledged
    state must exist for WAL replay to prove anything); network-fault
    windows stay narrow enough for the transport-retry budget to
    absorb, because the invariant under test is convergence.
    """
    if horizon < 4:
        raise FaultPlanError(
            f"horizon too short to schedule faults: {horizon}"
        )
    rng = SeedSequenceFactory(seed).generator("process-fault-plan")
    plan: list[Fault] = []

    def _round(lo: int, hi: int) -> int:
        return int(rng.integers(lo, max(lo + 1, hi)))

    def _host() -> int:
        return int(rng.integers(0, hosts))

    for _ in range(host_kills):
        plan.append(Fault(_round(2, horizon), "host_sigkill", (_host(),)))
    for _ in range(worker_kills):
        plan.append(
            Fault(
                _round(2, horizon),
                "worker_sigkill",
                (int(rng.integers(0, workers)), sigkill_after, rewind_depth),
            )
        )
    for _ in range(partitions):
        direction = "inbound" if int(rng.integers(0, 2)) == 0 else "outbound"
        plan.append(
            Fault(
                _round(1, horizon),
                "one_way_partition",
                (_host(), direction, 1),
            )
        )
    for _ in range(conn_resets):
        plan.append(Fault(_round(1, horizon), "conn_reset", (_host(), 1)))
    for _ in range(frame_drops):
        plan.append(Fault(_round(1, horizon), "frame_drop", (_host(), 1)))
    for _ in range(frame_delays):
        plan.append(
            Fault(
                _round(1, horizon),
                "frame_delay",
                (_host(), 2, delay_seconds),
            )
        )
    for kind in disk_faults:
        if kind not in WAL_FAULT_KINDS:
            raise FaultPlanError(f"unknown disk fault kind {kind!r}")
        plan.append(Fault(_round(2, horizon), kind, (_host(),)))
    if tdstore_servers:
        for _ in range(latency_spikes):
            server = tdstore_servers[
                int(rng.integers(0, len(tdstore_servers)))
            ]
            start = _round(1, horizon - 2)
            plan.append(
                Fault(
                    start, "latency_spike", ("tdstore", server, spike_seconds)
                )
            )
            plan.append(
                Fault(
                    start + _round(1, 3),
                    "clear_degradation",
                    ("tdstore", server),
                )
            )
    return sorted(plan, key=lambda fault: fault.round)


__all__ = [
    "ChaosOrchestrator",
    "ChaosReport",
    "ChaosRuntime",
    "MidFlightScheduler",
    "MidFlightTrigger",
    "MttrSample",
    "OnlineInvariantMonitor",
    "lost_keys",
    "percentile",
    "rekey_plan_midflight",
    "seeded_process_plan",
    "MIDFLIGHT_COUNTERS",
    "PARTITION_WIDTH",
    "NETWORK_FAULT_KINDS",
    "WAL_CORRUPTION_KINDS",
    "WAL_FAULT_KINDS",
]
