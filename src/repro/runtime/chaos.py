"""Process-native chaos: real SIGKILL, network, and disk faults.

This is the layer ROADMAP item 1 called for: the full chaos vocabulary
running against *real* OS processes instead of the simulator's modeled
failures. Three pieces:

- :class:`ChaosRuntime` — the adapter a :class:`FaultInjector` fires
  process-native faults through. It SIGKILLs supervised hosts and
  workers, arms network-fault windows on the hosts' RPC transports
  (``_chaos`` admin op -> ``RpcServer.fault_hook``), and arms one-shot
  WAL disk faults (``_wal_fault`` -> ``DiskFaultShim``). Every
  host-level fault is driven to recovery *synchronously at the barrier*
  (kill -> respawn -> WAL replay -> serving probe) and timed into an
  MTTR sample.
- :class:`ChaosOrchestrator` — drives a ``RecoveryHarness`` under a
  seeded, barrier-keyed plan (never wall clock: a plan replays
  identically at any machine speed), probing front-end serve rate at
  every barrier and distilling the run into a :class:`ChaosReport`
  whose invariants the acceptance suites assert: zero lost keys, 100%
  serve rate, final state byte-identical to a fault-free reference.
- :func:`seeded_process_plan` — deterministic generator for plans
  mixing SIGKILLs, partitions, resets, delayed/dropped frames, disk
  faults, and (real-delay) latency spikes.

Why the faults converge: every mutating TDStore op is op-journaled
(``put_once``/``apply_op`` dedup) or last-write-wins, acks are withheld
until the WAL's ``fsync`` covers them, and the client proxies retry
transport failures against stable ports. A killed host replays exactly
the acknowledged prefix; a swallowed ack is re-sent and deduped; a
fail-stopped WAL host loses only un-acked writes — which is correct.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import FaultPlanError, RemoteOpError
from repro.recovery.faults import (
    Fault,
    NETWORK_FAULT_KINDS,
    WAL_FAULT_KINDS,
)
from repro.runtime.rpc import RpcClient
from repro.utils.rng import SeedSequenceFactory

# width (in disturbed request frames) of a one_way_partition window;
# kept under the proxies' transport-retry budget so the partition is
# absorbable by design — the proof is convergence, not outage
PARTITION_WIDTH = 2


@dataclass(frozen=True)
class MttrSample:
    """One SIGKILL (or disk-fault fail-stop) -> recovered-and-serving
    measurement: the time from the kill to the respawned host having
    replayed its WAL and answered a data-plane probe."""

    kind: str
    target: int
    seconds: float


@dataclass
class ChaosReport:
    """What a chaos run actually did, and whether it converged."""

    kills: dict = field(default_factory=dict)
    network_faults: dict = field(default_factory=dict)
    disk_faults: dict = field(default_factory=dict)
    mttr_count: int = 0
    mttr_p50: "float | None" = None
    mttr_p99: "float | None" = None
    mttr_max: "float | None" = None
    lost_keys: int = 0
    serve_attempts: int = 0
    serve_answered: int = 0
    fingerprint_match: "bool | None" = None
    skipped_faults: int = 0
    injected_faults: int = 0
    rounds: int = 0
    crashes: int = 0

    @property
    def serve_rate(self) -> float:
        if self.serve_attempts == 0:
            return 1.0
        return self.serve_answered / self.serve_attempts

    def to_dict(self) -> dict:
        return {
            "kills": dict(self.kills),
            "network_faults": dict(self.network_faults),
            "disk_faults": dict(self.disk_faults),
            "mttr": {
                "count": self.mttr_count,
                "p50": self.mttr_p50,
                "p99": self.mttr_p99,
                "max": self.mttr_max,
            },
            "lost_keys": self.lost_keys,
            "serve_attempts": self.serve_attempts,
            "serve_answered": self.serve_answered,
            "serve_rate": self.serve_rate,
            "fingerprint_match": self.fingerprint_match,
            "skipped_faults": self.skipped_faults,
            "injected_faults": self.injected_faults,
            "rounds": self.rounds,
            "crashes": self.crashes,
        }


def percentile(values: "list[float]", q: float) -> "float | None":
    """Nearest-rank percentile; None on an empty sample."""
    if not values:
        return None
    ordered = sorted(values)
    rank = round(q / 100.0 * (len(ordered) - 1))
    return ordered[int(min(len(ordered) - 1, max(0, rank)))]


def lost_keys(reference_state: dict, observed_state: dict) -> int:
    """Keys present in a reference state digest but absent after chaos.

    Both arguments are nested section -> {key: value} digests (see
    ``tests.recovery.helpers.state_digest``). Byte-identity is the
    stronger check; this one localizes a divergence to dropped keys.
    """
    lost = 0
    for section, ref in reference_state.items():
        if not isinstance(ref, dict):
            continue
        got = observed_state.get(section)
        got = got if isinstance(got, dict) else {}
        lost += sum(1 for key in ref if key not in got)
    return lost


class ChaosRuntime:
    """Process-native fault adapter bound to one ``ProcessSubstrate``.

    The :class:`FaultInjector` calls :meth:`fire` (and
    :meth:`kill_worker` for armed mid-drain SIGKILLs) from barrier
    hooks — quiescent points with no execution waves in flight, which
    is what lets a host be killed, respawned, and WAL-replayed
    synchronously without racing the worker pool.
    """

    def __init__(self, substrate):
        self._substrate = substrate
        self.kills: dict[str, int] = {}
        self.network_faults: dict[str, int] = {}
        self.disk_faults: dict[str, int] = {}
        self.mttr_samples: list[MttrSample] = []

    # -- dispatch ---------------------------------------------------------

    def fire(self, fault: Fault) -> None:
        kind = fault.kind
        if kind == "host_sigkill":
            self.kill_host(fault.target[0])
        elif kind in ("conn_reset", "frame_drop"):
            self.network_fault(fault.target[0], kind, fault.target[1])
        elif kind == "frame_delay":
            host_index, count, seconds = fault.target
            self.network_fault(host_index, "frame_delay", count, seconds)
        elif kind == "one_way_partition":
            host_index, direction, count = fault.target
            # inbound: requests die before dispatch (connection reset);
            # outbound: requests apply but their acks never come back
            mapped = "conn_reset" if direction == "inbound" else "frame_drop"
            self.network_fault(
                host_index, mapped, count * PARTITION_WIDTH,
                record_as=f"partition_{direction}",
            )
        elif kind in WAL_FAULT_KINDS:
            self.disk_fault(fault.target[0], kind)
        else:
            raise FaultPlanError(
                f"chaos runtime cannot fire fault kind {kind!r}"
            )

    # -- SIGKILL ----------------------------------------------------------

    def kill_host(self, host_index: int) -> MttrSample:
        """``kill -9`` a server host, respawn it, replay its WAL, and
        verify it serves again; the whole span is one MTTR sample."""
        from repro.runtime.substrate import SERVER_HOST_PREFIX

        name = f"{SERVER_HOST_PREFIX}{host_index}"
        supervisor = self._substrate.supervisor
        managed = supervisor.get(name)
        start = time.monotonic()
        self._sigkill(managed)
        # restart hooks repoint the facade and drive _replay_wal; the
        # respawn rebinds the same port, so worker-held proxies survive
        supervisor.restart(name)
        self._probe_serving(host_index)
        sample = MttrSample(
            "host_sigkill", host_index, time.monotonic() - start
        )
        self.mttr_samples.append(sample)
        self.kills["host_sigkill"] = self.kills.get("host_sigkill", 0) + 1
        return sample

    def kill_worker(self, worker_index: int) -> None:
        """SIGKILL a storm worker mid-drain. Recovery is deliberately
        *lazy*: the parent's next dispatch finds the corpse and drives
        respawn + topology reload + re-dispatch — the exactly-once
        layer absorbs the re-executed tuples."""
        from repro.runtime.substrate import WORKER_PREFIX

        name = f"{WORKER_PREFIX}{worker_index}"
        managed = self._substrate.supervisor.get(name)
        self._sigkill(managed)
        self.kills["worker_sigkill"] = (
            self.kills.get("worker_sigkill", 0) + 1
        )

    def _sigkill(self, managed) -> None:
        if managed.alive and managed.pid is not None:
            os.kill(managed.pid, signal.SIGKILL)
        managed.process.join(timeout=10.0)

    # -- network ----------------------------------------------------------

    def network_fault(
        self,
        host_index: int,
        kind: str,
        count: int,
        seconds: float = 0.0,
        *,
        record_as: "str | None" = None,
    ) -> None:
        """Arm a window of ``count`` transport faults on one host."""
        rpc = self._host_rpc(host_index)
        try:
            rpc.call("_chaos", kind, count, seconds)
        finally:
            rpc.close()
        label = record_as or kind
        self.network_faults[label] = (
            self.network_faults.get(label, 0) + count
        )

    # -- disk -------------------------------------------------------------

    def disk_fault(self, host_index: int, kind: str) -> MttrSample:
        """Arm a one-shot WAL fault, trigger it, and recover the host.

        The trigger is a probe mutation that will never be acknowledged:
        the host fail-stops on the poisoned append (``torn_write`` /
        ``disk_full``) or commit (``fsync_error``), so the probe's
        transport error *is* the fault firing. Losing an un-acked write
        is correct; WAL replay restores exactly the acknowledged prefix.
        """
        from repro.runtime.substrate import SERVER_HOST_PREFIX

        name = f"{SERVER_HOST_PREFIX}{host_index}"
        supervisor = self._substrate.supervisor
        managed = supervisor.get(name)
        server_id = self._local_server(host_index)
        if server_id is None:
            raise FaultPlanError(
                f"host {host_index} owns no data server to poison"
            )
        arm = RpcClient(*managed.address)
        try:
            arm.call("_wal_fault", kind)
        finally:
            arm.close()
        instance = self._hosted_instance(server_id)
        start = time.monotonic()
        trigger = RpcClient(*managed.address, timeout=10.0)
        try:
            trigger.call(
                "put",
                instance,
                "__chaos_probe__",
                f"{kind}@{host_index}",
                target=("data", server_id),
            )
        except RemoteOpError:
            pass  # expected: the host died before (or instead of) acking
        finally:
            trigger.close()
        managed.process.join(timeout=10.0)
        supervisor.restart(name)
        self._probe_serving(host_index)
        sample = MttrSample(kind, host_index, time.monotonic() - start)
        self.mttr_samples.append(sample)
        self.disk_faults[kind] = self.disk_faults.get(kind, 0) + 1
        return sample

    # -- plumbing ---------------------------------------------------------

    def _host_rpc(self, host_index: int) -> RpcClient:
        from repro.runtime.substrate import SERVER_HOST_PREFIX

        managed = self._substrate.supervisor.get(
            f"{SERVER_HOST_PREFIX}{host_index}"
        )
        return RpcClient(*managed.address)

    def _hosted_instance(self, server_id: int) -> int:
        """An instance the server currently hosts — a probe mutation
        against it exercises the real acceptance path end to end."""
        table = self._substrate.facade.config.route_table()
        for instance in range(table.num_instances):
            if table.route(instance).host == server_id:
                return instance
        raise FaultPlanError(
            f"data server {server_id} hosts no instance to probe"
        )

    def _local_server(self, host_index: int) -> "int | None":
        facade = self._substrate.facade
        if facade is None:
            return None
        for sid, host in sorted(facade.placement.items()):
            if host == host_index:
                return sid
        return None

    def _probe_serving(self, host_index: int) -> None:
        """The recovered host must answer both the admin plane and a
        data-plane read before the MTTR clock stops."""
        rpc = self._host_rpc(host_index)
        try:
            rpc.call("_ping")
            server_id = self._local_server(host_index)
            if server_id is not None:
                rpc.call(".alive", target=("data", server_id))
        finally:
            rpc.close()

    def stats(self) -> dict:
        durations = [s.seconds for s in self.mttr_samples]
        return {
            "kills": dict(self.kills),
            "network_faults": dict(self.network_faults),
            "disk_faults": dict(self.disk_faults),
            "mttr_count": len(durations),
            "mttr_p50": percentile(durations, 50),
            "mttr_p99": percentile(durations, 99),
            "mttr_max": max(durations) if durations else None,
        }


class ChaosOrchestrator:
    """Barrier-keyed chaos driver over a :class:`RecoveryHarness`.

    Fault timelines are keyed to progress barriers, never wall clock —
    the same seeded plan fires at the same logical points on any
    machine and either substrate. ``serve_probe`` (optional) runs at
    every barrier and returns ``(attempts, answered)`` for the
    front-end serve-rate invariant.
    """

    def __init__(
        self,
        harness,
        plan: "list[Fault]",
        *,
        serve_probe: "Callable[[], tuple[int, int]] | None" = None,
    ):
        self.harness = harness
        self.plan = list(plan)
        self.serve_probe = serve_probe
        self.serve_attempts = 0
        self.serve_answered = 0
        self.rounds = 0
        self.crashes = 0

    def _on_barrier(self, barrier_round: int) -> None:
        self.rounds = max(self.rounds, barrier_round)
        if self.serve_probe is not None:
            attempts, answered = self.serve_probe()
            self.serve_attempts += attempts
            self.serve_answered += answered

    def _hook_storm(self) -> None:
        self.harness.cluster.add_barrier_hook(self._on_barrier)

    def run(self, *, max_crashes: int = 8) -> str:
        """Start the harness under the plan and drive it to completion,
        re-hooking the rebuilt storm cluster after each crash."""
        self.harness.start(self.plan)
        self._hook_storm()
        while True:
            status = self.harness.run()
            if status != "crashed":
                return status
            self.crashes += 1
            if self.crashes > max_crashes:
                raise FaultPlanError(
                    f"chaos run exceeded {max_crashes} crash recoveries"
                )
            self.harness.recover()
            self._hook_storm()

    def report(
        self,
        *,
        fingerprint: "tuple | None" = None,
        reference: "tuple | None" = None,
    ) -> ChaosReport:
        """Distill the run. ``fingerprint``/``reference`` are
        ``(recommendations_bytes, state_digest)`` pairs; when both are
        given the report carries byte-identity and lost-key results."""
        runtime = self.harness.substrate.chaos_runtime()
        stats = runtime.stats() if runtime is not None else {}
        injector = self.harness.injector
        report = ChaosReport(
            kills=stats.get("kills", {}),
            network_faults=stats.get("network_faults", {}),
            disk_faults=stats.get("disk_faults", {}),
            mttr_count=stats.get("mttr_count", 0),
            mttr_p50=stats.get("mttr_p50"),
            mttr_p99=stats.get("mttr_p99"),
            mttr_max=stats.get("mttr_max"),
            serve_attempts=self.serve_attempts,
            serve_answered=self.serve_answered,
            skipped_faults=len(injector.skipped) if injector else 0,
            injected_faults=len(injector.injected) if injector else 0,
            rounds=self.rounds,
            crashes=self.crashes,
        )
        if runtime is not None:
            # armed mid-drain worker SIGKILLs fire through the injector
            report.kills.setdefault("worker_sigkill", 0)
        if fingerprint is not None and reference is not None:
            report.fingerprint_match = fingerprint == reference
            report.lost_keys = lost_keys(reference[1], fingerprint[1])
        return report


def seeded_process_plan(
    seed: int,
    *,
    horizon: int,
    hosts: int,
    workers: int,
    host_kills: int = 1,
    worker_kills: int = 1,
    partitions: int = 1,
    conn_resets: int = 1,
    frame_drops: int = 1,
    frame_delays: int = 1,
    delay_seconds: float = 0.02,
    disk_faults: "tuple[str, ...]" = (),
    latency_spikes: int = 0,
    spike_seconds: float = 0.05,
    tdstore_servers: "list[int] | None" = None,
    sigkill_after: int = 3,
    rewind_depth: int = 6,
) -> "list[Fault]":
    """Deterministic process-native chaos plan.

    Host SIGKILLs and disk faults start at round 2 (some acknowledged
    state must exist for WAL replay to prove anything); network-fault
    windows stay narrow enough for the transport-retry budget to
    absorb, because the invariant under test is convergence.
    """
    if horizon < 4:
        raise FaultPlanError(
            f"horizon too short to schedule faults: {horizon}"
        )
    rng = SeedSequenceFactory(seed).generator("process-fault-plan")
    plan: list[Fault] = []

    def _round(lo: int, hi: int) -> int:
        return int(rng.integers(lo, max(lo + 1, hi)))

    def _host() -> int:
        return int(rng.integers(0, hosts))

    for _ in range(host_kills):
        plan.append(Fault(_round(2, horizon), "host_sigkill", (_host(),)))
    for _ in range(worker_kills):
        plan.append(
            Fault(
                _round(2, horizon),
                "worker_sigkill",
                (int(rng.integers(0, workers)), sigkill_after, rewind_depth),
            )
        )
    for _ in range(partitions):
        direction = "inbound" if int(rng.integers(0, 2)) == 0 else "outbound"
        plan.append(
            Fault(
                _round(1, horizon),
                "one_way_partition",
                (_host(), direction, 1),
            )
        )
    for _ in range(conn_resets):
        plan.append(Fault(_round(1, horizon), "conn_reset", (_host(), 1)))
    for _ in range(frame_drops):
        plan.append(Fault(_round(1, horizon), "frame_drop", (_host(), 1)))
    for _ in range(frame_delays):
        plan.append(
            Fault(
                _round(1, horizon),
                "frame_delay",
                (_host(), 2, delay_seconds),
            )
        )
    for kind in disk_faults:
        if kind not in WAL_FAULT_KINDS:
            raise FaultPlanError(f"unknown disk fault kind {kind!r}")
        plan.append(Fault(_round(2, horizon), kind, (_host(),)))
    if tdstore_servers:
        for _ in range(latency_spikes):
            server = tdstore_servers[
                int(rng.integers(0, len(tdstore_servers)))
            ]
            start = _round(1, horizon - 2)
            plan.append(
                Fault(
                    start, "latency_spike", ("tdstore", server, spike_seconds)
                )
            )
            plan.append(
                Fault(
                    start + _round(1, 3),
                    "clear_degradation",
                    ("tdstore", server),
                )
            )
    return sorted(plan, key=lambda fault: fault.round)


__all__ = [
    "ChaosOrchestrator",
    "ChaosReport",
    "ChaosRuntime",
    "MttrSample",
    "lost_keys",
    "percentile",
    "seeded_process_plan",
    "PARTITION_WIDTH",
    "NETWORK_FAULT_KINDS",
    "WAL_FAULT_KINDS",
]
