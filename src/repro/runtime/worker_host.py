"""The Storm worker process.

Holds the live bolt instances for its share of a topology's tasks and
executes batches of tuples the parent dispatches over RPC. Everything
*around* execution stays in the parent — routing, grouping, acking,
metrics, checkpoint policy — so the worker's job is exactly a real
Storm executor's: run ``bolt.execute`` against local state and report
what the bolt emitted.

Emissions are captured by a *recording* ``OutputCollector``: the same
collector class the simulator uses (so op-id derivation, emit sequence
numbers and timestamps are identical by construction), but with sink
callbacks that append events to a per-tuple record instead of routing.
The parent replays each record through its own collectors, which is
where ack trees grow, metrics increment, and downstream queues fill.

Bolts talk to TDStore through the same remote proxies the parent uses;
their resilient clients charge deadlines and retry budgets against a
:class:`~repro.utils.clock.WallClock`, while the worker's event-time
``SimClock`` is advanced to the parent's clock on every dispatch.
"""

from __future__ import annotations

import os
import signal
import time

from repro.errors import ClusterStateError
from repro.runtime.proxies import ProcessTDStore
from repro.runtime.recipes import build_factory, task_owner
from repro.runtime.rpc import RpcServer
from repro.runtime.wire import (
    CORRUPTION_STATS,
    Response,
    encode_error,
    sanitize_exception,
)
from repro.storm.component import Bolt, OutputCollector, TopologyContext
from repro.storm.tuples import StormTuple
from repro.utils.clock import SimClock


class _WorkerTask:
    """One live bolt instance plus its recording collector."""

    def __init__(self, component: str, task_index: int, instance, collector):
        self.component = component
        self.task_index = task_index
        self.instance = instance
        self.collector = collector
        self.events: "list[tuple] | None" = None


class _WorkerTopology:
    """Worker-side state for one loaded topology."""

    def __init__(self, name: str, topology, clock, store: ProcessTDStore):
        self.name = name
        self.topology = topology
        self.clock = clock
        self.store = store
        self.tasks: dict[tuple[str, int], _WorkerTask] = {}
        self.parallelism: dict[str, int] = {
            name: spec.parallelism for name, spec in topology.specs.items()
        }


class WorkerHost:
    """Request dispatcher for one worker process."""

    def __init__(self, config: dict):
        self.worker_index: int = config["worker_index"]
        self.num_workers: int = config["num_workers"]
        self._topologies: dict[str, _WorkerTopology] = {}
        self.server = RpcServer(self.handle_batch)
        self.executed = 0
        self.ticks = 0
        self.started_at = time.time()

    def handle_batch(self, batch) -> list:
        responses = []
        for _, request in batch:
            try:
                value = getattr(self, request.method)(*request.args)
                responses.append(Response(value=value))
            except Exception as exc:
                responses.append(encode_error(exc))
        return responses

    # -- topology lifecycle ----------------------------------------------

    def load_topology(
        self,
        name: str,
        recipe,
        tdstore_addresses,
        tdstore_placement,
    ) -> "list[tuple[str, int]]":
        """(Re)build this worker's task instances from a recipe.

        Returns the owned task keys, mostly as a handshake the parent
        can log. Loading is idempotent-by-replacement: a reload after a
        worker restart starts every instance fresh (kill semantics).
        """
        clock = SimClock()
        store = ProcessTDStore(tdstore_addresses, tdstore_placement)
        factory = build_factory(recipe)
        topology = factory(clock, store.client, None)
        if topology.name != name:
            raise ClusterStateError(
                f"recipe built topology {topology.name!r}, expected {name!r}"
            )
        entry = _WorkerTopology(name, topology, clock, store)
        self._topologies[name] = entry
        for spec_name, spec in topology.specs.items():
            if spec.is_spout:
                continue  # spouts poll sources; they live in the parent
            for index in range(spec.parallelism):
                if task_owner(spec_name, index, self.num_workers) == self.worker_index:
                    self._build_task(entry, spec_name, index)
        return sorted(entry.tasks)

    def unload_topology(self, name: str):
        entry = self._topologies.pop(name, None)
        if entry is not None:
            entry.store.close()

    def _entry(self, name: str) -> _WorkerTopology:
        entry = self._topologies.get(name)
        if entry is None:
            raise ClusterStateError(
                f"worker {self.worker_index} has no topology {name!r}; "
                "was load_topology shipped?"
            )
        return entry

    def _build_task(
        self, entry: _WorkerTopology, component: str, task_index: int
    ) -> _WorkerTask:
        spec = entry.topology.specs[component]
        instance = spec.factory()
        task = _WorkerTask(component, task_index, instance, None)

        def record(kind, *payload):
            if task.events is None:
                raise ClusterStateError(
                    f"{component}[{task_index}] emitted outside execute/tick"
                )
            task.events.append((kind, *payload))

        def emit_fn(tup: StormTuple, message_id):
            record("emit", tup.stream_id, tup.values, tup.op_id)

        def ack_fn(tup: StormTuple):
            record("ack")

        def fail_fn(tup: StormTuple):
            record("fail")

        task.collector = OutputCollector(
            component,
            task_index,
            spec.declaration,
            emit_fn,
            ack_fn,
            fail_fn,
            entry.clock.now,
        )
        context = TopologyContext(
            component,
            task_index,
            entry.parallelism[component],
            entry.topology.name,
        )
        instance.prepare(context, task.collector)
        entry.tasks[(component, task_index)] = task
        return task

    # -- execution --------------------------------------------------------

    def execute_batch(self, name: str, now: float, batches) -> list:
        """Run dispatched tuples; return per-tuple event records.

        ``batches`` is ``[(component, task_index, [StormTuple...]), ...]``;
        the result is aligned with it. Each record is
        ``{"events": [...], "error": exc|None}`` — the parent replays
        events through its own collectors and re-raises the error, so
        parent-side control flow is byte-for-byte the simulator's.
        """
        entry = self._entry(name)
        entry.clock.advance_to(now)
        out = []
        for component, task_index, tuples in batches:
            task = entry.tasks.get((component, task_index))
            if task is None:
                task = self._build_task(entry, component, task_index)
            records = []
            for tup in tuples:
                records.append(self._execute_one(task, tup))
            out.append((component, task_index, records))
        return out

    def _execute_one(self, task: _WorkerTask, tup: StormTuple) -> dict:
        events: list[tuple] = []
        task.events = events
        task.collector.set_input_context(tup.root_ids, tup.op_id)
        error = None
        try:
            task.instance.execute(tup)
        except Exception as exc:
            task.collector.fail(tup)
            error = sanitize_exception(exc)
        finally:
            task.collector.set_input_context(frozenset(), None)
            task.events = None
        self.executed += 1
        return {"events": events, "error": error}

    def tick_all(self, name: str, now: float) -> list:
        """Tick every owned bolt; returns ``[(comp, idx, events), ...]``."""
        entry = self._entry(name)
        entry.clock.advance_to(now)
        out = []
        for key in sorted(entry.tasks):
            task = entry.tasks[key]
            if not isinstance(task.instance, Bolt):
                continue
            events: list[tuple] = []
            task.events = events
            try:
                task.instance.tick(now)
            finally:
                task.events = None
            self.ticks += 1
            out.append((key[0], key[1], events))
        return out

    # -- task control (parent mirrors of kill/rebalance/checkpoint) ------

    def reset_task(self, name: str, component: str, task_index: int):
        """Fresh instance, state lost — the worker half of ``kill_task``."""
        entry = self._entry(name)
        entry.tasks.pop((component, task_index), None)
        self._build_task(entry, component, task_index)

    def reset_component(self, name: str, component: str, parallelism: int):
        """Drop and re-pin a component's tasks — the worker half of
        ``rebalance``."""
        entry = self._entry(name)
        entry.parallelism[component] = parallelism
        for key in [k for k in entry.tasks if k[0] == component]:
            del entry.tasks[key]
        for index in range(parallelism):
            if task_owner(component, index, self.num_workers) == self.worker_index:
                self._build_task(entry, component, index)

    def snapshot_tasks(self, name: str) -> dict:
        """``{(comp, idx): state}`` for every owned task with local state."""
        entry = self._entry(name)
        states = {}
        for key, task in entry.tasks.items():
            state = task.instance.snapshot_state()
            if state is not None:
                states[key] = state
        return states

    def restore_tasks(self, name: str, states: dict):
        entry = self._entry(name)
        for key, state in states.items():
            task = entry.tasks.get(key)
            if task is None:
                task = self._build_task(entry, key[0], key[1])
            task.instance.restore_state(state)

    def ledger_stats(self, name: str) -> dict:
        """Dedup-ledger stats for owned tasks (monitoring aggregation)."""
        entry = self._entry(name)
        stats = {}
        for key, task in entry.tasks.items():
            ledger_stats = getattr(task.instance, "ledger_stats", None)
            if callable(ledger_stats):
                stats[key] = ledger_stats()
        return stats

    # -- admin ------------------------------------------------------------

    def _ping(self) -> str:
        return "pong"

    def _sleep(self, seconds: float) -> str:
        time.sleep(seconds)
        return "slept"

    def _stats(self) -> dict:
        return {
            "pid": os.getpid(),
            "worker_index": self.worker_index,
            "topologies": sorted(self._topologies),
            "tasks": {
                name: sorted(entry.tasks)
                for name, entry in self._topologies.items()
            },
            "executed": self.executed,
            "ticks": self.ticks,
            "rpc_requests": self.server.requests,
            # workers never scan WALs, so every CRC failure this process
            # caught came off an RPC stream (TDStore replies, typically)
            "frame_corruptions_detected": CORRUPTION_STATS["frames_detected"],
            "uptime": time.time() - self.started_at,
        }

    def _shutdown(self) -> str:
        self.server.stop()
        return "stopping"

    def serve(self):
        try:
            self.server.serve_forever()
        finally:
            for entry in self._topologies.values():
                entry.store.close()


def worker_host_main(conn, config: dict):
    """Process entrypoint (module-level: ``spawn`` re-imports it)."""
    _install_signal_handlers()
    try:
        host = WorkerHost(config)
    except Exception as exc:
        conn.send(("error", repr(exc)))
        conn.close()
        raise
    conn.send(("ready", host.server.port))
    conn.close()
    host.serve()


def _install_signal_handlers():
    def _exit(signum, frame):
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _exit)
    signal.signal(signal.SIGINT, _exit)
