"""repro.runtime — the multi-process execution substrate.

Everywhere else in this codebase "a TDStore data server" or "a Storm
worker" is a Python object inside one simulated process. This package
makes them real: TDStore servers become OS processes serving a
length-prefixed framed RPC protocol over TCP sockets, Storm bolts
execute inside a supervised worker-process pool fed over the same
transport, and durability is a group-committed write-ahead log that is
``fsync``\\ ed before a mutation is acknowledged.

The deterministic simulator remains the default test substrate; both
live behind the :class:`Substrate` interface so existing topologies,
route tables, resilience policies and the serving layer run unmodified
on either — substrate choice is a constructor switch, not a code fork.

Layering (stdlib only — ``socket`` / ``selectors`` / ``multiprocessing``):

====================  ====================================================
``wire``              frame codec + request/response envelopes; TDStore
                      errors round-trip as real exception objects
``rpc``               blocking client / selectors server with batched
                      dispatch (the group-commit window)
``wal``               group-committed write-ahead log (one fsync per
                      ready batch, replayed on restart)
``server_host``       the TDStore server process: logical data servers +
                      the config pair behind one RPC endpoint
``worker_host``       the Storm worker process: executes bolt tasks and
                      records their emissions for parent-side replay
``proxies``           client-side duck types of ``TDStoreDataServer`` /
                      ``ConfigServerPair`` / ``TDStoreCluster``
``supervisor``        spawn/heartbeat/kill-hung/restart/reap for the
                      process tree
``process_cluster``   ``LocalCluster`` subclass dispatching bolt
                      execution to the worker pool
``substrate``         ``SimSubstrate`` / ``ProcessSubstrate``
``chaos``             process-native fault injection (SIGKILL, network,
                      disk) + barrier-keyed orchestration and MTTR
====================  ====================================================
"""

from repro.errors import (
    RemoteOpError,
    RuntimeSubstrateError,
    SubstrateMismatchError,
    WorkerCrashError,
)
from repro.runtime.chaos import (
    ChaosOrchestrator,
    ChaosReport,
    ChaosRuntime,
    MttrSample,
    seeded_process_plan,
)
from repro.runtime.process_cluster import ProcessCluster
from repro.runtime.proxies import (
    ProcessTDStore,
    RemoteConfigServer,
    RemoteDataServer,
)
from repro.runtime.recipes import topology_recipe
from repro.runtime.rpc import RpcClient, RpcServer
from repro.runtime.substrate import ProcessSubstrate, SimSubstrate, Substrate
from repro.runtime.supervisor import ManagedProcess, ProcessSupervisor
from repro.runtime.wal import DiskFaultShim, GroupCommitWal
from repro.runtime.wire import Request, Response, StreamDecoder, encode_frame

__all__ = [
    "ChaosOrchestrator",
    "ChaosReport",
    "ChaosRuntime",
    "DiskFaultShim",
    "GroupCommitWal",
    "ManagedProcess",
    "MttrSample",
    "ProcessCluster",
    "ProcessSubstrate",
    "ProcessSupervisor",
    "ProcessTDStore",
    "RemoteConfigServer",
    "RemoteDataServer",
    "RemoteOpError",
    "Request",
    "Response",
    "RpcClient",
    "RpcServer",
    "RuntimeSubstrateError",
    "SimSubstrate",
    "StreamDecoder",
    "Substrate",
    "SubstrateMismatchError",
    "WorkerCrashError",
    "encode_frame",
    "seeded_process_plan",
    "topology_recipe",
]
