"""``ProcessCluster``: a ``LocalCluster`` whose bolts run in worker
processes.

The parent keeps everything that makes the simulator deterministic —
spout polling, stream routing, groupings, the acker, metrics, queues,
barrier/execute hooks — and replaces only the innermost step: instead
of calling ``bolt.execute`` on a local instance, it drains each bolt
queue into a *wave*, dispatches every task's batch to its pinned worker
process (one RPC per worker, all in flight at once), and then replays
the recorded emissions through its own collectors in a fixed order.

Execution within a wave is genuinely concurrent across workers; the
parent-side replay is deterministic. Fields groupings pin each key's
tuples to one task, and tasks are pinned to workers, so cross-worker
TDStore effects within a wave are on disjoint keys (or commutative
increments) — the invariant that keeps final state reproducible. With
``serialize_waves=True`` even server-side arrival order is sequential,
trading the parallel speedup for simulator-grade determinism.

A worker that dies mid-wave is respawned by the supervisor, its
topologies reloaded, and its share of the wave re-dispatched: the bolts
restart fresh (exactly ``kill_task`` semantics) and the re-executed
tuples fall on the dedup ledgers and op journals that already make
at-least-once delivery exact.
"""

from __future__ import annotations

from typing import Any

from repro.errors import (
    ClusterStateError,
    ConfigurationError,
    RemoteOpError,
    WorkerCrashError,
)
from repro.runtime.recipes import task_owner
from repro.runtime.rpc import RpcClient
from repro.runtime.supervisor import ManagedProcess, ProcessSupervisor
from repro.runtime.wire import Request
from repro.storm.cluster import LocalCluster, _RunningTopology, _Task
from repro.storm.component import Bolt
from repro.storm.topology import Topology
from repro.storm.tuples import StormTuple


class ProcessCluster(LocalCluster):
    """Drop-in ``LocalCluster`` executing bolt tasks in worker processes.

    Parameters beyond ``LocalCluster``'s:

    workers:
        The supervised worker processes, in worker-index order.
    supervisor:
        Owns the worker tree; used to respawn crashed workers.
    tdstore_spec:
        ``(addresses, placement)`` of the TDStore server hosts, shipped
        to workers so their bolts build remote clients.
    serialize_waves:
        Dispatch one worker at a time instead of overlapping them.
    """

    def __init__(
        self,
        *,
        clock,
        workers: "list[ManagedProcess]",
        supervisor: ProcessSupervisor,
        tdstore_spec: "tuple[list, dict]",
        tick_interval: "float | None" = None,
        serialize_waves: bool = False,
    ):
        super().__init__(clock=clock, tick_interval=tick_interval)
        if not workers:
            raise ConfigurationError("ProcessCluster needs >= 1 worker process")
        self._workers = list(workers)
        self._supervisor = supervisor
        self._tdstore_spec = tdstore_spec
        self._serialize_waves = serialize_waves
        self._rpcs: dict[int, RpcClient] = {}
        self._recipes: dict[str, Any] = {}
        self.waves_dispatched = 0
        self.worker_recoveries = 0

    # -- worker plumbing --------------------------------------------------

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def _worker_rpc(self, index: int) -> RpcClient:
        rpc = self._rpcs.get(index)
        if rpc is None or not rpc.connected:
            managed = self._workers[index]
            rpc = self._rpcs[index] = RpcClient(managed.host, managed.port)
        return rpc

    def _worker_call(self, index: int, method: str, *args: Any) -> Any:
        try:
            return self._worker_rpc(index).call(method, *args)
        except RemoteOpError:
            self._recover_worker(index)
            return self._worker_rpc(index).call(method, *args)

    def _recover_worker(self, index: int):
        """Respawn a dead worker and reload its topologies.

        The respawned process starts every owned bolt fresh — the same
        contract as ``kill_task`` for each of them — so recovery leans
        on the exactly-once layer, not on salvaging lost memory.
        """
        managed = self._workers[index]
        self._drop_rpc(index)
        self._supervisor.restart(managed.name)
        self.worker_recoveries += 1
        self._reload_worker(index)

    def on_worker_restarted(self, index: int):
        """Substrate hook: the supervisor respawned this worker on its
        own initiative (``kill_hung``); reconnect and reload."""
        self._drop_rpc(index)
        self._reload_worker(index)

    def _drop_rpc(self, index: int):
        rpc = self._rpcs.pop(index, None)
        if rpc is not None:
            rpc.close()

    def _reload_worker(self, index: int):
        rpc = self._worker_rpc(index)
        addresses, placement = self._tdstore_spec
        for name, recipe in self._recipes.items():
            rpc.call("load_topology", name, recipe, addresses, placement)
            run = self._running.get(name)
            if run is not None:
                for (component, task_index), task in run.tasks.items():
                    if isinstance(task.instance, Bolt) and (
                        task_owner(component, task_index, self.num_workers)
                        == index
                    ):
                        run.metrics.task_restarts += 1

    # -- topology lifecycle -----------------------------------------------

    def submit(self, topology: Topology):
        if topology.name in self._running:
            raise ClusterStateError(
                f"topology {topology.name!r} already submitted"
            )
        recipe = getattr(topology, "recipe", None)
        if recipe is None:
            raise ConfigurationError(
                f"topology {topology.name!r} carries no recipe; build it "
                "through repro.runtime.topology_recipe(...) so worker "
                "processes can reconstruct it"
            )
        addresses, placement = self._tdstore_spec
        for index in range(self.num_workers):
            self._worker_call(
                index, "load_topology", topology.name, recipe, addresses, placement
            )
        self._recipes[topology.name] = recipe
        return super().submit(topology)

    def kill_topology(self, topology_name: str):
        super().kill_topology(topology_name)
        self._recipes.pop(topology_name, None)
        for index in range(self.num_workers):
            try:
                self._worker_call(index, "unload_topology", topology_name)
            except RemoteOpError:
                pass

    # -- execution: wave-based drain --------------------------------------

    def drain(self) -> int:
        """Process queued tuples to quiescence; returns tuples executed.

        Same contract as the simulator's drain. A *wave* is all queued
        tuples of one component, dispatched across the worker pool in
        one overlapped RPC per worker. Waves follow the topology's
        declaration order within each pass — the simulator's task
        iteration order — so a component's upstream has fully executed
        its share of the pass before the component reads TDStore, and
        tasks executing concurrently within a wave belong to the same
        fields/shuffle-grouped component and touch disjoint keys. That
        is what keeps results equal to the simulator's instead of merely
        self-consistent.
        """
        executed = 0
        while True:
            batch = 0
            for run in list(self._running.values()):
                for component in list(run.topology.specs):
                    wave = self._collect_component_wave(run, component)
                    if wave:
                        self._run_wave(wave)
                        batch += sum(len(tuples) for _, _, tuples in wave)
            self._maybe_tick()
            if batch == 0:
                return executed
            executed += batch

    def _collect_component_wave(self, run: _RunningTopology, component: str):
        """Drain one component's queues into ``[(run, key, tuples), ...]``."""
        wave = []
        for key in sorted(k for k in run.tasks if k[0] == component):
            task = run.tasks.get(key)
            if task is None or not task.queue:
                continue
            if not isinstance(task.instance, Bolt):
                raise ClusterStateError(f"tuple routed to non-bolt {key[0]!r}")
            tuples = list(task.queue)
            task.queue.clear()
            wave.append((run, key, tuples))
        return wave

    def _run_wave(self, wave):
        self.waves_dispatched += 1
        results = self._dispatch(wave)
        for run, key, tuples in wave:
            records = results[(run.topology.name, key)]
            self._replay_task_batch(run, key, tuples, records)

    def _dispatch(self, wave):
        """Execute the wave on the worker pool; one in-flight RPC each.

        Returns ``{(topology, key): [per-tuple records]}``. Worker death
        is handled per worker: respawn, reload, re-dispatch its share.
        """
        per_worker: dict[int, list] = {}
        for run, (component, task_index), tuples in wave:
            index = task_owner(component, task_index, self.num_workers)
            per_worker.setdefault(index, []).append(
                (run.topology.name, component, task_index, tuples)
            )
        now = self.clock.now()
        results: dict = {}
        if self._serialize_waves:
            for index, batches in sorted(per_worker.items()):
                self._collect_worker(index, batches, now, results, retry=True)
            return results
        in_flight = []
        for index, batches in sorted(per_worker.items()):
            request = self._batch_request(batches, now)
            try:
                self._worker_rpc(index).send_request(request)
                in_flight.append((index, batches))
            except RemoteOpError:
                self._recover_worker(index)
                self._collect_worker(index, batches, now, results, retry=False)
        for index, batches in in_flight:
            try:
                self._merge_results(
                    batches, self._worker_rpc(index).recv_response().unwrap(), results
                )
            except RemoteOpError:
                self._recover_worker(index)
                self._collect_worker(index, batches, now, results, retry=False)
        return results

    @staticmethod
    def _batch_request(batches, now: float) -> Request:
        by_topology: dict[str, list] = {}
        for topology_name, component, task_index, tuples in batches:
            by_topology.setdefault(topology_name, []).append(
                (component, task_index, tuples)
            )
        if len(by_topology) == 1:
            ((name, payload),) = by_topology.items()
            return Request("execute_batch", (name, now, payload))
        raise ClusterStateError(
            "one wave dispatch spans multiple topologies; split the wave"
        )

    def _collect_worker(self, index, batches, now, results, *, retry: bool):
        request = self._batch_request(batches, now)
        try:
            response = self._worker_rpc(index).call_raw(request).unwrap()
        except RemoteOpError:
            if not retry:
                raise WorkerCrashError(
                    f"worker {self._workers[index].name!r} died twice on one "
                    "wave; giving up"
                )
            self._recover_worker(index)
            response = self._collect_worker(index, batches, now, results, retry=False)
            return response
        self._merge_results(batches, response, results)
        return response

    @staticmethod
    def _merge_results(batches, response, results):
        topology_name = batches[0][0]
        for component, task_index, records in response:
            results[(topology_name, (component, task_index))] = records

    # -- parent-side replay ------------------------------------------------

    def _replay_task_batch(self, run: _RunningTopology, key, tuples, records):
        """Feed one task's recorded executions through the parent's
        collector — the exact control flow of the simulator's
        ``_execute``, with ``bolt.execute`` replaced by the record.

        If an execute hook kills this task mid-replay (the fresh
        instance lives both here and in the worker), the rest of the
        batch is pushed back on the queue and re-dispatched next wave,
        mirroring the simulator's re-lookup-per-tuple semantics; the
        worker-side effects of the discarded records are duplicates the
        dedup ledgers absorb.
        """
        for position, (tup, record) in enumerate(zip(tuples, records)):
            task = run.tasks.get(key)
            if task is None:
                return
            self._replay_one(run, task, tup, record)
            if run.tasks.get(key) is not task:
                remaining = tuples[position + 1 :]
                fresh = run.tasks.get(key)
                if fresh is not None and remaining:
                    fresh.queue.extendleft(reversed(remaining))
                return

    def _replay_one(self, run: _RunningTopology, task: _Task, tup: StormTuple, record):
        bolt = task.instance
        run.metrics.task(task.component_name, task.task_index).executed += 1
        task.collector.set_input_context(tup.root_ids, tup.op_id)
        try:
            self._replay_events(task, tup, record["events"])
            if record["error"] is not None:
                raise record["error"]
        finally:
            task.collector.set_input_context(frozenset(), None)
        if not getattr(bolt, "manual_ack", False):
            task.collector.ack(tup)
        for hook in list(self._execute_hooks):
            hook(run.topology.name)

    @staticmethod
    def _replay_events(task: _Task, tup: StormTuple, events):
        for event in events:
            kind = event[0]
            if kind == "emit":
                _, stream_id, values, op_id = event
                task.collector.emit(values, stream_id=stream_id, op_id=op_id)
            elif kind == "ack":
                task.collector.ack(tup)
            elif kind == "fail":
                task.collector.fail(tup)
            else:
                raise ClusterStateError(f"unknown replayed event {kind!r}")

    # -- ticks -------------------------------------------------------------

    def _tick_all(self, now: float):
        # collect from every worker first, then replay in the simulator's
        # task order so downstream queue order matches it exactly
        for run in self._running.values():
            merged: dict = {}
            for index in range(self.num_workers):
                for component, task_index, events in self._worker_call(
                    index, "tick_all", run.topology.name, now
                ):
                    merged[(component, task_index)] = events
            for key in list(run.tasks):
                events = merged.get(key)
                task = run.tasks.get(key)
                if not events or task is None:
                    continue
                task.collector.set_input_context(frozenset(), None)
                self._replay_events(task, None, events)

    # -- task control -------------------------------------------------------

    def kill_task(self, topology_name: str, component: str, task_index: int):
        super().kill_task(topology_name, component, task_index)
        run = self._running[topology_name]
        if isinstance(run.tasks[(component, task_index)].instance, Bolt):
            index = task_owner(component, task_index, self.num_workers)
            self._worker_call(index, "reset_task", topology_name, component, task_index)

    def rebalance(self, topology_name: str, component: str, parallelism: int):
        super().rebalance(topology_name, component, parallelism)
        run = self._running[topology_name]
        if not run.topology.specs[component].is_spout:
            for index in range(self.num_workers):
                self._worker_call(
                    index, "reset_component", topology_name, component, parallelism
                )

    # -- checkpoint integration ---------------------------------------------

    def capture_component_states(self, topology_name: str):
        """Merge parent-held spout states with worker-held bolt states."""
        run = self._running.get(topology_name)
        if run is None:
            raise ClusterStateError(f"unknown topology {topology_name!r}")
        states: dict = {}
        for key, task in run.tasks.items():
            if isinstance(task.instance, Bolt):
                continue  # the parent instance is a shadow; ask the worker
            state = task.instance.snapshot_state()
            if state is not None:
                states[key] = state
        for index in range(self.num_workers):
            states.update(self._worker_call(index, "snapshot_tasks", topology_name))
        return states

    def restore_component_states(self, topology_name: str, states):
        run = self._running.get(topology_name)
        if run is None:
            raise ClusterStateError(f"unknown topology {topology_name!r}")
        local: dict = {}
        per_worker: dict[int, dict] = {}
        for key, state in states.items():
            task = run.tasks.get(key)
            if task is None:
                raise ClusterStateError(
                    f"checkpoint names task {key[0]!r}[{key[1]}] which does "
                    f"not exist in {topology_name!r}; recovery requires the "
                    "same topology shape"
                )
            if isinstance(task.instance, Bolt):
                index = task_owner(key[0], key[1], self.num_workers)
                per_worker.setdefault(index, {})[key] = state
            else:
                local[key] = state
        super().restore_component_states(topology_name, local)
        for index, worker_states in per_worker.items():
            self._worker_call(index, "restore_tasks", topology_name, worker_states)

    def exactly_once_stats(self, topology_name: str) -> "dict[str, dict]":
        """Ledger stats shipped back from every worker, in task order."""
        run = self._running.get(topology_name)
        if run is None:
            raise ClusterStateError(f"unknown topology {topology_name!r}")
        merged: dict = {}
        for index in range(self.num_workers):
            merged.update(self._worker_call(index, "ledger_stats", topology_name))
        return {
            f"{name}[{task_index}]": merged[(name, task_index)]
            for name, task_index in sorted(merged)
        }

    # -- monitoring ----------------------------------------------------------

    def worker_stats(self) -> "list[dict]":
        """Per-worker runtime counters for cross-process monitoring."""
        return [
            self._worker_call(index, "_stats")
            for index in range(self.num_workers)
        ]

    def close(self):
        for rpc in self._rpcs.values():
            rpc.close()
        self._rpcs.clear()
