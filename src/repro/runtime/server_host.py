"""The TDStore server host process.

One host process serves a framed RPC endpoint fronting:

- its share of the logical ``TDStoreDataServer`` objects (data plane),
- on host 0 only: the real ``ConfigServerPair`` and a real
  ``TDStoreCluster`` facade (control plane), wired over internal
  proxies to data servers living in sibling host processes.

Logical servers are deliberately decoupled from processes: the route
table still spreads instances over N logical servers with host/slave
replication and failover, while the process count is an independent
deployment knob.

Durability: every successful mutating data-plane operation is appended
to the host's :class:`~repro.runtime.wal.GroupCommitWal` and its ack is
withheld until a ``fsync`` covers the record. The flush runs on a
dedicated :class:`GroupCommitter` thread: the serve loop applies
mutations and appends log records at full speed while the committer
coalesces every batch that queued up during the previous ``fsync`` into
one flush, then sends all of their acks. ``fsync`` releases the GIL, so
with concurrent workers the host overlaps disk waits with request
processing and the per-ack fsync cost drops toward ``1/K`` for a
group of ``K`` — this is where the parallel benchmark's scaling comes
from. The parent triggers ``_replay_wal`` after (re)provisioning to
rebuild data-plane state from the log — control-plane state (routes,
roles, failover history) is re-provisioned fresh; checkpoint recovery,
not the WAL, is the mechanism that restores post-failover layouts.
"""

from __future__ import annotations

import os
import queue
import signal
import sys
import threading
import time

from repro.errors import TDStoreError
from repro.runtime.proxies import MUTATING_DATA_METHODS, RemoteDataServer
from repro.runtime.rpc import RpcClient, RpcServer
from repro.runtime.wal import GroupCommitWal, WalError, replay
from repro.runtime.wire import (
    CORRUPTION_STATS,
    Request,
    Response,
    encode_error,
    encode_frame,
)

# cap on chaos-injected real per-op server delay: long enough to blow
# any realistic deadline budget, short enough that supervisor pings and
# client timeouts survive a whole degraded wave
REAL_DELAY_CAP = 0.25

# fail-stop exit code for a host whose WAL cannot promise durability;
# distinct from clean exits so the supervisor's restart bookkeeping and
# the chaos report can tell the two apart
WAL_FAIL_STOP_EXIT = 70

# control-plane calls that rebuild data-plane state and must therefore
# survive a later host crash: logged as ("__cluster__", method, args)
# records and re-applied by _replay_wal after the data-plane records.
# add_data_server is logged so a respawned host 0 re-creates elastic
# expansion servers (hosted by process 0) before their data records
CLUSTER_WAL_METHODS = frozenset({"restore_contents", "add_data_server"})
from repro.tdstore.cluster import TDStoreCluster
from repro.tdstore.config_server import ConfigServerPair
from repro.tdstore.data_server import TDStoreDataServer
from repro.tdstore.engines import MDBEngine


class HostedCluster(TDStoreCluster):
    """A ``TDStoreCluster`` over a pre-built (possibly mixed) server list.

    Entries are local ``TDStoreDataServer`` objects for servers this
    process owns and :class:`RemoteDataServer` proxies for servers owned
    by sibling host processes; every facade and config-server code path
    works on both through the shared duck type.
    """

    def __init__(self, servers: list, num_instances: int, engine_factory):
        self._engine_factory = engine_factory
        self.data_servers = list(servers)
        self.config = ConfigServerPair(self.data_servers, num_instances)


class GroupCommitter(threading.Thread):
    """Background thread that turns queued batches into group commits.

    The serve loop submits ``(mutating_conns, [(conn_id, payload)])``
    groups in completion order; this thread drains everything queued,
    issues *one* ``wal.commit()`` covering all of it, then sends the
    acks in submission order. Because the serve loop appends a record
    before submitting its group, and ``commit`` covers everything
    appended before it is called, every ack sent here is backed by a
    flush — the durability contract is identical to an inline fsync,
    minus the serve loop stalling on it.

    Eager flushing de-synchronizes concurrent writers: flush a one-op
    group the instant it arrives and the pool settles into alternating
    small commits instead of sharing one. So before flushing, the
    thread waits — bounded by an adaptive budget — until as many
    distinct connections have a write pending as the last flush
    covered (the adaptive-delay idea behind PostgreSQL's
    ``commit_delay``/``commit_siblings``). A lone writer sets the
    target to one and never waits; N lockstep writers converge on one
    ``fsync`` per N acks. The target decays by one per flush, so a
    writer going idle costs a few bounded waits, not a stall; and the
    wait budget itself halves every time a wait times out and regrows
    (up to ``max_group_wait``) when waits pay off, so a workload whose
    writers straggle slower than any useful window stops waiting for
    them at all.

    All responses (reads and admin ops included) flow through the
    queue so per-connection FIFO ordering is preserved; a cycle with
    no mutations skips both the wait and the flush.
    """

    def __init__(
        self, wal: GroupCommitWal, send, *, max_group_wait: float = 0.002
    ):
        super().__init__(name="group-committer", daemon=True)
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._wal = wal
        self._send = send
        self._max_group_wait = max_group_wait
        self._wait_budget = max_group_wait
        self._target_conns = 0
        self.flushes = 0
        self.groups_flushed = 0
        self.waits = 0
        self.wait_timeouts = 0
        self.waited_seconds = 0.0
        self.error: BaseException | None = None

    def submit(self, mutating_conns: frozenset, replies: list) -> None:
        if self.error is not None:
            raise WalError(f"group committer died: {self.error!r}")
        self._queue.put((mutating_conns, replies))

    def close(self) -> None:
        """Flush whatever is queued, send its acks, and stop."""
        self._queue.put(None)
        self.join(timeout=30.0)

    def run(self) -> None:
        try:
            while self._run_once():
                pass
        except WalError as exc:
            # a commit barrier that fails must not ack — and every ack
            # in the queue is waiting on exactly that barrier. Fail-stop
            # the whole host: the supervisor respawns it and WAL replay
            # restores the acknowledged prefix.
            print(f"group committer fail-stop: {exc}", file=sys.stderr)
            sys.stderr.flush()
            os._exit(WAL_FAIL_STOP_EXIT)
        except BaseException as exc:  # surface on the next submit()
            self.error = exc

    def _run_once(self) -> bool:
        groups = [self._queue.get()]
        keep_going, deadline = True, None
        while True:
            while True:  # coalesce everything already waiting
                try:
                    groups.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            if groups[-1] is None:
                keep_going = False
            pending_conns: set = set()
            mutating_conns: set = set()
            for group in groups:
                if group is None:
                    continue
                mutating_conns.update(group[0])
                pending_conns.update(cid for cid, _ in group[1])
            if (
                not keep_going
                or not mutating_conns
                or len(pending_conns) >= self._target_conns
            ):
                if deadline is not None or self._target_conns <= 1:
                    # a wait that reached its target (or needed none)
                    # earns a bigger budget next time
                    self._wait_budget = min(
                        self._max_group_wait, self._wait_budget * 1.5
                    )
                break
            if deadline is None:
                deadline = time.monotonic() + self._wait_budget
                self.waits += 1
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # waiting did not pay; stop betting so much on it (the
                # floor keeps probing so a lockstep phase can re-grow it)
                self.waited_seconds += self._wait_budget
                self._wait_budget = max(
                    self._max_group_wait / 8, self._wait_budget * 0.5
                )
                self.wait_timeouts += 1
                break
            try:
                groups.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                continue
        if mutating_conns:
            self._wal.commit()
            self.flushes += 1
            self.groups_flushed += sum(1 for g in groups if g is not None)
            # jump up to the observed concurrency, decay down slowly so
            # one quiet cycle doesn't collapse the pool out of lockstep
            self._target_conns = max(
                len(mutating_conns), self._target_conns - 1
            )
        for group in groups:
            if group is None:
                continue
            for conn_id, payload in group[1]:
                self._send(conn_id, payload)
        return keep_going

    def stats(self) -> dict:
        return {
            "flushes": self.flushes,
            "groups_flushed": self.groups_flushed,
            "avg_groups_per_flush": (
                self.groups_flushed / self.flushes if self.flushes else 0.0
            ),
            "waits": self.waits,
            "wait_timeouts": self.wait_timeouts,
            "waited_seconds": self.waited_seconds,
            "target_conns": self._target_conns,
        }


class ServerHost:
    """Request dispatcher and WAL bookkeeper for one host process."""

    def __init__(self, config: dict):
        self.host_index: int = config["host_index"]
        self.local_ids: list[int] = list(config["local_server_ids"])
        self.num_instances: int = config["num_instances"]
        self.locals: dict[int, TDStoreDataServer] = {
            sid: TDStoreDataServer(sid, MDBEngine) for sid in self.local_ids
        }
        self.wal = GroupCommitWal(
            config["wal_path"],
            durable=config.get("durable", True),
            commit_floor=config.get("commit_floor", 0.0),
        )
        self._max_group_wait = config.get("max_group_wait", 0.002)
        # chaos state: armed network-fault windows (counts of non-admin
        # request frames to disturb) and real per-data-server delays
        self._net_reset = 0
        self._net_drop = 0
        self._net_corrupt = 0
        self._net_delay: tuple[int, float] = (0, 0.0)
        self._delays: dict[int, float] = {}
        # CRC failures found by this host's own WAL replay scan; the
        # parent counts those from the surfaced WalError, so _stats
        # subtracts them to report RPC-frame detections without overlap
        self.wal_scan_corruptions = 0
        self.cluster: TDStoreCluster | None = None
        self._sibling_rpcs: dict[int, RpcClient] = {}
        if self.host_index == 0:
            servers = []
            placement: dict[int, int] = config["placement"]
            siblings: dict[int, tuple] = config.get("sibling_addresses", {})
            for sid in sorted(placement):
                if sid in self.locals:
                    servers.append(self.locals[sid])
                else:
                    host, port = siblings[placement[sid]]
                    rpc = self._sibling_rpcs.get(placement[sid])
                    if rpc is None:
                        rpc = RpcClient(host, port)
                        self._sibling_rpcs[placement[sid]] = rpc
                    servers.append(RemoteDataServer(rpc, sid))
            self.cluster = HostedCluster(servers, self.num_instances, MDBEngine)
        # a respawn reuses the port recorded by the parent after the
        # first spawn, so worker-held addresses survive host restarts
        self.server = RpcServer(self.handle_batch, port=config.get("port", 0))
        self.committer = GroupCommitter(
            self.wal,
            self.server.send_payload,
            max_group_wait=self._max_group_wait,
        )
        self.committer.start()
        self.started_at = time.time()

    # -- dispatch ---------------------------------------------------------

    def _receiver(self, target):
        if target is None:
            return self
        if target == "cluster":
            if self.cluster is None:
                raise TDStoreError(
                    f"host {self.host_index} does not run the control plane"
                )
            return self.cluster
        if target == "config":
            if self.cluster is None:
                raise TDStoreError(
                    f"host {self.host_index} does not run the config pair"
                )
            return self.cluster.config
        if isinstance(target, tuple) and target[0] == "data":
            server = self.locals.get(target[1])
            if server is None:
                raise TDStoreError(
                    f"host {self.host_index} does not own data server "
                    f"{target[1]}"
                )
            return server
        raise TDStoreError(f"unroutable rpc target {target!r}")

    def handle_batch(self, batch) -> None:
        """Apply every request in the batch, then route the acks.

        The serve loop never blocks on ``fsync``: mutations are applied
        and appended to the WAL here, but their acks travel through the
        :class:`GroupCommitter`, which coalesces every batch queued
        while the previous flush was in flight into one commit. Acks
        are sent only after that commit, so an acknowledged write is
        always on disk.

        Reads (and control-plane ops) are acked inline instead — a
        blocking client has one request in flight, so per-connection
        ordering cannot be violated, and making a read wait out a
        stranger's ``fsync`` would stall the whole worker pipeline
        between writes. Returning ``None`` tells the transport we own
        the replies.
        """
        mutating_conns = set()
        replies = []
        for conn_id, request in batch:
            target = request.target
            if (
                self._delays
                and isinstance(target, tuple)
                and target[0] == "data"
            ):
                # chaos latency: a real, bounded stall before serving —
                # the process-substrate meaning of latency_spike
                delay = self._delays.get(target[1], 0.0)
                if delay > 0.0:
                    time.sleep(delay)
            try:
                receiver = self._receiver(target)
                method = request.method
                if method.startswith("."):
                    value = getattr(receiver, method[1:])
                else:
                    value = getattr(receiver, method)(*request.args)
                if (
                    isinstance(target, tuple)
                    and target[0] == "data"
                    and method in MUTATING_DATA_METHODS
                ):
                    self._wal_append((target[1], method, request.args))
                    mutating_conns.add(conn_id)
                elif target == "cluster" and method in CLUSTER_WAL_METHODS:
                    if method == "add_data_server":
                        self._adopt_runtime_servers()
                    self._wal_append(("__cluster__", method, request.args))
                    mutating_conns.add(conn_id)
                response = Response(value=value)
            except Exception as exc:
                response = encode_error(exc)
            try:
                payload = encode_frame(response)
            except Exception as exc:
                payload = encode_frame(encode_error(exc))
            replies.append((conn_id, payload))
        deferred = [r for r in replies if r[0] in mutating_conns]
        for conn_id, payload in replies:
            if conn_id not in mutating_conns:
                self.server.send_payload(conn_id, payload)
        if deferred or mutating_conns:
            self.committer.submit(frozenset(mutating_conns), deferred)
        return None

    def _adopt_runtime_servers(self) -> None:
        """Register elastic-expansion servers in the data-plane routing.

        ``add_data_server`` creates the new ``TDStoreDataServer`` inside
        this process (runtime-created servers are always hosted by the
        control-plane host), so it must also serve that server's data
        RPCs and WAL-log its mutations like any provisioned local.
        """
        if self.cluster is None:
            return
        for server in self.cluster.data_servers:
            if (
                isinstance(server, TDStoreDataServer)
                and server.server_id not in self.locals
            ):
                self.locals[server.server_id] = server

    def _wal_append(self, record) -> None:
        try:
            self.wal.append(record)
        except WalError as exc:
            # the op was applied in memory but its log record is not on
            # disk and never will be: acking would lie, continuing would
            # let unlogged state diverge from what replay can rebuild.
            # Fail-stop; losing the un-acked op is correct.
            print(
                f"server host {self.host_index} fail-stop: {exc}",
                file=sys.stderr,
            )
            sys.stderr.flush()
            os._exit(WAL_FAIL_STOP_EXIT)

    # -- chaos seam (armed by the parent-side ChaosRuntime) ---------------

    def _rpc_fault_hook(self, conn_id: int, request: Request):
        if request.method.startswith("_"):
            return None  # supervision and chaos control stay fault-free
        if self._net_reset > 0:
            self._net_reset -= 1
            return "reset"
        if self._net_drop > 0:
            self._net_drop -= 1
            return "drop_response"
        if self._net_corrupt > 0:
            self._net_corrupt -= 1
            return "corrupt_response"
        count, seconds = self._net_delay
        if count > 0:
            self._net_delay = (count - 1, seconds)
            return ("delay", seconds)
        return None

    def _chaos(self, kind: str, count: int = 1, seconds: float = 0.0) -> dict:
        """Arm a window of ``count`` network faults on this host's RPC
        transport; one armed fault disturbs one non-admin request frame."""
        if kind == "conn_reset":
            self._net_reset += int(count)
        elif kind == "frame_drop":
            self._net_drop += int(count)
        elif kind == "frame_corrupt":
            self._net_corrupt += int(count)
        elif kind == "frame_delay":
            self._net_delay = (self._net_delay[0] + int(count), float(seconds))
        elif kind == "clear":
            self._net_reset = 0
            self._net_drop = 0
            self._net_corrupt = 0
            self._net_delay = (0, 0.0)
        else:
            raise TDStoreError(f"unknown network fault kind {kind!r}")
        self.server.fault_hook = self._rpc_fault_hook
        return self._chaos_stats()

    def _chaos_stats(self) -> dict:
        return {
            "armed": {
                "conn_reset": self._net_reset,
                "frame_drop": self._net_drop,
                "frame_corrupt": self._net_corrupt,
                "frame_delay": self._net_delay[0],
            },
            "injected": dict(self.server.faults_injected),
            "delayed_servers": sorted(self._delays),
            "wal_faults_fired": dict(self.wal.io.fired),
        }

    def _wal_fault(self, kind: str) -> list:
        """Arm a one-shot disk fault on the WAL's IO shim."""
        self.wal.io.arm(kind)
        return self.wal.io.armed()

    def _set_delay(self, server_id: int, seconds: float) -> float:
        applied = min(float(seconds), REAL_DELAY_CAP)
        self._delays[int(server_id)] = applied
        return applied

    def _clear_delay(self, server_id: int | None = None) -> list:
        if server_id is None:
            self._delays.clear()
        else:
            self._delays.pop(int(server_id), None)
        return sorted(self._delays)

    def _delayed_servers(self) -> list:
        return sorted(self._delays)

    # -- admin ops (target=None) -----------------------------------------

    def _ping(self) -> str:
        return "pong"

    def _sleep(self, seconds: float) -> str:
        # debugging/testing aid: simulate a hung host
        time.sleep(seconds)
        return "slept"

    def _stats(self) -> dict:
        return {
            "pid": os.getpid(),
            "host_index": self.host_index,
            "local_servers": sorted(self.locals),
            "rpc_batches": self.server.batches,
            "rpc_requests": self.server.requests,
            "wal": self.wal.stats(),
            "committer": self.committer.stats(),
            "chaos": self._chaos_stats(),
            # RPC-frame CRC failures this process caught; WAL replay-scan
            # detections are excluded (the parent counts those from the
            # surfaced WalError, so the cluster-wide sum stays exact)
            "frame_corruptions_detected": (
                CORRUPTION_STATS["frames_detected"] - self.wal_scan_corruptions
            ),
            "wal_scan_corruptions": self.wal_scan_corruptions,
            "uptime": time.time() - self.started_at,
        }

    def _replay_wal(self) -> int:
        """Rebuild local data-plane state from the log (post-provisioning).

        Only ops acknowledged before the crash are on disk; re-applying
        them in order onto freshly provisioned servers reproduces the
        exact acknowledged state. ``ensure_instance`` guards replay of
        ops against instances whose roles were provisioned differently.
        """

        def apply(record):
            server_id, method, args = record
            if server_id == "__cluster__":
                # control-plane rebuild (checkpoint restore, elastic
                # expansion) re-applied through the cluster facade;
                # writes to sibling-owned servers forward over their
                # proxies as usual
                if self.cluster is not None:
                    getattr(self.cluster, method)(*args)
                    if method == "add_data_server":
                        self._adopt_runtime_servers()
                return
            server = self.locals.get(server_id)
            if server is None:
                return
            granted = False
            if args and isinstance(args[0], int):
                server.ensure_instance(args[0])
                # a failover may have promoted this instance onto the
                # server after provisioning's balanced layout; the op
                # was acknowledged at log time, so lift the route fence
                # for the re-apply only — stale-route protection for
                # live clients must survive recovery, and the true
                # post-crash layout comes from checkpoint restore
                if not server.hosts(args[0]):
                    server.set_host_role(args[0], True)
                    granted = True
            try:
                getattr(server, method)(*args)
            finally:
                if granted:
                    server.set_host_role(args[0], False)

        # replay from a read handle; new appends continue on the live fd
        try:
            return replay(self.wal.path, apply)
        except WalError as exc:
            # detection-before-serving: the scan found acknowledged
            # records whose CRC no longer matches. Surface the typed
            # error to the parent (which quarantines the log and
            # re-seeds this host from its replica) — and remember the
            # count so _stats does not double-report these detections
            self.wal_scan_corruptions += exc.corrupt_records
            raise

    def _quarantine_wal(self) -> str:
        """Set the damaged log aside and reopen a fresh one in place.

        Called by the parent after :meth:`_replay_wal` surfaces mid-log
        corruption. The damaged file is preserved (``<path>.corrupt``)
        for forensics; the re-seed that follows repopulates the fresh
        log through the normal mutating-op path, so durability holds
        again once repair completes.
        """
        return self.wal.quarantine()

    def _shutdown(self) -> str:
        self.server.stop()
        return "stopping"

    # -- lifecycle --------------------------------------------------------

    def serve(self):
        try:
            # the committer must flush its queue while connections are
            # still open — the final _shutdown ack travels through it
            self.server.serve_forever(on_exit=self.committer.close)
        finally:
            self.wal.close()
            for rpc in self._sibling_rpcs.values():
                rpc.close()


def server_host_main(conn, config: dict):
    """Process entrypoint (module-level: ``spawn`` re-imports it)."""
    _install_signal_handlers()
    try:
        host = ServerHost(config)
    except Exception as exc:
        conn.send(("error", repr(exc)))
        conn.close()
        raise
    conn.send(("ready", host.server.port))
    conn.close()
    host.serve()


def _install_signal_handlers():
    # SIGTERM/SIGINT exit the process cleanly (finally blocks run, the
    # WAL is committed and closed) instead of dying mid-write
    def _exit(signum, frame):
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _exit)
    signal.signal(signal.SIGINT, _exit)
