"""Client-side duck types for remote TDStore servers.

The resilience stack in :mod:`repro.tdstore.client` was written against
in-process ``TDStoreDataServer`` / ``ConfigServerPair`` objects. These
proxies satisfy the same surface over RPC, so ``TDStoreClient`` — route
caching, failover, migration fencing, breakers, deadlines — runs
unmodified against real server processes. The error types it dispatches
on (``StaleRouteError``, ``MigrationInProgressError``, ...) round-trip
through the wire layer as themselves.

Two reads are deliberately *not* RPCs because they sit on the client's
per-operation hot path:

- ``RemoteConfigServer.route_epoch`` is a cached value, refreshed on
  every ``route_table()`` download. A stale cache is safe: the host
  fence turns a stale route into ``StaleRouteError``, which makes the
  client refresh — the same protocol that protects in-process clients.
- ``RemoteDataServer.latency`` is always ``0.0``. On the process
  substrate latency is real elapsed time, not an advertised number for
  the client to charge against a simulated clock.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.errors import RemoteOpError, SubstrateMismatchError, TDStoreError
from repro.runtime.rpc import RpcClient
from repro.runtime.wire import MUTATING_DATA_METHODS as MUTATING_DATA_METHODS
from repro.utils.clock import WallClock

# transport-level retry: a RemoteOpError means the TCP connection died
# (host killed, connection reset, ack swallowed) — the client has
# already closed the socket, so a fresh call reconnects. Every mutating
# op is either op-journaled (put_once/apply_op dedup) or last-write-wins,
# so re-sending an op whose ack was lost after the apply is convergent;
# this is what makes conn_reset / frame_drop / host_sigkill faults
# absorbable below the resilience stack.
TRANSPORT_RETRIES = 3
TRANSPORT_BACKOFF = 0.05


def _retrying(
    rpc: RpcClient,
    method: str,
    args: tuple,
    target: Any,
    recover: "Callable[[], None] | None",
    counter: "Callable[[], None]",
) -> Any:
    attempt = 0
    while True:
        try:
            return rpc.call(method, *args, target=target)
        except RemoteOpError:
            attempt += 1
            if attempt > TRANSPORT_RETRIES:
                raise
            counter()
            if recover is not None:
                # parent-side: ask the supervisor to respawn the host
                # (no-op when it is alive and the fault was transient)
                try:
                    recover()
                except Exception:
                    pass
            else:
                # worker-side: the parent restarts hosts at barriers on
                # stable ports; a short pause outlives a reset window
                time.sleep(TRANSPORT_BACKOFF * attempt)

# MUTATING_DATA_METHODS — the TDStoreDataServer methods that mutate
# durable state — now lives in repro.runtime.wire so the transport can
# consult it (no transparent re-send after a corrupt reply frame)
# without importing this module; it is re-exported above for the server
# host and the facade, which WAL-log and replay exactly that set.


class RemoteDataServer:
    """Proxy for one logical ``TDStoreDataServer`` behind an RPC endpoint.

    Method calls forward over the shared per-host connection; the
    forwarders are cached in the instance dict so repeated calls skip
    ``__getattr__``. Liveness and counters are genuine remote reads
    (they sit on rare paths: failover decisions, monitoring sweeps).
    """

    _REMOTE_ATTRS = ("alive", "degraded", "reads", "writes", "latency")

    def __init__(
        self,
        rpc: RpcClient,
        server_id: int,
        *,
        recover: "Callable[[], None] | None" = None,
    ):
        self._rpc = rpc
        self.server_id = server_id
        self._target = ("data", server_id)
        self._recover = recover
        self.retries = 0

    def _count_retry(self) -> None:
        self.retries += 1

    def _call(self, method: str, *args: Any) -> Any:
        return _retrying(
            self._rpc, method, args, self._target,
            self._recover, self._count_retry,
        )

    @property
    def alive(self) -> bool:
        return self._call(".alive")

    @property
    def degraded(self) -> bool:
        return self._call(".degraded")

    @property
    def reads(self) -> int:
        return self._call(".reads")

    @property
    def writes(self) -> int:
        return self._call(".writes")

    @property
    def latency(self) -> float:
        # real servers take real time; there is nothing to charge
        return 0.0

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        call = self._call

        def forward(*args: Any):
            return call(name, *args)

        forward.__name__ = name
        self.__dict__[name] = forward
        return forward

    def __repr__(self) -> str:
        return f"RemoteDataServer(id={self.server_id}, via={self._rpc!r})"


class RemoteConfigServer:
    """Proxy for the ``ConfigServerPair`` living on server host 0.

    ``server(id)`` hands back :class:`RemoteDataServer` proxies wired to
    whichever host process owns that logical server, so the client's
    failover path (`config.server(host).alive`, `handle_server_failure`)
    crosses process boundaries transparently.
    """

    def __init__(
        self,
        rpc: RpcClient,
        data_server_resolver: Callable[[int], RemoteDataServer],
        *,
        recover: "Callable[[], None] | None" = None,
    ):
        self._rpc = rpc
        self._resolve = data_server_resolver
        self._route_epoch: int = -1
        self._migration_cache: "dict[int, int] | None" = None
        self._recover = recover
        self.retries = 0

    def _count_retry(self) -> None:
        self.retries += 1

    def _call(self, method: str, *args: Any) -> Any:
        return _retrying(
            self._rpc, method, args, "config",
            self._recover, self._count_retry,
        )

    @property
    def route_epoch(self) -> int:
        # cached, refreshed by route_table(); staleness is fenced by
        # StaleRouteError exactly as for in-process clients
        return self._route_epoch

    def route_table(self):
        table = self._call("route_table")
        self._route_epoch = table.version
        self._migration_cache = None  # re-learn in-flight moves
        return table

    def migration_target(self, instance: int) -> "int | None":
        """Dual-write destination for ``instance`` — cached when idle.

        ``migration_target`` sits on the client's per-mutation path; as
        a plain ``__getattr__`` forward it would cost a control-plane
        round trip per write. Instead the in-flight set is downloaded
        once and consulted locally while it is *empty* — the steady
        state. A non-empty set falls through to the live query, so the
        exact per-mutation semantics of in-process clients hold for the
        whole observed span of a migration. The cache drops on every
        route-table download and forwarded control-plane call, so a
        client learns of a new migration at its next route refresh (or
        fence) rather than mid-window — quiesce writers or bump the
        route epoch before live-migrating under process-substrate load.
        """
        if self._migration_cache is None:
            self._migration_cache = self._call("migration_targets")
        if not self._migration_cache:
            return None
        return self._call("migration_target", instance)

    def server(self, server_id: int) -> RemoteDataServer:
        return self._resolve(server_id)

    def register_migration(self, migration: Any) -> None:
        """Open a dual-write window on the control-plane host.

        A live ``Migration`` holds socket-backed server proxies and
        cannot be pickled across the RPC boundary; only the
        ``(instance, target)`` pair travels, and the hosted config pair
        builds its own surrogate registration from it (see
        ``ConfigServerPair.register_remote_migration``).
        """
        self._migration_cache = None
        self._call(
            "register_remote_migration", migration.instance,
            migration.target_id,
        )

    def unregister_migration(self, instance: int, completed: bool = True):
        # explicit: callers pass ``completed`` by keyword, which the
        # positional-only __getattr__ forward cannot carry
        self._migration_cache = None
        return self._call("unregister_migration", instance, completed)

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        call = self._call

        def forward(*args: Any):
            # any forwarded control-plane call (register_migration,
            # install_table, ...) may start or finish a move: drop the
            # idle-state cache so migration_target re-learns it
            self._migration_cache = None
            return call(name, *args)

        forward.__name__ = name
        self.__dict__[name] = forward
        return forward


class ProcessTDStore:
    """Parent-side facade over the server host processes.

    Duck-types :class:`repro.tdstore.cluster.TDStoreCluster` — the
    recovery harness, checkpoint coordinator, fault injector and system
    monitor drive it exactly as they drive the in-process cluster.
    Facade-level operations forward to the real ``TDStoreCluster``
    living in server host 0; per-server data operations go straight to
    the owning host process.

    Constructed from plain addresses so it can be pickled into worker
    processes (connections open lazily, per process).
    """

    def __init__(
        self,
        addresses: "list[tuple[str, int]]",
        placement: "dict[int, int]",
    ):
        self._addresses = list(addresses)
        self._placement = dict(placement)
        self._rpcs: dict[int, RpcClient] = {}
        self._servers: dict[int, RemoteDataServer] = {}
        self._config: RemoteConfigServer | None = None
        # parent-side only: asks the supervisor to respawn a dead host
        # before a transport retry. Not pickled into workers — their
        # copies fall back to backoff-and-retry against stable ports.
        self._recover_host: "Callable[[int], None] | None" = None
        # chaos bookkeeping: data servers carrying a real injected delay
        self._real_delays: set[int] = set()
        self.rpc_retries = 0

    def __getstate__(self):
        return {"addresses": self._addresses, "placement": self._placement}

    def __setstate__(self, state):
        self.__init__(state["addresses"], state["placement"])

    def set_recovery_hook(self, hook: "Callable[[int], None] | None"):
        self._recover_host = hook
        # proxies cache their recover callback at construction; rebuild
        self._servers.clear()
        self._config = None

    # -- wiring -----------------------------------------------------------

    def _host_rpc(self, host_index: int) -> RpcClient:
        rpc = self._rpcs.get(host_index)
        if rpc is None:
            host, port = self._addresses[host_index]
            rpc = self._rpcs[host_index] = RpcClient(host, port)
        return rpc

    def _data_server(self, server_id: int) -> RemoteDataServer:
        proxy = self._servers.get(server_id)
        if proxy is None:
            host_index = self._placement.get(server_id)
            if host_index is None:
                # servers created at runtime (elastic expansion) are
                # always hosted by process 0; learn the placement lazily
                # so worker-side copies pickled before the expansion
                # still route to them
                host_index = 0
                self._placement[server_id] = 0
            proxy = RemoteDataServer(
                self._host_rpc(host_index),
                server_id,
                recover=self._recover_callback(host_index),
            )
            self._servers[server_id] = proxy
        return proxy

    def _recover_callback(
        self, host_index: int
    ) -> "Callable[[], None] | None":
        # bound at proxy construction; set_recovery_hook rebuilds proxies
        if self._recover_host is None:
            return None
        hook = self._recover_host
        return lambda: hook(host_index)

    @property
    def config(self) -> RemoteConfigServer:
        if self._config is None:
            self._config = RemoteConfigServer(
                self._host_rpc(0),
                self._data_server,
                recover=self._recover_callback(0),
            )
        return self._config

    @property
    def data_servers(self) -> "list[RemoteDataServer]":
        return [self._data_server(sid) for sid in sorted(self._placement)]

    def client(self, **resilience: Any):
        """A resilient client whose time-based policies charge wall time.

        Unlike the simulator's sequential op stream — where the client's
        single built-in in-place retry always lands on the next beat of
        a deterministic error cadence — real clients interleave at the
        server, so that retry can collide with another client's op and
        hit the cadence again. A small bounded retry with real backoff
        restores the sim-equivalent contract that transient injected
        errors are invisible to callers.
        """
        from repro.resilience.retry import RetryPolicy
        from repro.tdstore.client import TDStoreClient

        resilience.setdefault("clock", WallClock())
        resilience.setdefault(
            "retry",
            RetryPolicy(
                max_attempts=4,
                base_delay=0.005,
                max_delay=0.05,
                sleep=time.sleep,
            ),
        )
        return TDStoreClient(self.config, **resilience)

    def resync_host_roles(self, host_index: int) -> None:
        """Re-push current route-table roles to one host's local servers.

        Roles reach non-zero hosts only when host 0's config pair
        provisions the cluster at boot — they are control-plane state,
        deliberately absent from the data WAL. A respawned host therefore
        comes back with empty ``_hosted`` sets and would fence every
        write as stale-routed; after WAL replay the parent re-asserts the
        authoritative layout here. (Host 0 re-provisions the whole
        cluster when *it* is reborn, so it never needs this.)
        """
        table = self.config.route_table()
        for server_id, placed in sorted(self._placement.items()):
            if placed != host_index:
                continue
            server = self._data_server(server_id)
            for instance in range(table.num_instances):
                route = table.route(instance)
                if route.host == server_id:
                    server.set_host_role(instance, True)
                elif route.slave == server_id:
                    # ensures the engine and sync inbox exist, role stays off
                    server.set_host_role(instance, False)

    # -- facade operations (forwarded to the cluster on host 0) ----------

    def _cluster_call(self, method: str, *args: Any) -> Any:
        return _retrying(
            self._host_rpc(0), method, args, "cluster",
            self._recover_callback(0), self._count_retry,
        )

    def _count_retry(self) -> None:
        self.rpc_retries += 1

    @property
    def placement(self) -> "dict[int, int]":
        """Logical server id -> owning host index (copy)."""
        return dict(self._placement)

    def add_data_server(self) -> int:
        server_id = self._cluster_call("add_data_server")
        # servers created at runtime are hosted by process 0
        self._placement[server_id] = 0
        return server_id

    def drain_data_server(self, server_id: int, exclude: tuple = ()) -> list:
        return self._cluster_call("drain_data_server", server_id, exclude)

    def migration_stats(self) -> dict:
        return self._cluster_call("migration_stats")

    def crash_data_server(self, server_id: int):
        return self._cluster_call("crash_data_server", server_id)

    def recover_data_server(self, server_id: int):
        return self._cluster_call("recover_data_server", server_id)

    def scrub_replicas(self, buckets: "int | None" = None) -> dict:
        """Anti-entropy pass, run inside host 0's control plane (local
        engines compared directly, sibling hosts reached over the
        existing data-server proxies); returns the pass report dict."""
        return self._cluster_call("scrub_replicas", buckets)

    def scrub_stats(self) -> dict:
        return self._cluster_call("scrub_stats")

    def set_degradation(
        self,
        server_id: int,
        latency: float | None = None,
        error_every: int | None = None,
    ):
        if latency is not None:
            raise SubstrateMismatchError(
                "latency faults advertise seconds for clients to charge "
                "against a simulated clock; on the process substrate "
                "operations take real wall time and there is no simulated "
                "clock to charge. Run latency-fault scenarios on "
                "SimSubstrate, or use error_every degradation here."
            )
        return self._cluster_call("set_degradation", server_id, None, error_every)

    def set_real_delay(self, server_id: int, seconds: float) -> float:
        """Latency degradation with process-substrate semantics: the
        owning host really stalls (bounded) before serving ops for
        ``server_id``. This is what ``latency_spike`` faults map to
        here, so chaos plans run unmodified on both substrates; the
        seconds-charging ``set_degradation(latency=...)`` path keeps
        its :class:`SubstrateMismatchError` guard."""
        host_index = self._placement.get(server_id)
        if host_index is None:
            raise TDStoreError(f"no host process for server {server_id}")
        applied = self._host_rpc(host_index).call(
            "_set_delay", server_id, seconds
        )
        self._real_delays.add(server_id)
        return applied

    def clear_degradation(self, server_id: int):
        if server_id in self._real_delays:
            host_index = self._placement.get(server_id)
            if host_index is not None:
                try:
                    self._host_rpc(host_index).call("_clear_delay", server_id)
                except Exception:
                    pass  # a respawned host starts with no delays anyway
            self._real_delays.discard(server_id)
        return self._cluster_call("clear_degradation", server_id)

    def degraded_servers(self) -> "list[int]":
        return sorted(
            set(self._cluster_call("degraded_servers")) | self._real_delays
        )

    def sync_replicas(self):
        return self._cluster_call("sync_replicas")

    def snapshot_contents(self) -> dict:
        return self._cluster_call("snapshot_contents")

    def restore_contents(self, contents: dict):
        return self._cluster_call("restore_contents", contents)

    def journal_evictions(self) -> int:
        return self._cluster_call("journal_evictions")

    def read_stats(self) -> "dict[int, int]":
        return self._cluster_call("read_stats")

    def write_stats(self) -> "dict[int, int]":
        return self._cluster_call("write_stats")

    # -- runtime-only surface --------------------------------------------

    def update_address(self, host_index: int, address: "tuple[str, int]"):
        """Repoint one host after the supervisor respawned it."""
        self._addresses[host_index] = tuple(address)
        stale = self._rpcs.pop(host_index, None)
        if stale is not None:
            stale.close()
        for sid, host in self._placement.items():
            if host == host_index:
                self._servers.pop(sid, None)
        if host_index == 0:
            self._config = None

    def host_stats(self) -> "list[dict]":
        """Per-host-process runtime counters (RPC batches, WAL commits)."""
        return [
            self._host_rpc(i).call("_stats")
            for i in range(len(self._addresses))
        ]

    def close(self):
        for rpc in self._rpcs.values():
            rpc.close()
        self._rpcs.clear()
        self._servers.clear()
        self._config = None
