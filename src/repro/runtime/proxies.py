"""Client-side duck types for remote TDStore servers.

The resilience stack in :mod:`repro.tdstore.client` was written against
in-process ``TDStoreDataServer`` / ``ConfigServerPair`` objects. These
proxies satisfy the same surface over RPC, so ``TDStoreClient`` — route
caching, failover, migration fencing, breakers, deadlines — runs
unmodified against real server processes. The error types it dispatches
on (``StaleRouteError``, ``MigrationInProgressError``, ...) round-trip
through the wire layer as themselves.

Two reads are deliberately *not* RPCs because they sit on the client's
per-operation hot path:

- ``RemoteConfigServer.route_epoch`` is a cached value, refreshed on
  every ``route_table()`` download. A stale cache is safe: the host
  fence turns a stale route into ``StaleRouteError``, which makes the
  client refresh — the same protocol that protects in-process clients.
- ``RemoteDataServer.latency`` is always ``0.0``. On the process
  substrate latency is real elapsed time, not an advertised number for
  the client to charge against a simulated clock.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SubstrateMismatchError, TDStoreError
from repro.runtime.rpc import RpcClient
from repro.utils.clock import WallClock

# TDStoreDataServer methods that mutate durable state; the server host
# logs exactly these to its WAL (see server_host) and the parent facade
# refuses to treat anything else as replayable
MUTATING_DATA_METHODS = frozenset(
    {
        "put",
        "delete",
        "check_and_set",
        "apply_op",
        "put_once",
        "record_once",
        "enqueue_sync",
        "apply_pending",
        "adopt_snapshot",
        "ensure_instance",
    }
)


class RemoteDataServer:
    """Proxy for one logical ``TDStoreDataServer`` behind an RPC endpoint.

    Method calls forward over the shared per-host connection; the
    forwarders are cached in the instance dict so repeated calls skip
    ``__getattr__``. Liveness and counters are genuine remote reads
    (they sit on rare paths: failover decisions, monitoring sweeps).
    """

    _REMOTE_ATTRS = ("alive", "degraded", "reads", "writes", "latency")

    def __init__(self, rpc: RpcClient, server_id: int):
        self._rpc = rpc
        self.server_id = server_id
        self._target = ("data", server_id)

    @property
    def alive(self) -> bool:
        return self._rpc.call(".alive", target=self._target)

    @property
    def degraded(self) -> bool:
        return self._rpc.call(".degraded", target=self._target)

    @property
    def reads(self) -> int:
        return self._rpc.call(".reads", target=self._target)

    @property
    def writes(self) -> int:
        return self._rpc.call(".writes", target=self._target)

    @property
    def latency(self) -> float:
        # real servers take real time; there is nothing to charge
        return 0.0

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        rpc, target = self._rpc, self._target

        def forward(*args: Any):
            return rpc.call(name, *args, target=target)

        forward.__name__ = name
        self.__dict__[name] = forward
        return forward

    def __repr__(self) -> str:
        return f"RemoteDataServer(id={self.server_id}, via={self._rpc!r})"


class RemoteConfigServer:
    """Proxy for the ``ConfigServerPair`` living on server host 0.

    ``server(id)`` hands back :class:`RemoteDataServer` proxies wired to
    whichever host process owns that logical server, so the client's
    failover path (`config.server(host).alive`, `handle_server_failure`)
    crosses process boundaries transparently.
    """

    def __init__(
        self,
        rpc: RpcClient,
        data_server_resolver: Callable[[int], RemoteDataServer],
    ):
        self._rpc = rpc
        self._resolve = data_server_resolver
        self._route_epoch: int = -1
        self._migration_cache: "dict[int, int] | None" = None

    @property
    def route_epoch(self) -> int:
        # cached, refreshed by route_table(); staleness is fenced by
        # StaleRouteError exactly as for in-process clients
        return self._route_epoch

    def route_table(self):
        table = self._rpc.call("route_table", target="config")
        self._route_epoch = table.version
        self._migration_cache = None  # re-learn in-flight moves
        return table

    def migration_target(self, instance: int) -> "int | None":
        """Dual-write destination for ``instance`` — cached when idle.

        ``migration_target`` sits on the client's per-mutation path; as
        a plain ``__getattr__`` forward it would cost a control-plane
        round trip per write. Instead the in-flight set is downloaded
        once and consulted locally while it is *empty* — the steady
        state. A non-empty set falls through to the live query, so the
        exact per-mutation semantics of in-process clients hold for the
        whole observed span of a migration. The cache drops on every
        route-table download and forwarded control-plane call, so a
        client learns of a new migration at its next route refresh (or
        fence) rather than mid-window — quiesce writers or bump the
        route epoch before live-migrating under process-substrate load.
        """
        if self._migration_cache is None:
            self._migration_cache = self._rpc.call(
                "migration_targets", target="config"
            )
        if not self._migration_cache:
            return None
        return self._rpc.call("migration_target", instance, target="config")

    def server(self, server_id: int) -> RemoteDataServer:
        return self._resolve(server_id)

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        rpc = self._rpc

        def forward(*args: Any):
            # any forwarded control-plane call (register_migration,
            # install_table, ...) may start or finish a move: drop the
            # idle-state cache so migration_target re-learns it
            self._migration_cache = None
            return rpc.call(name, *args, target="config")

        forward.__name__ = name
        self.__dict__[name] = forward
        return forward


class ProcessTDStore:
    """Parent-side facade over the server host processes.

    Duck-types :class:`repro.tdstore.cluster.TDStoreCluster` — the
    recovery harness, checkpoint coordinator, fault injector and system
    monitor drive it exactly as they drive the in-process cluster.
    Facade-level operations forward to the real ``TDStoreCluster``
    living in server host 0; per-server data operations go straight to
    the owning host process.

    Constructed from plain addresses so it can be pickled into worker
    processes (connections open lazily, per process).
    """

    def __init__(
        self,
        addresses: "list[tuple[str, int]]",
        placement: "dict[int, int]",
    ):
        self._addresses = list(addresses)
        self._placement = dict(placement)
        self._rpcs: dict[int, RpcClient] = {}
        self._servers: dict[int, RemoteDataServer] = {}
        self._config: RemoteConfigServer | None = None

    def __getstate__(self):
        return {"addresses": self._addresses, "placement": self._placement}

    def __setstate__(self, state):
        self.__init__(state["addresses"], state["placement"])

    # -- wiring -----------------------------------------------------------

    def _host_rpc(self, host_index: int) -> RpcClient:
        rpc = self._rpcs.get(host_index)
        if rpc is None:
            host, port = self._addresses[host_index]
            rpc = self._rpcs[host_index] = RpcClient(host, port)
        return rpc

    def _data_server(self, server_id: int) -> RemoteDataServer:
        proxy = self._servers.get(server_id)
        if proxy is None:
            host_index = self._placement.get(server_id)
            if host_index is None:
                raise TDStoreError(f"no host process for server {server_id}")
            proxy = RemoteDataServer(self._host_rpc(host_index), server_id)
            self._servers[server_id] = proxy
        return proxy

    @property
    def config(self) -> RemoteConfigServer:
        if self._config is None:
            self._config = RemoteConfigServer(
                self._host_rpc(0), self._data_server
            )
        return self._config

    @property
    def data_servers(self) -> "list[RemoteDataServer]":
        return [self._data_server(sid) for sid in sorted(self._placement)]

    def client(self, **resilience: Any):
        """A resilient client whose time-based policies charge wall time."""
        from repro.tdstore.client import TDStoreClient

        resilience.setdefault("clock", WallClock())
        return TDStoreClient(self.config, **resilience)

    # -- facade operations (forwarded to the cluster on host 0) ----------

    def _cluster_call(self, method: str, *args: Any) -> Any:
        return self._host_rpc(0).call(method, *args, target="cluster")

    def add_data_server(self) -> int:
        server_id = self._cluster_call("add_data_server")
        # servers created at runtime are hosted by process 0
        self._placement[server_id] = 0
        return server_id

    def drain_data_server(self, server_id: int, exclude: tuple = ()) -> list:
        return self._cluster_call("drain_data_server", server_id, exclude)

    def migration_stats(self) -> dict:
        return self._cluster_call("migration_stats")

    def crash_data_server(self, server_id: int):
        return self._cluster_call("crash_data_server", server_id)

    def recover_data_server(self, server_id: int):
        return self._cluster_call("recover_data_server", server_id)

    def set_degradation(
        self,
        server_id: int,
        latency: float | None = None,
        error_every: int | None = None,
    ):
        if latency is not None:
            raise SubstrateMismatchError(
                "latency faults advertise seconds for clients to charge "
                "against a simulated clock; on the process substrate "
                "operations take real wall time and there is no simulated "
                "clock to charge. Run latency-fault scenarios on "
                "SimSubstrate, or use error_every degradation here."
            )
        return self._cluster_call("set_degradation", server_id, None, error_every)

    def clear_degradation(self, server_id: int):
        return self._cluster_call("clear_degradation", server_id)

    def degraded_servers(self) -> "list[int]":
        return self._cluster_call("degraded_servers")

    def sync_replicas(self):
        return self._cluster_call("sync_replicas")

    def snapshot_contents(self) -> dict:
        return self._cluster_call("snapshot_contents")

    def restore_contents(self, contents: dict):
        return self._cluster_call("restore_contents", contents)

    def journal_evictions(self) -> int:
        return self._cluster_call("journal_evictions")

    def read_stats(self) -> "dict[int, int]":
        return self._cluster_call("read_stats")

    def write_stats(self) -> "dict[int, int]":
        return self._cluster_call("write_stats")

    # -- runtime-only surface --------------------------------------------

    def update_address(self, host_index: int, address: "tuple[str, int]"):
        """Repoint one host after the supervisor respawned it."""
        self._addresses[host_index] = tuple(address)
        stale = self._rpcs.pop(host_index, None)
        if stale is not None:
            stale.close()
        for sid, host in self._placement.items():
            if host == host_index:
                self._servers.pop(sid, None)
        if host_index == 0:
            self._config = None

    def host_stats(self) -> "list[dict]":
        """Per-host-process runtime counters (RPC batches, WAL commits)."""
        return [
            self._host_rpc(i).call("_stats")
            for i in range(len(self._addresses))
        ]

    def close(self):
        for rpc in self._rpcs.values():
            rpc.close()
        self._rpcs.clear()
        self._servers.clear()
        self._config = None
