"""Group-committed write-ahead log for the TDStore server host.

Durability on the process substrate is real: a mutation is acknowledged
only after its log record reaches disk. The expensive part of that
promise is ``fsync``, and the log amortizes it — every record appended
since the last commit shares one ``fsync``. The server host drives
this from the RPC batch boundary: apply every mutation in the ready
batch, ``commit()`` once, then ack all of them. With one blocking
client the batch size is one and throughput is fsync-bound; with N
concurrent workers up to N mutations ride each flush, which is where
the parallel benchmark's scaling comes from.

Records are wire frames (length-prefixed pickles), so replay reuses
:class:`~repro.runtime.wire.StreamDecoder` and a torn tail — a crash
mid-append — is detected as an incomplete frame and discarded.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Iterator

from repro.errors import RuntimeSubstrateError
from repro.runtime.wire import StreamDecoder, encode_frame


class WalError(RuntimeSubstrateError):
    """The write-ahead log is unusable (bad path, closed, corrupt)."""


# disk-fault kinds the IO shim can arm; mirrored by the chaos layer's
# Fault vocabulary (repro.recovery.faults)
DISK_FAULT_KINDS = frozenset({"torn_write", "disk_full", "fsync_error"})


class DiskFaultShim:
    """Injectable stand-in for the WAL's raw file I/O.

    The default (unarmed) shim is a transparent passthrough to
    ``os.write`` / ``os.fsync``. The chaos layer arms one-shot disk
    faults on it; each armed fault fires on the next matching call and
    then disarms:

    - ``torn_write``: half the record's bytes reach the file, then the
      append fails — the on-disk tail is an incomplete frame, exactly
      what a crash mid-``write`` leaves behind.
    - ``disk_full``: the append fails before any byte is written
      (ENOSPC semantics).
    - ``fsync_error``: staged bytes stay in the page cache but the
      commit barrier reports failure (EIO semantics).

    Every fault surfaces as :class:`WalError`; the server host treats
    that as unrecoverable and fail-stops, which is the only honest
    response — a log that cannot promise durability must not ack.
    """

    def __init__(self) -> None:
        self._armed: list[str] = []
        self.fired: dict[str, int] = {}

    def arm(self, kind: str) -> None:
        if kind not in DISK_FAULT_KINDS:
            raise WalError(f"unknown disk fault kind {kind!r}")
        self._armed.append(kind)

    def armed(self) -> list[str]:
        return list(self._armed)

    def _take(self, *kinds: str) -> str | None:
        for i, kind in enumerate(self._armed):
            if kind in kinds:
                self.fired[kind] = self.fired.get(kind, 0) + 1
                return self._armed.pop(i)
        return None

    def write(self, fd: int, payload: bytes) -> None:
        kind = self._take("torn_write", "disk_full")
        if kind == "disk_full":
            raise WalError("disk full: append wrote nothing (ENOSPC)")
        if kind == "torn_write":
            os.write(fd, payload[: max(1, len(payload) // 2)])
            raise WalError("torn write: record half-written before failure")
        os.write(fd, payload)

    def fsync(self, fd: int) -> None:
        if self._take("fsync_error"):
            raise WalError("fsync failed: staged records are not durable (EIO)")
        os.fsync(fd)


class GroupCommitWal:
    """Append-only log with batched ``fsync``.

    ``append`` buffers in the OS page cache; ``commit`` makes everything
    appended so far durable with a single ``fsync`` (skipped when
    nothing is pending, so read-only batches cost no disk I/O).

    Safe for one appender and one committer running on different
    threads — the server host appends from its serve loop while the
    group-commit thread flushes. The lock only guards the dirty-count
    bookkeeping; the ``fsync`` itself runs outside it (and releases the
    GIL), so appends proceed while a flush is in flight. A record
    appended before ``commit`` is called was written before the
    ``fsync`` starts and is therefore covered by it.

    ``commit_floor`` models a minimum commit-barrier latency: when the
    device acknowledges the flush faster than the floor, ``commit``
    sleeps out the remainder. Virtualized hosts routinely absorb
    ``fsync`` into the host page cache (0.1–0.3 ms here, against the
    0.5–2 ms a production SSD's write barrier costs), which silently
    changes group-commit economics; the floor restores a realistic —
    and, for tests, deterministic — barrier cost. It defaults to off
    and nothing in the serving path sets it; the parallel benchmark
    and the lifecycle tests opt in explicitly.
    """

    def __init__(
        self,
        path: str,
        *,
        durable: bool = True,
        commit_floor: float = 0.0,
        io: DiskFaultShim | None = None,
    ):
        self._path = path
        self._durable = durable
        self._commit_floor = commit_floor
        self.io = io if io is not None else DiskFaultShim()
        self._fd: int | None = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._lock = threading.Lock()
        self._dirty = 0
        self.records = 0
        self.commits = 0
        self.committed_records = 0

    @property
    def path(self) -> str:
        return self._path

    def append(self, record: Any) -> None:
        """Stage one record; not durable until the next :meth:`commit`."""
        payload = encode_frame(record)
        with self._lock:
            if self._fd is None:
                raise WalError(f"wal {self._path} is closed")
            self.io.write(self._fd, payload)
            self._dirty += 1
            self.records += 1

    def commit(self) -> int:
        """Flush staged records to disk; returns how many were covered."""
        with self._lock:
            if self._fd is None:
                raise WalError(f"wal {self._path} is closed")
            fd = self._fd
            covered = self._dirty
            if covered == 0:
                return 0
            # claim the staged records before flushing: anything appended
            # while the fsync runs belongs to the *next* commit
            self._dirty = 0
        start = time.monotonic() if self._commit_floor > 0.0 else 0.0
        if self._durable:
            self.io.fsync(fd)
        if self._commit_floor > 0.0:
            # the sleep releases the GIL exactly as a slower barrier
            # would release the CPU: concurrent appends keep flowing
            remaining = self._commit_floor - (time.monotonic() - start)
            if remaining > 0.0:
                time.sleep(remaining)
        with self._lock:
            self.commits += 1
            self.committed_records += covered
        return covered

    def close(self) -> None:
        if self._fd is not None:
            try:
                self.commit()
            finally:
                os.close(self._fd)
                self._fd = None

    def stats(self) -> dict:
        return {
            "records": self.records,
            "commits": self.commits,
            "committed_records": self.committed_records,
            "avg_records_per_commit": (
                self.committed_records / self.commits if self.commits else 0.0
            ),
            "durable": self._durable,
            "commit_floor": self._commit_floor,
        }

    def __enter__(self) -> "GroupCommitWal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def replay(
    path: str, apply: Callable[[Any], None] | None = None
) -> Iterator[Any] | int:
    """Read every intact record back from ``path``.

    A torn final frame (crash mid-append) is silently dropped — it was
    never acknowledged, so losing it is correct. With ``apply`` given,
    applies each record and returns the count; without, returns an
    iterator of records.
    """
    records = _iter_records(path)
    if apply is None:
        return records
    applied = 0
    for record in records:
        apply(record)
        applied += 1
    return applied


def _iter_records(path: str) -> Iterator[Any]:
    decoder = StreamDecoder()
    try:
        fh = open(path, "rb")
    except FileNotFoundError:
        return
    with fh:
        while True:
            chunk = fh.read(1 << 20)
            if not chunk:
                break
            yield from decoder.feed(chunk)
