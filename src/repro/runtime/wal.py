"""Group-committed write-ahead log for the TDStore server host.

Durability on the process substrate is real: a mutation is acknowledged
only after its log record reaches disk. The expensive part of that
promise is ``fsync``, and the log amortizes it — every record appended
since the last commit shares one ``fsync``. The server host drives
this from the RPC batch boundary: apply every mutation in the ready
batch, ``commit()`` once, then ack all of them. With one blocking
client the batch size is one and throughput is fsync-bound; with N
concurrent workers up to N mutations ride each flush, which is where
the parallel benchmark's scaling comes from.

Records are wire frames (length-prefixed, CRC32C-checksummed pickles),
so replay reuses :class:`~repro.runtime.wire.StreamDecoder` and the two
failure shapes are kept distinct: a torn *tail* — a crash mid-append —
is an incomplete final frame, silently dropped because it was never
acknowledged; a complete frame whose payload fails its checksum is
*mid-log corruption* of acknowledged state and raises :class:`WalError`
instead of being replayed as truth. The host fail-stops (or
quarantines and re-seeds from replicas) on the latter.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Iterator

from repro.errors import RuntimeSubstrateError
from repro.runtime.wire import (
    FrameCorruptionError,
    FrameError,
    StreamDecoder,
    corrupt_frame,
    encode_frame,
)


class WalError(RuntimeSubstrateError):
    """The write-ahead log is unusable (bad path, closed, corrupt).

    ``corrupt_records`` carries how many checksum-failed records a
    replay scan found — the detection count the chaos accounting
    reconciles against injected corruption.
    """

    def __init__(self, message: str, corrupt_records: int = 0):
        super().__init__(message)
        self.corrupt_records = corrupt_records

    def __reduce__(self):
        return (type(self), (self.args[0], self.corrupt_records))


# disk-fault kinds the IO shim can arm; mirrored by the chaos layer's
# Fault vocabulary (repro.recovery.faults). The first three are loud
# (the append or commit call fails); the last two are *silent* — the
# call succeeds, the caller acks, and only the record's checksum knows.
DISK_FAULT_KINDS = frozenset(
    {"torn_write", "disk_full", "fsync_error", "bit_flip", "wal_corrupt"}
)
SILENT_CORRUPTION_KINDS = frozenset({"bit_flip", "wal_corrupt"})


class DiskFaultShim:
    """Injectable stand-in for the WAL's raw file I/O.

    The default (unarmed) shim is a transparent passthrough to
    ``os.write`` / ``os.fsync``. The chaos layer arms one-shot disk
    faults on it; each armed fault fires on the next matching call and
    then disarms:

    - ``torn_write``: half the record's bytes reach the file, then the
      append fails — the on-disk tail is an incomplete frame, exactly
      what a crash mid-``write`` leaves behind.
    - ``disk_full``: the append fails before any byte is written
      (ENOSPC semantics).
    - ``fsync_error``: staged bytes stay in the page cache but the
      commit barrier reports failure (EIO semantics).
    - ``bit_flip``: the append *succeeds* — every byte reaches the file
      — but one bit inside the record body is flipped on the way down.
      The mutation is acked; only replay-time CRC verification can tell.
    - ``wal_corrupt``: like ``bit_flip`` but a whole byte run inside the
      body is overwritten (a misdirected or garbled sector write).

    The loud faults surface as :class:`WalError`; the server host
    treats those as unrecoverable and fail-stops, which is the only
    honest response — a log that cannot promise durability must not
    ack. The silent kinds corrupt past the frame header (the length
    field stays intact) so framing survives and the damage is exactly
    what the per-record checksum exists to catch.
    """

    def __init__(self) -> None:
        self._armed: list[str] = []
        self.fired: dict[str, int] = {}

    def arm(self, kind: str) -> None:
        if kind not in DISK_FAULT_KINDS:
            raise WalError(f"unknown disk fault kind {kind!r}")
        self._armed.append(kind)

    def armed(self) -> list[str]:
        return list(self._armed)

    def _take(self, *kinds: str) -> str | None:
        for i, kind in enumerate(self._armed):
            if kind in kinds:
                self.fired[kind] = self.fired.get(kind, 0) + 1
                return self._armed.pop(i)
        return None

    def write(self, fd: int, payload: bytes) -> None:
        kind = self._take("torn_write", "disk_full", "bit_flip", "wal_corrupt")
        if kind == "disk_full":
            raise WalError("disk full: append wrote nothing (ENOSPC)")
        if kind == "torn_write":
            os.write(fd, payload[: max(1, len(payload) // 2)])
            raise WalError("torn write: record half-written before failure")
        if kind in SILENT_CORRUPTION_KINDS:
            os.write(fd, _corrupt_record(payload, kind))
            return
        os.write(fd, payload)

    def fsync(self, fd: int) -> None:
        if self._take("fsync_error"):
            raise WalError("fsync failed: staged records are not durable (EIO)")
        os.fsync(fd)


def _corrupt_record(payload: bytes, kind: str) -> bytes:
    """Damage a record's *body* deterministically, leaving the header
    (and thus framing) intact so replay sees a complete-but-wrong frame."""
    return corrupt_frame(payload, run=1 if kind == "bit_flip" else 8)


class GroupCommitWal:
    """Append-only log with batched ``fsync``.

    ``append`` buffers in the OS page cache; ``commit`` makes everything
    appended so far durable with a single ``fsync`` (skipped when
    nothing is pending, so read-only batches cost no disk I/O).

    Safe for one appender and one committer running on different
    threads — the server host appends from its serve loop while the
    group-commit thread flushes. The lock only guards the dirty-count
    bookkeeping; the ``fsync`` itself runs outside it (and releases the
    GIL), so appends proceed while a flush is in flight. A record
    appended before ``commit`` is called was written before the
    ``fsync`` starts and is therefore covered by it.

    ``commit_floor`` models a minimum commit-barrier latency: when the
    device acknowledges the flush faster than the floor, ``commit``
    sleeps out the remainder. Virtualized hosts routinely absorb
    ``fsync`` into the host page cache (0.1–0.3 ms here, against the
    0.5–2 ms a production SSD's write barrier costs), which silently
    changes group-commit economics; the floor restores a realistic —
    and, for tests, deterministic — barrier cost. It defaults to off
    and nothing in the serving path sets it; the parallel benchmark
    and the lifecycle tests opt in explicitly.
    """

    def __init__(
        self,
        path: str,
        *,
        durable: bool = True,
        commit_floor: float = 0.0,
        io: DiskFaultShim | None = None,
    ):
        self._path = path
        self._durable = durable
        self._commit_floor = commit_floor
        self.io = io if io is not None else DiskFaultShim()
        self._fd: int | None = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._lock = threading.Lock()
        self._dirty = 0
        self.records = 0
        self.commits = 0
        self.committed_records = 0
        self.quarantines = 0

    @property
    def path(self) -> str:
        return self._path

    def append(self, record: Any) -> None:
        """Stage one record; not durable until the next :meth:`commit`."""
        payload = encode_frame(record)
        with self._lock:
            if self._fd is None:
                raise WalError(f"wal {self._path} is closed")
            self.io.write(self._fd, payload)
            self._dirty += 1
            self.records += 1

    def commit(self) -> int:
        """Flush staged records to disk; returns how many were covered."""
        with self._lock:
            if self._fd is None:
                raise WalError(f"wal {self._path} is closed")
            fd = self._fd
            covered = self._dirty
            if covered == 0:
                return 0
            # claim the staged records before flushing: anything appended
            # while the fsync runs belongs to the *next* commit
            self._dirty = 0
        start = time.monotonic() if self._commit_floor > 0.0 else 0.0
        if self._durable:
            self.io.fsync(fd)
        if self._commit_floor > 0.0:
            # the sleep releases the GIL exactly as a slower barrier
            # would release the CPU: concurrent appends keep flowing
            remaining = self._commit_floor - (time.monotonic() - start)
            if remaining > 0.0:
                time.sleep(remaining)
        with self._lock:
            self.commits += 1
            self.committed_records += covered
        return covered

    def quarantine(self) -> str:
        """Set a corrupt log aside and continue on a fresh one.

        The on-disk file moves to ``<path>.corrupt`` (kept for forensics,
        clobbering any previous quarantine) and a new empty log opens at
        the same path, so respawn-stable WAL paths keep working. The
        caller is responsible for re-seeding state from replicas — the
        quarantined records are exactly the ones that can no longer be
        trusted. Runs under the append lock, so it is safe against the
        group-commit thread.
        """
        quarantined = self._path + ".corrupt"
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
            os.replace(self._path, quarantined)
            self._fd = os.open(
                self._path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            self._dirty = 0
            self.quarantines += 1
        return quarantined

    def close(self) -> None:
        if self._fd is not None:
            try:
                self.commit()
            finally:
                os.close(self._fd)
                self._fd = None

    def stats(self) -> dict:
        return {
            "records": self.records,
            "commits": self.commits,
            "committed_records": self.committed_records,
            "avg_records_per_commit": (
                self.committed_records / self.commits if self.commits else 0.0
            ),
            "durable": self._durable,
            "commit_floor": self._commit_floor,
            "quarantines": self.quarantines,
        }

    def __enter__(self) -> "GroupCommitWal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def replay(
    path: str, apply: Callable[[Any], None] | None = None
) -> Iterator[Any] | int:
    """Read every intact record back from ``path``.

    A torn final frame (crash mid-append) is silently dropped — it was
    never acknowledged, so losing it is correct. A *complete* frame
    whose payload fails its CRC32C is acknowledged state gone wrong:
    replay stops applying, keeps scanning to count the damage (framing
    survives body corruption), and raises :class:`WalError` with
    ``corrupt_records`` set. With ``apply`` given, applies each record
    and returns the count; without, returns an iterator of records.
    """
    records = _iter_records(path)
    if apply is None:
        return records
    applied = 0
    for record in records:
        apply(record)
        applied += 1
    return applied


def _iter_records(path: str) -> Iterator[Any]:
    decoder = StreamDecoder()
    try:
        fh = open(path, "rb")
    except FileNotFoundError:
        return
    corrupt = 0
    first_error: Exception | None = None
    with fh:
        while True:
            chunk = fh.read(1 << 20)
            if not chunk:
                break
            while True:
                try:
                    frames = decoder.feed(chunk)
                except FrameCorruptionError as exc:
                    # the decoder consumed the bad frame; keep draining
                    # the buffer to count how many records are damaged
                    corrupt += 1
                    if first_error is None:
                        first_error = exc
                    chunk = b""
                    continue
                except FrameError as exc:
                    # desynchronized (the length field itself is garbage):
                    # nothing past this point can be scanned
                    raise WalError(
                        f"wal {path} is corrupt mid-log and unscannable: "
                        f"{exc}",
                        corrupt_records=corrupt + 1,
                    ) from exc
                break
            if corrupt == 0:
                yield from frames
            # after the first corrupt record everything later is suspect:
            # scan on for the count, but never replay past the damage
    if corrupt:
        raise WalError(
            f"wal {path} holds {corrupt} corrupt record(s) mid-log; "
            "refusing to replay acknowledged-but-damaged state",
            corrupt_records=corrupt,
        ) from first_error
