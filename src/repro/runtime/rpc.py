"""Socket RPC: a blocking client and a selectors-based batch server.

The serve loop is single-threaded on purpose. Each ``select()`` wake
drains *every* complete request frame currently readable across all
connections and hands the whole batch to the handler at once — that
batch seeds the group-commit window: the server host applies all
mutations and defers the acks to its committer thread, which folds
every batch queued during the previous ``fsync`` into one flush. One
blocking caller can never have more than one request in flight, so
batches only form when multiple worker processes are genuinely
concurrent; the measured speedup of the parallel benchmark is exactly
this effect.
"""

from __future__ import annotations

import select
import selectors
import socket
import time
from typing import Any, Callable, Iterable

from repro.errors import RemoteOpError
from repro.runtime.wire import (
    MUTATING_DATA_METHODS,
    FrameCorruptionError,
    FrameError,
    Request,
    Response,
    StreamDecoder,
    corrupt_frame,
    encode_error,
    encode_frame,
)

RECV_CHUNK = 65536

# hard cap on a fault-injected frame delay; the serve loop is
# single-threaded, so a delay stalls every connection — bounding it
# keeps client timeouts (30s) and supervisor pings out of reach
MAX_FAULT_DELAY = 0.5


def _sendall(sock: socket.socket, payload: bytes) -> None:
    """``sendall`` for non-blocking sockets: wait for writability on
    ``BlockingIOError`` instead of raising."""
    view = memoryview(payload)
    while view:
        try:
            sent = sock.send(view)
        except BlockingIOError:
            select.select([], [sock], [], 1.0)
            continue
        view = view[sent:]


class RpcClient:
    """A blocking single-connection RPC client.

    One request in flight at a time; ``call`` returns the unwrapped
    response value or raises the round-tripped remote exception.

    A reply frame that fails to parse — CRC mismatch or framing desync —
    poisons the whole stream, so the connection is dropped either way.
    Idempotent ops (reads, admin calls, attribute fetches) are then
    transparently re-issued once on a fresh connection; mutating data
    ops are not re-sent at this layer (the first send may have applied)
    and surface a typed :class:`FrameCorruptionError` for the journaled
    retry machinery above to absorb.
    """

    def __init__(self, host: str, port: int, *, timeout: float | None = 30.0):
        self._address = (host, port)
        self._timeout = timeout
        self._sock: socket.socket | None = None
        self._decoder = StreamDecoder()
        self.calls = 0
        self.frame_corruptions = 0

    def connect(self) -> "RpcClient":
        if self._sock is None:
            sock = socket.create_connection(self._address, timeout=self._timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def call(self, method: str, *args: Any, target: Any = None) -> Any:
        response = self.call_raw(Request(method, args, target))
        return response.unwrap()

    def call_raw(self, request: Request) -> Response:
        retryable = request.method not in MUTATING_DATA_METHODS
        for attempt in (0, 1):
            if self._sock is None:
                self.connect()
            assert self._sock is not None
            self.calls += 1
            try:
                self._sock.sendall(encode_frame(request))
                while True:
                    frames = self._decoder.feed(self._recv())
                    if frames:
                        break
            except FrameError as exc:
                # a damaged or desynced reply stream: nothing received on
                # this connection can be trusted anymore, so drop it
                # (close() also resets the decoder) and either re-issue
                # the idempotent op on a fresh connection or surface the
                # typed corruption error for mutations
                self.frame_corruptions += 1
                self.close()
                if retryable and attempt == 0:
                    continue
                raise FrameCorruptionError(
                    f"rpc to {self._address[0]}:{self._address[1]} returned "
                    f"a corrupt frame during {request.method!r}"
                    + ("" if retryable else " (mutating op: not re-sent)")
                ) from exc
            except (OSError, ConnectionError) as exc:
                self.close()
                raise RemoteOpError(
                    f"rpc to {self._address[0]}:{self._address[1]} failed "
                    f"during {request.method!r}: {exc}"
                ) from exc
            if len(frames) != 1:
                self.close()
                raise RemoteOpError(
                    f"expected one response frame for {request.method!r}, "
                    f"got {len(frames)}"
                )
            return frames[0]
        raise AssertionError("unreachable")

    def send_request(self, request: Request) -> None:
        """Fire a request without waiting; pair with :meth:`recv_response`.

        The parent uses this to put one batch in flight per worker
        process before collecting any responses — the workers overlap
        while the parent waits.
        """
        if self._sock is None:
            self.connect()
        assert self._sock is not None
        self.calls += 1
        try:
            self._sock.sendall(encode_frame(request))
        except (OSError, ConnectionError) as exc:
            self.close()
            raise RemoteOpError(
                f"rpc to {self._address[0]}:{self._address[1]} failed "
                f"sending {request.method!r}: {exc}"
            ) from exc

    def recv_response(self) -> Response:
        """Block for the response to the oldest un-answered request."""
        if self._sock is None:
            raise RemoteOpError("recv_response with no connection open")
        try:
            while True:
                frames = self._decoder.feed(self._recv())
                if frames:
                    break
        except FrameError as exc:
            # pipelined mode: the request this reply answers is not known
            # here, so no transparent retry — the caller's worker-recovery
            # path re-dispatches the batch
            self.frame_corruptions += 1
            self.close()
            raise FrameCorruptionError(
                f"rpc to {self._address[0]}:{self._address[1]} returned a "
                "corrupt frame while awaiting a pipelined response"
            ) from exc
        except (OSError, ConnectionError) as exc:
            self.close()
            raise RemoteOpError(
                f"rpc to {self._address[0]}:{self._address[1]} dropped "
                f"while awaiting a response: {exc}"
            ) from exc
        if len(frames) != 1:
            self.close()
            raise RemoteOpError(f"expected one response frame, got {len(frames)}")
        return frames[0]

    def _recv(self) -> bytes:
        assert self._sock is not None
        data = self._sock.recv(RECV_CHUNK)
        if not data:
            raise ConnectionError("server closed the connection")
        return data

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._decoder = StreamDecoder()

    def __enter__(self) -> "RpcClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()


class RpcServer:
    """Single-threaded framed RPC server with batched dispatch.

    ``handler(batch)`` receives the full list of ``(conn_id, Request)``
    pairs drained in one select wake and must return one ``Response``
    per entry, in order. Anything the handler raises is converted to a
    per-batch error response rather than killing the loop.

    A handler may instead return ``None`` to take ownership of replying
    — it must then deliver every response itself (possibly later, from
    another thread) via :meth:`send_payload`. The server host uses this
    to defer acks to its group-commit thread.
    """

    def __init__(
        self,
        handler: Callable[[list[tuple[int, Request]]], list[Response]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._handler = handler
        self._sel = selectors.DefaultSelector()
        self._listener = socket.socket()
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._listener.setblocking(False)
        self._sel.register(self._listener, selectors.EVENT_READ, None)
        self._decoders: dict[socket.socket, StreamDecoder] = {}
        self._conn_ids: dict[socket.socket, int] = {}
        self._socks: dict[int, socket.socket] = {}
        self._next_conn_id = 0
        self._running = False
        self.batches = 0
        self.requests = 0
        # chaos seam: when set, consulted once per decoded request frame
        # *before* dispatch. Returns None (pass), "reset" (close the
        # connection without processing — an inbound partition),
        # ("delay", seconds) (stall the loop, bounded),
        # "drop_response" (process the request but swallow its reply and
        # close the connection — an ack lost after apply), or
        # "corrupt_response" (process the request but flip a payload bit
        # in the outgoing reply frame — silent wire corruption the
        # client's CRC check must catch).
        self.fault_hook: Callable[[int, Request], Any] | None = None
        self.faults_injected: dict[str, int] = {}
        self._swallow: dict[int, int] = {}
        self._corrupt: dict[int, int] = {}

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    def stop(self) -> None:
        """Ask the serve loop to exit after the current batch."""
        self._running = False

    def serve_forever(
        self,
        *,
        poll_interval: float = 0.5,
        on_exit: Callable[[], None] | None = None,
    ) -> None:
        """Run until :meth:`stop` is called (typically from the handler).

        ``on_exit`` runs after the loop stops but *before* connections
        close — the hook a deferred-reply handler needs to flush its
        final acks onto still-open sockets.
        """
        self._running = True
        try:
            while self._running:
                self._serve_once(timeout=poll_interval)
        finally:
            try:
                if on_exit is not None:
                    on_exit()
            finally:
                self.close()

    def _serve_once(self, *, timeout: float | None) -> None:
        events = self._sel.select(timeout)
        batch: list[tuple[socket.socket, Request]] = []
        for key, _ in events:
            sock = key.fileobj
            if key.data is None:
                self._accept()
                continue
            try:
                data = sock.recv(RECV_CHUNK)
            except (ConnectionError, OSError):
                data = b""
            if not data:
                self._drop(sock)
                continue
            try:
                frames = self._decoders[sock].feed(data)
            except Exception:
                self._drop(sock)
                continue
            for frame in frames:
                batch.append((sock, frame))
        if self.fault_hook is not None and batch:
            batch = self._apply_faults(batch)
        if not batch:
            return
        self.batches += 1
        self.requests += len(batch)
        tagged = [(self._conn_ids[sock], req) for sock, req in batch]
        try:
            responses = self._handler(tagged)
            if responses is None:
                return  # handler took ownership of replying
            if len(responses) != len(batch):
                raise RemoteOpError(
                    f"handler returned {len(responses)} responses "
                    f"for a batch of {len(batch)}"
                )
        except Exception as exc:
            responses = [encode_error(exc) for _ in batch]
        for (sock, _), response in zip(batch, responses):
            conn_id = self._conn_ids.get(sock)
            if conn_id is not None and self._consume_swallow(conn_id):
                self._drop(sock)
                continue
            payload = encode_frame(response)
            if conn_id is not None and self._consume_corrupt(conn_id):
                payload = corrupt_frame(payload)
            try:
                _sendall(sock, payload)
            except (ConnectionError, OSError):
                self._drop(sock)

    def _apply_faults(
        self, batch: list[tuple[socket.socket, Request]]
    ) -> list[tuple[socket.socket, Request]]:
        """Filter one drained batch through the armed fault hook."""
        kept: list[tuple[socket.socket, Request]] = []
        reset: set[socket.socket] = set()
        for sock, frame in batch:
            if sock in reset:
                continue  # later frames died with their connection
            try:
                action = self.fault_hook(self._conn_ids[sock], frame)
            except Exception:
                action = None  # a broken hook must not take the server down
            if action is None:
                kept.append((sock, frame))
                continue
            kind = action[0] if isinstance(action, tuple) else action
            self.faults_injected[kind] = self.faults_injected.get(kind, 0) + 1
            if kind == "reset":
                reset.add(sock)
                self._drop(sock)
            elif kind == "delay":
                time.sleep(min(float(action[1]), MAX_FAULT_DELAY))
                kept.append((sock, frame))
            elif kind == "drop_response":
                conn_id = self._conn_ids[sock]
                self._swallow[conn_id] = self._swallow.get(conn_id, 0) + 1
                kept.append((sock, frame))
            elif kind == "corrupt_response":
                conn_id = self._conn_ids[sock]
                self._corrupt[conn_id] = self._corrupt.get(conn_id, 0) + 1
                kept.append((sock, frame))
            else:
                kept.append((sock, frame))
        return kept

    def _consume_swallow(self, conn_id: int) -> bool:
        return self._consume_marker(self._swallow, conn_id)

    def _consume_corrupt(self, conn_id: int) -> bool:
        return self._consume_marker(self._corrupt, conn_id)

    @staticmethod
    def _consume_marker(markers: dict[int, int], conn_id: int) -> bool:
        count = markers.get(conn_id, 0)
        if count <= 0:
            return False
        if count == 1:
            markers.pop(conn_id, None)
        else:
            markers[conn_id] = count - 1
        return True

    def send_payload(self, conn_id: int, payload: bytes) -> None:
        """Deliver an already-encoded response frame to a connection.

        Safe to call from a thread other than the serve loop: it only
        reads the conn map (atomic under the GIL) and writes to the
        socket, which the loop never does for deferred-reply handlers.
        A vanished or broken connection is ignored — the serve loop
        observes the EOF and reaps it on its next wake.
        """
        sock = self._socks.get(conn_id)
        if sock is None:
            return
        if self._consume_swallow(conn_id):
            # an armed drop_response eats this ack; shutting the socket
            # down makes the client observe the loss immediately (EOF ->
            # reconnect-and-retry) instead of blocking out its timeout.
            # The serve loop reaps the connection on its next wake.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            return
        if self._consume_corrupt(conn_id):
            payload = corrupt_frame(payload)
        try:
            _sendall(sock, payload)
        except (ConnectionError, OSError):
            pass

    def _accept(self) -> None:
        conn, _ = self._listener.accept()
        conn.setblocking(False)
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._decoders[conn] = StreamDecoder()
        self._conn_ids[conn] = self._next_conn_id
        self._socks[self._next_conn_id] = conn
        self._next_conn_id += 1
        self._sel.register(conn, selectors.EVENT_READ, "conn")

    def _drop(self, sock: socket.socket) -> None:
        try:
            self._sel.unregister(sock)
        except (KeyError, ValueError):
            pass
        sock.close()
        self._decoders.pop(sock, None)
        conn_id = self._conn_ids.pop(sock, None)
        if conn_id is not None:
            self._socks.pop(conn_id, None)

    def close(self) -> None:
        for sock in list(self._decoders):
            self._drop(sock)
        try:
            self._sel.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        self._sel.close()


def dispatch_to_methods(
    receiver_for: Callable[[Any], Any],
) -> Callable[[Iterable[tuple[int, Request]]], list[Response]]:
    """Build a batch handler that maps requests onto receiver methods.

    ``receiver_for(target)`` resolves the addressed object; the request
    method is looked up on it with ``getattr`` and called with the
    request args. Per-request exceptions become per-request error
    responses, so one failing op never poisons its batch-mates.
    """

    def handler(batch: Iterable[tuple[int, Request]]) -> list[Response]:
        responses = []
        for _, request in batch:
            try:
                receiver = receiver_for(request.target)
                value = getattr(receiver, request.method)(*request.args)
                responses.append(Response(value=value))
            except Exception as exc:
                responses.append(encode_error(exc))
        return responses

    return handler
