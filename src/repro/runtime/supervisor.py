"""Process supervision: spawn, heartbeat, kill-hung, restart, reap.

All child processes — TDStore server hosts and Storm workers — are
spawned through one supervisor with the ``spawn`` start method (no
inherited locks or sockets; everything a child needs must pickle, which
the pickling regression tests pin down). Each child performs a startup
handshake over a pipe, reporting the port its RPC endpoint bound, and
is monitored afterwards by RPC heartbeats: a child that stops answering
within the hang deadline is killed and, if restart hooks are installed,
respawned with its original entrypoint and config so the owning layer
can re-drive recovery (WAL replay for server hosts, topology reload for
workers).

Children are daemonic, so even an abrupt parent death cannot leave
orphans; ordinary teardown goes through graceful shutdown (an RPC that
lets the child flush and close its WAL) with terminate/kill escalation.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable

from repro.errors import RuntimeSubstrateError, WorkerCrashError
from repro.runtime.rpc import RpcClient


class SupervisorError(RuntimeSubstrateError):
    """A child process could not be spawned, contacted, or stopped."""


class ManagedProcess:
    """One supervised child: its process handle, address, and liveness."""

    def __init__(
        self,
        name: str,
        entrypoint: Callable,
        config: dict,
        process,
        port: int,
    ):
        self.name = name
        self.entrypoint = entrypoint
        self.config = config
        self.process = process
        self.host = "127.0.0.1"
        self.port = port
        self.restarts = 0
        self.last_heartbeat = time.monotonic()

    @property
    def address(self) -> "tuple[str, int]":
        return (self.host, self.port)

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def pid(self) -> "int | None":
        return self.process.pid

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return (
            f"ManagedProcess({self.name!r}, pid={self.pid}, "
            f"port={self.port}, {state})"
        )


class ProcessSupervisor:
    """Owns the process tree for one substrate deployment."""

    def __init__(
        self, *, spawn_timeout: float = 60.0, hang_deadline: float = 30.0
    ):
        self._ctx = multiprocessing.get_context("spawn")
        self._spawn_timeout = spawn_timeout
        self.hang_deadline = hang_deadline
        self._procs: dict[str, ManagedProcess] = {}
        self._ever_spawned: set[str] = set()
        self._restart_hooks: list[Callable[[ManagedProcess], None]] = []
        # robustness counters surfaced through SystemMonitor
        self.kills = 0
        self.respawns = 0
        self.heartbeat_miss_streaks: dict[str, int] = {}

    # -- spawning ---------------------------------------------------------

    def spawn(self, name: str, entrypoint: Callable, config: dict) -> ManagedProcess:
        """Start a child and wait for its ``("ready", port)`` handshake."""
        if name in self._procs and self._procs[name].alive:
            raise SupervisorError(f"process {name!r} is already running")
        managed = ManagedProcess(
            name, entrypoint, dict(config), *self._launch(name, entrypoint, config)
        )
        self._procs[name] = managed
        self._ever_spawned.add(name)
        return managed

    def _launch(self, name: str, entrypoint: Callable, config: dict):
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=entrypoint, args=(child_conn, config), name=name, daemon=True
        )
        process.start()
        child_conn.close()
        try:
            if not parent_conn.poll(self._spawn_timeout):
                raise SupervisorError(
                    f"process {name!r} did not hand-shake within "
                    f"{self._spawn_timeout}s"
                )
            status, payload = parent_conn.recv()
        except (EOFError, OSError) as exc:
            process.join(timeout=1.0)
            raise SupervisorError(
                f"process {name!r} died during startup: {exc}"
            ) from exc
        finally:
            parent_conn.close()
        if status != "ready":
            process.join(timeout=5.0)
            raise SupervisorError(f"process {name!r} failed to start: {payload}")
        return process, payload

    # -- liveness ---------------------------------------------------------

    def get(self, name: str) -> ManagedProcess:
        managed = self._procs.get(name)
        if managed is None:
            raise SupervisorError(f"unknown process {name!r}")
        return managed

    def names(self) -> "list[str]":
        return sorted(self._procs)

    def ping(self, name: str, timeout: float = 2.0) -> bool:
        """One heartbeat: connect, ``_ping``, update ``last_heartbeat``."""
        managed = self.get(name)
        if not managed.alive:
            return False
        probe = RpcClient(managed.host, managed.port, timeout=timeout)
        try:
            ok = probe.call("_ping") == "pong"
        except Exception:
            ok = False
        finally:
            probe.close()
        if ok:
            managed.last_heartbeat = time.monotonic()
            self.heartbeat_miss_streaks.pop(name, None)
        else:
            self.heartbeat_miss_streaks[name] = (
                self.heartbeat_miss_streaks.get(name, 0) + 1
            )
        return ok

    def heartbeat(self, timeout: float = 2.0) -> "dict[str, bool]":
        """Sweep every child; returns name -> responded."""
        return {name: self.ping(name, timeout) for name in self.names()}

    def kill_hung(
        self,
        deadline: float | None = None,
        *,
        ping_timeout: float = 1.0,
        restart: bool = True,
    ) -> "list[str]":
        """Kill children silent for longer than ``deadline`` seconds.

        A child busy with a long batch is given the benefit of the
        doubt until its silence exceeds the deadline (defaulting to the
        supervisor's configured ``hang_deadline``); past it the process
        is forcibly killed (it is, by assumption, wedged and cannot
        shut down gracefully) and restarted unless told not to.
        """
        if deadline is None:
            deadline = self.hang_deadline
        killed = []
        for name in self.names():
            managed = self.get(name)
            if self.ping(name, ping_timeout):
                continue
            if time.monotonic() - managed.last_heartbeat < deadline:
                continue
            killed.append(name)
            self.kills += 1
            self._force_kill(managed)
            if restart:
                self.restart(name)
        return killed

    # -- restart ----------------------------------------------------------

    def add_restart_hook(self, hook: Callable[[ManagedProcess], None]):
        """Called with the fresh :class:`ManagedProcess` after a respawn."""
        self._restart_hooks.append(hook)

    def restart(self, name: str) -> ManagedProcess:
        """Respawn a child with its original entrypoint and config.

        In-memory state is gone — exactly a crash — and the restart
        hooks are where the owning layer re-drives its recovery path.
        """
        managed = self.get(name)
        if managed.alive:
            self._force_kill(managed)
        process, port = self._launch(name, managed.entrypoint, managed.config)
        managed.process = process
        managed.port = port
        managed.restarts += 1
        managed.last_heartbeat = time.monotonic()
        self.respawns += 1
        self.heartbeat_miss_streaks.pop(name, None)
        for hook in list(self._restart_hooks):
            hook(managed)
        return managed

    def ensure_alive(self, name: str) -> ManagedProcess:
        """Restart ``name`` if its process has died; returns the handle."""
        managed = self.get(name)
        if not managed.alive:
            return self.restart(name)
        return managed

    def require_alive(self, name: str):
        if not self.get(name).alive:
            raise WorkerCrashError(f"process {name!r} is dead")

    def robustness_stats(self) -> dict:
        """Counters the monitoring layer snapshots: forced kills,
        respawns, and per-child consecutive heartbeat misses."""
        return {
            "kills": self.kills,
            "respawns": self.respawns,
            "heartbeat_miss_streaks": dict(self.heartbeat_miss_streaks),
        }

    # -- teardown ---------------------------------------------------------

    def _force_kill(self, managed: ManagedProcess):
        if managed.process.is_alive():
            managed.process.kill()
        managed.process.join(timeout=10.0)

    def stop(self, name: str, *, graceful_timeout: float = 5.0):
        """Stop one child: graceful RPC, then terminate, then kill."""
        managed = self.get(name)
        if managed.alive:
            shutdown = RpcClient(managed.host, managed.port, timeout=graceful_timeout)
            try:
                shutdown.call("_shutdown")
            except Exception:
                pass
            finally:
                shutdown.close()
            managed.process.join(timeout=graceful_timeout)
            if managed.process.is_alive():
                managed.process.terminate()
                managed.process.join(timeout=graceful_timeout)
            if managed.process.is_alive():
                managed.process.kill()
                managed.process.join(timeout=10.0)
        del self._procs[name]

    def shutdown(self, *, graceful_timeout: float = 5.0):
        """Stop every child and reap; the tree must be empty afterwards."""
        for name in self.names():
            self.stop(name, graceful_timeout=graceful_timeout)
        self.reap()

    def reap(self) -> "list[str]":
        """Join any dead-but-unjoined children; returns lingering names.

        ``multiprocessing.active_children`` both reports and joins
        finished children, so calling this after shutdown asserts the
        no-orphan invariant the lifecycle tests pin down.
        """
        return sorted(
            child.name
            for child in multiprocessing.active_children()
            if child.name in self._ever_spawned
        )

    def __enter__(self) -> "ProcessSupervisor":
        return self

    def __exit__(self, *exc_info):
        self.shutdown()
