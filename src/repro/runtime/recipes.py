"""Topology recipes: how worker processes rebuild a topology.

A topology object is a web of closures (bolt factories capturing client
factories) and cannot be pickled into a worker. A *recipe* can: it
names a module-level factory-builder and its keyword arguments. Each
worker imports the module, rebuilds the factory, and calls it with its
own clock and TDStore client factory — the same construction path the
simulator uses, so component behaviour is identical by construction.
"""

from __future__ import annotations

import importlib
import zlib
from typing import Any, Callable

from repro.errors import ConfigurationError


def task_owner(component: str, task_index: int, num_workers: int) -> int:
    """Which worker process owns a bolt task.

    A pure function of the task identity, computed identically by the
    parent (to route dispatches) and by each worker (to pre-build its
    instances), and stable across kills and rebalances so a task's
    state never silently moves between processes.

    Round-robin within each block of ``num_workers`` consecutive tasks
    (perfect balance: execution waves are per-component, so a
    component's tasks must spread evenly over the workers or most of
    the pool idles through each wave), with a per-block hashed rotation.
    The rotation matters: a plain round-robin makes the owner congruent
    to ``hash(key) % num_workers`` for every parallelism that is a
    multiple of the worker count, so each worker would inherit the same
    hot-key buckets no matter how many tasks a component splits into.
    Rotating per block decorrelates the two, letting higher parallelism
    actually smooth key skew across the pool.
    """
    block = task_index // num_workers
    rotation = zlib.crc32(f"{component}:{block}".encode())
    return (rotation + task_index) % num_workers

Recipe = "tuple[str, str, dict[str, Any]]"


def topology_recipe(module: str, name: str, **kwargs: Any) -> Callable:
    """Wrap the factory built by ``module.name(**kwargs)`` so topologies
    it produces carry their own rebuild instructions.

    The returned callable is a drop-in ``TopologyFactory``; topologies
    built through it get a ``.recipe`` attribute that
    :class:`~repro.runtime.process_cluster.ProcessCluster` ships to
    worker processes. On ``SimSubstrate`` the attribute is inert.
    """
    recipe = (module, name, dict(kwargs))
    inner = build_factory(recipe)

    def factory(clock, client_factory, consumer):
        topology = inner(clock, client_factory, consumer)
        topology.recipe = recipe
        return topology

    factory.recipe = recipe
    return factory


def build_factory(recipe) -> Callable:
    """Resolve a recipe back into a topology factory (worker side)."""
    module_name, attr, kwargs = recipe
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ConfigurationError(
            f"topology recipe names module {module_name!r} which the "
            f"worker process cannot import: {exc}"
        ) from exc
    builder = getattr(module, attr, None)
    if builder is None:
        raise ConfigurationError(
            f"topology recipe names {module_name}.{attr} which does not exist"
        )
    return builder(**kwargs)
