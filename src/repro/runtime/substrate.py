"""Substrates: where a stack's TDStore and Storm actually execute.

Everything above this module — topologies, route tables, resilience
policies, checkpointing, the serving layer, the recovery harness — is
substrate-blind: it asks a :class:`Substrate` for a TDStore cluster and
a Storm cluster and drives the same duck types either way.

:class:`SimSubstrate` builds the deterministic in-process simulator and
stays the default for tests. :class:`ProcessSubstrate` deploys the same
logical layout onto real OS processes: TDStore server hosts with
group-commit WALs, and a pool of Storm worker processes executing bolt
tasks. Both are constructor-switchable wherever a stack is built.

Deployment layout on the process substrate::

    parent (spouts, routing, ackers, checkpoints, monitor)
      |- tdstore-host-0   control plane + its share of logical servers
      |- tdstore-host-i   logical servers where id % server_procs == i
      |- storm-worker-j   bolt tasks where task_owner(...) == j

Each ``build_tdstore`` starts a fresh *generation* — new WAL files, so
a rebuilt stack starts empty exactly like a fresh ``TDStoreCluster``
and checkpoint recovery owns repopulating it. Restarting a crashed
server host (same generation) replays its WAL instead.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile

from repro.errors import ConfigurationError
from repro.runtime.process_cluster import ProcessCluster
from repro.runtime.proxies import ProcessTDStore
from repro.runtime.rpc import RpcClient
from repro.runtime.server_host import server_host_main
from repro.runtime.supervisor import ManagedProcess, ProcessSupervisor
from repro.runtime.wal import WalError
from repro.runtime.worker_host import worker_host_main

SERVER_HOST_PREFIX = "tdstore-host-"
WORKER_PREFIX = "storm-worker-"


def install_parent_signal_handlers():
    """Make SIGTERM tear the whole process tree down cleanly.

    Ctrl-C already raises ``KeyboardInterrupt``, which unwinds through
    ``atexit`` where every :class:`ProcessSubstrate` registered its
    :meth:`~ProcessSubstrate.teardown`; SIGTERM's default action skips
    ``atexit``, leaving children to die ungracefully as daemons. This
    converts it to ``SystemExit`` so graceful shutdown (WAL flush and
    close in each child) runs on both signals. Call it once from the
    driving script's entrypoint.
    """
    import signal

    def _exit(signum, frame):
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _exit)


class Substrate:
    """Factory for the execution layer of one stack."""

    name = "substrate"

    def build_tdstore(self, num_servers: int, num_instances: int):
        raise NotImplementedError

    def build_storm(self, clock, tick_interval: "float | None" = None):
        raise NotImplementedError

    def teardown(self):
        """Release whatever :meth:`build_\\*` allocated. Idempotent."""

    def chaos_runtime(self):
        """The process-native fault adapter, or ``None`` when this
        substrate cannot express real SIGKILL/network/disk faults (the
        injector records such faults as skipped instead)."""
        return None

    def __enter__(self) -> "Substrate":
        return self

    def __exit__(self, *exc_info):
        self.teardown()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SimSubstrate(Substrate):
    """The deterministic in-process simulator (the default)."""

    name = "sim"

    def build_tdstore(self, num_servers: int, num_instances: int):
        from repro.tdstore.cluster import TDStoreCluster

        return TDStoreCluster(num_servers, num_instances)

    def build_storm(self, clock, tick_interval: "float | None" = None):
        from repro.storm.cluster import LocalCluster

        return LocalCluster(clock=clock, tick_interval=tick_interval)


class ProcessSubstrate(Substrate):
    """Real OS processes behind the same duck types.

    Parameters
    ----------
    worker_procs:
        Storm worker processes executing bolt tasks.
    server_procs:
        TDStore host processes the logical servers are spread over.
    durable:
        fsync WAL appends before acking mutations.
    max_group_wait:
        Ceiling for the server hosts' adaptive group-commit delay
        (seconds); see ``GroupCommitter``.
    commit_floor:
        Modeled minimum WAL commit-barrier latency (seconds); 0.0
        (the default) measures the raw device. See ``GroupCommitWal``.
    wal_dir:
        Where WAL files live; a temp directory by default.
    serialize_waves:
        Dispatch execution waves one worker at a time (simulator-grade
        determinism, no parallel speedup) — see ``ProcessCluster``.
    """

    name = "process"

    def __init__(
        self,
        worker_procs: int = 2,
        server_procs: int = 1,
        *,
        durable: bool = True,
        wal_dir: "str | None" = None,
        serialize_waves: bool = False,
        spawn_timeout: float = 60.0,
        max_group_wait: float = 0.002,
        commit_floor: float = 0.0,
        hang_deadline: float = 30.0,
    ):
        if worker_procs < 1:
            raise ConfigurationError("worker_procs must be >= 1")
        if server_procs < 1:
            raise ConfigurationError("server_procs must be >= 1")
        self.worker_procs = worker_procs
        self.server_procs = server_procs
        self.durable = durable
        self.max_group_wait = max_group_wait
        self.commit_floor = commit_floor
        self.serialize_waves = serialize_waves
        self.hang_deadline = hang_deadline
        self._spawn_timeout = spawn_timeout
        self._wal_dir = wal_dir
        self._owns_wal_dir = False
        self._supervisor: ProcessSupervisor | None = None
        self._facade: ProcessTDStore | None = None
        self._cluster: ProcessCluster | None = None
        self._tdstore_spec: "tuple[list, dict] | None" = None
        self._generation = 0
        self._chaos_runtime = None
        # acknowledged-but-damaged WAL records caught by replay CRC scans
        # (counted here, parent-side, exactly once per record — the host
        # that found them excludes the scan from its own _stats)
        self.wal_corruptions_detected = 0

    @property
    def supervisor(self) -> ProcessSupervisor:
        if self._supervisor is None:
            self._supervisor = ProcessSupervisor(
                spawn_timeout=self._spawn_timeout,
                hang_deadline=self.hang_deadline,
            )
            self._supervisor.add_restart_hook(self._on_restart)
            atexit.register(self.teardown)
        return self._supervisor

    @property
    def facade(self) -> "ProcessTDStore | None":
        return self._facade

    def _ensure_wal_dir(self) -> str:
        if self._wal_dir is None:
            self._wal_dir = tempfile.mkdtemp(prefix="repro-wal-")
            self._owns_wal_dir = True
        else:
            os.makedirs(self._wal_dir, exist_ok=True)
        return self._wal_dir

    # -- deployment -------------------------------------------------------

    def build_tdstore(self, num_servers: int, num_instances: int) -> ProcessTDStore:
        """Deploy a fresh generation of server host processes.

        Hosts 1..P-1 come up first (pure data plane); host 0 last, with
        their addresses, because its control plane provisions instances
        across every host during startup.
        """
        supervisor = self.supervisor
        self._stop_prefixed(SERVER_HOST_PREFIX)
        if self._facade is not None:
            self._facade.close()
        self._generation += 1
        wal_dir = self._ensure_wal_dir()
        placement = {
            sid: sid % self.server_procs for sid in range(num_servers)
        }
        addresses: list = [None] * self.server_procs
        for host_index in range(1, self.server_procs):
            managed = supervisor.spawn(
                f"{SERVER_HOST_PREFIX}{host_index}",
                server_host_main,
                self._host_config(host_index, placement, num_instances, wal_dir),
            )
            addresses[host_index] = managed.address
            # pin the bound port into the respawn config: a restarted
            # host rebinds the same address, so worker-held proxies and
            # host 0's sibling connections survive the crash
            managed.config["port"] = managed.port
        config = self._host_config(0, placement, num_instances, wal_dir)
        config["sibling_addresses"] = {
            i: addresses[i] for i in range(1, self.server_procs)
        }
        managed = supervisor.spawn(
            f"{SERVER_HOST_PREFIX}0", server_host_main, config
        )
        addresses[0] = managed.address
        managed.config["port"] = managed.port
        self._facade = ProcessTDStore(addresses, placement)
        self._facade.set_recovery_hook(self._recover_host)
        self._tdstore_spec = (addresses, placement)
        return self._facade

    def _recover_host(self, host_index: int):
        """Parent-side transport-retry hook: respawn a dead host (WAL
        replay rides the restart hook) before the proxy retries."""
        if self._supervisor is not None:
            self._supervisor.ensure_alive(f"{SERVER_HOST_PREFIX}{host_index}")

    def _host_config(
        self, host_index: int, placement: dict, num_instances: int, wal_dir: str
    ) -> dict:
        return {
            "host_index": host_index,
            "local_server_ids": sorted(
                sid for sid, host in placement.items() if host == host_index
            ),
            "num_instances": num_instances,
            "placement": placement,
            "wal_path": os.path.join(
                wal_dir, f"host{host_index}-gen{self._generation}.wal"
            ),
            "durable": self.durable,
            "max_group_wait": self.max_group_wait,
            "commit_floor": self.commit_floor,
        }

    def build_storm(
        self, clock, tick_interval: "float | None" = None
    ) -> ProcessCluster:
        if self._tdstore_spec is None:
            raise ConfigurationError(
                "build_tdstore must run before build_storm: workers need "
                "the server host addresses"
            )
        supervisor = self.supervisor
        if self._cluster is not None:
            self._cluster.close()
            self._cluster = None
        self._stop_prefixed(WORKER_PREFIX)
        workers = [
            supervisor.spawn(
                f"{WORKER_PREFIX}{index}",
                worker_host_main,
                {"worker_index": index, "num_workers": self.worker_procs},
            )
            for index in range(self.worker_procs)
        ]
        self._cluster = ProcessCluster(
            clock=clock,
            workers=workers,
            supervisor=supervisor,
            tdstore_spec=self._tdstore_spec,
            tick_interval=tick_interval,
            serialize_waves=self.serialize_waves,
        )
        return self._cluster

    def _stop_prefixed(self, prefix: str):
        supervisor = self.supervisor
        for name in supervisor.names():
            if name.startswith(prefix):
                supervisor.stop(name)

    # -- crash recovery ---------------------------------------------------

    def _on_restart(self, managed: ManagedProcess):
        """Re-drive recovery after the supervisor respawned a child.

        Server hosts replay their WAL onto freshly provisioned servers;
        workers get their topologies reloaded (fresh bolt instances —
        crash semantics — with re-executed tuples absorbed by the
        exactly-once layer).
        """
        if managed.name.startswith(SERVER_HOST_PREFIX):
            host_index = int(managed.name[len(SERVER_HOST_PREFIX) :])
            if self._facade is not None:
                self._facade.update_address(host_index, managed.address)
            corruption: "WalError | None" = None
            replayer = RpcClient(*managed.address)
            try:
                try:
                    replayer.call("_replay_wal")
                except WalError as exc:
                    # the CRC scan found acknowledged-but-damaged records:
                    # detection-before-serving worked. Set the log aside
                    # (forensics) and fall through to re-seeding the
                    # host's replicas from their live peers below.
                    corruption = exc
                    self.wal_corruptions_detected += max(
                        1, exc.corrupt_records
                    )
                    replayer.call("_quarantine_wal")
            finally:
                replayer.close()
            if host_index == 0 and corruption is not None:
                # host 0's WAL also rebuilds control-plane state
                # (checkpoint restores, elastic expansion); there is no
                # replica to repair that from — surface the fail-stop
                raise corruption
            if host_index != 0 and self._facade is not None:
                # roles are control-plane state, not WAL state: re-push
                # the authoritative layout onto the reborn host's servers
                self._facade.resync_host_roles(host_index)
                if corruption is not None:
                    # wipe the partial replay and re-seed every logical
                    # server this process owns from its live replicas;
                    # adopt_snapshot is a mutating op, so the re-seed
                    # repopulates the fresh post-quarantine log
                    for sid, owner in sorted(self._facade.placement.items()):
                        if owner == host_index:
                            self._facade.recover_data_server(sid)
        elif managed.name.startswith(WORKER_PREFIX):
            if self._cluster is not None:
                self._cluster.on_worker_restarted(
                    int(managed.name[len(WORKER_PREFIX) :])
                )

    # -- chaos ------------------------------------------------------------

    def chaos_runtime(self):
        """Process-native fault adapter bound to this substrate. One per
        substrate: its MTTR samples and kill counters span rebuilds."""
        if self._chaos_runtime is None:
            from repro.runtime.chaos import ChaosRuntime

            self._chaos_runtime = ChaosRuntime(self)
        return self._chaos_runtime

    # -- teardown ---------------------------------------------------------

    def teardown(self):
        if self._cluster is not None:
            self._cluster.close()
            self._cluster = None
        if self._facade is not None:
            self._facade.close()
            self._facade = None
        self._tdstore_spec = None
        if self._supervisor is not None:
            supervisor, self._supervisor = self._supervisor, None
            supervisor.shutdown()
        if self._owns_wal_dir and self._wal_dir is not None:
            # children are down and their WALs closed; a temp dir this
            # substrate created is now garbage (a fresh build starts a
            # new generation anyway). User-supplied dirs are kept.
            shutil.rmtree(self._wal_dir, ignore_errors=True)
            self._wal_dir = None
            self._owns_wal_dir = False

    def __repr__(self) -> str:
        return (
            f"ProcessSubstrate(workers={self.worker_procs}, "
            f"servers={self.server_procs}, durable={self.durable})"
        )
