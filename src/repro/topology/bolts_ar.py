"""Association-rule units (the ARBolt of Figure 6).

:class:`ARSessionBolt` (grouped by user) tracks per-user sessions and
emits item and pair support increments; :class:`ARCountBolt` (grouped by
item / pair key) owns the support counters in TDStore.
"""

from __future__ import annotations

from typing import Callable

from repro.storm.reliability import ExactlyOnceBolt
from repro.storm.tuples import StormTuple
from repro.tdstore.client import TDStoreClient
from repro.topology.state import CachedStore, StateKeys

ClientFactory = Callable[[], TDStoreClient]


class ARSessionBolt(ExactlyOnceBolt):
    """Grouped by user: sessionizes actions, emits support increments."""

    def __init__(self, session_gap: float = 1800.0):
        super().__init__()
        self._session_gap = session_gap
        self._sessions: dict[str, tuple[set[str], float]] = {}

    def declare_outputs(self, declarer):
        declarer.declare(("item",), "ar_item")
        declarer.declare(("pair_a", "pair_b"), "ar_pair")

    def process(self, tup: StormTuple):
        user, item, now = tup["user"], tup["item"], tup["timestamp"]
        session_items, last_seen = self._sessions.get(user, (set(), now))
        if now - last_seen > self._session_gap:
            session_items = set()
        if item not in session_items:
            self.collector.emit((item,), stream_id="ar_item")
            for other in session_items:
                first, second = (item, other) if item < other else (other, item)
                self.collector.emit((first, second), stream_id="ar_pair")
            session_items = session_items | {item}
        self._sessions[user] = (session_items, now)

    def snapshot_app_state(self) -> dict | None:
        # open sessions exist only in task memory; a restored task must
        # keep extending them rather than re-opening every session
        return {
            "sessions": {
                user: (set(items), last_seen)
                for user, (items, last_seen) in self._sessions.items()
            }
        }

    def restore_app_state(self, state: dict):
        self._sessions = {
            user: (set(items), last_seen)
            for user, (items, last_seen) in state["sessions"].items()
        }


class ARCountBolt(ExactlyOnceBolt):
    """Owns AR support counters.

    Subscribes to ``ar_item`` grouped by item and ``ar_pair`` grouped by
    the pair; also maintains the partner index used at query time.
    Support increments go through the op journal; the partner index is a
    set insertion, idempotent by construction.
    """

    def __init__(self, client_factory: ClientFactory):
        super().__init__()
        self._client_factory = client_factory

    def prepare(self, context, collector):
        super().prepare(context, collector)
        self._store = CachedStore(self._client_factory())

    def process(self, tup: StormTuple):
        if tup.stream_id == "ar_item":
            key = StateKeys.ar_item(tup["item"])
            if tup.op_id is not None:
                self._store.apply(key, tup.op_id, 1.0)
            else:
                self._store.incr(key, 1.0)
        elif tup.stream_id == "ar_pair":
            a, b = tup["pair_a"], tup["pair_b"]
            key = StateKeys.ar_pair(a, b)
            if tup.op_id is not None:
                self._store.apply(key, tup.op_id, 1.0)
            else:
                self._store.incr(key, 1.0)
            for item, partner in ((a, b), (b, a)):
                key = StateKeys.ar_partners(item)
                partners = self._store.get_fresh(key, None) or set()
                if partner not in partners:
                    partners.add(partner)
                    self._store.client.put(key, partners)
