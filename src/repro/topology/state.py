"""Status-data access with the paper's optimizations.

:class:`StateKeys` is the single place TDStore key formats are defined.
:class:`CachedStore` is the fine-grained cache of Section 5.2: because
stream grouping sends all tuples with one key to one worker, a task may
cache the keys *it owns* and write through; keys owned by other tasks
must be read fresh. :class:`Combiner` is the partial-aggregation map of
Section 5.3, flushed at tick intervals, collapsing the hot-item write
storm into one read-modify-write per key per interval.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.tdstore.client import TDStoreClient


class StateKeys:
    """Key-format conventions for recommendation state in TDStore."""

    @staticmethod
    def history(user: str) -> str:
        return f"hist:{user}"

    @staticmethod
    def recent(user: str) -> str:
        return f"recent:{user}"

    @staticmethod
    def consumed(user: str) -> str:
        return f"consumed:{user}"

    @staticmethod
    def item_count(item: str) -> str:
        return f"itemCount:{item}"

    @staticmethod
    def pair_count(a: str, b: str) -> str:
        first, second = (a, b) if a < b else (b, a)
        return f"pairCount:{first}|{second}"

    @staticmethod
    def sim_list(item: str) -> str:
        return f"simlist:{item}"

    @staticmethod
    def threshold(item: str) -> str:
        return f"threshold:{item}"

    @staticmethod
    def pruned(item: str) -> str:
        return f"pruned:{item}"

    @staticmethod
    def hot(group: str) -> str:
        return f"hot:{group}"

    @staticmethod
    def profile(user: str) -> str:
        return f"profile:{user}"

    @staticmethod
    def item_meta(item: str) -> str:
        return f"item:{item}"

    @staticmethod
    def tag_index(tag: str) -> str:
        return f"tagidx:{tag}"

    @staticmethod
    def ar_item(item: str) -> str:
        return f"arItem:{item}"

    @staticmethod
    def ar_pair(a: str, b: str) -> str:
        first, second = (a, b) if a < b else (b, a)
        return f"arPair:{first}|{second}"

    @staticmethod
    def ar_partners(item: str) -> str:
        return f"arPartners:{item}"

    @staticmethod
    def impressions(item: str, situation: str) -> str:
        return f"imp:{item}|{situation}"

    @staticmethod
    def clicks(item: str, situation: str) -> str:
        return f"clk:{item}|{situation}"

    @staticmethod
    def impressions_session(item: str, situation: str, session: int) -> str:
        return f"impw:{item}|{situation}|{session}"

    @staticmethod
    def clicks_session(item: str, situation: str, session: int) -> str:
        return f"clkw:{item}|{situation}|{session}"

    @staticmethod
    def ctr(item: str, situation: str) -> str:
        return f"ctr:{item}|{situation}"

    @staticmethod
    def result(kind: str, key: str) -> str:
        return f"result:{kind}:{key}"


class CachedStore:
    """Read-through / write-through cache over a TDStore client.

    Valid only for keys this task owns (same-key-same-worker, enforced by
    stream grouping); for keys owned by other tasks use
    :meth:`get_fresh`, which bypasses the cache.
    """

    def __init__(self, client: TDStoreClient):
        self._client = client
        self._cache: dict[str, Any] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: str, default: Any = None) -> Any:
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        value = self._client.get(key, default)
        self._cache[key] = value
        return value

    def get_fresh(self, key: str, default: Any = None) -> Any:
        """Read straight from TDStore (for keys another task owns)."""
        return self._client.get(key, default)

    def put(self, key: str, value: Any):
        """Write-through: update the cache and TDStore together (§5.2)."""
        self._cache[key] = value
        self._client.put(key, value)

    def incr(self, key: str, delta: float) -> float:
        value = self.get(key, 0.0) + delta
        self.put(key, value)
        return value

    def apply(self, key: str, op_id: str, delta: float) -> tuple[float, bool]:
        """Idempotent increment through the store's op journal.

        Like :meth:`incr` but replay-safe: a duplicate ``op_id`` leaves
        the value untouched. The cache is primed with the authoritative
        result either way.
        """
        value, applied = self._client.apply(key, op_id, delta)
        self._cache[key] = value
        return value, applied

    def put_once(self, key: str, op_id: str, value: Any) -> bool:
        """Write-through idempotent put — the atomic commit point for
        read-modify-write updates (compute from copies, commit last)."""
        applied = self._client.put_once(key, op_id, value)
        if applied:
            self._cache[key] = value
        else:
            # replay: the store kept the (authoritative) earlier value
            self._cache.pop(key, None)
        return applied

    def op_seen(self, key: str, op_id: str) -> bool:
        """True when ``op_id`` already committed against ``key`` (pure read)."""
        return self._client.op_seen(key, op_id)

    def run_once(self, key: str, op_id: str) -> bool:
        """Journal ``op_id`` against ``key``; True the first time only.

        Journals before the caller mutates — prefer :meth:`op_seen` +
        :meth:`put_once` for read-modify-write updates.
        """
        return self._client.run_once(key, op_id)

    def delete(self, key: str):
        """Write-through delete: drop the key from the cache and TDStore.

        Deleting an absent key is a no-op, so re-executed cleanup (e.g.
        a replayed centroid merge) stays idempotent.
        """
        self._cache.pop(key, None)
        self._client.delete(key)

    def prime(self, key: str, value: Any):
        """Install ``value`` in the cache without writing to TDStore.

        For callers that wrote through another path (e.g. a
        ``check_and_set`` on the client) and know the authoritative
        value.
        """
        self._cache[key] = value

    def invalidate(self, key: str | None = None):
        if key is None:
            self._cache.clear()
        else:
            self._cache.pop(key, None)

    @property
    def client(self) -> TDStoreClient:
        return self._client


class Combiner:
    """Partial aggregation buffer (Section 5.3).

    Incoming deltas for the same key merge in memory; ``flush`` applies
    the merged values to the store with one read-modify-write per key.
    ``combine`` picks the merge operation: ``"add"`` (counts) or ``"max"``
    (ratings).
    """

    _OPS: dict[str, Callable[[float, float], float]] = {
        "add": lambda a, b: a + b,
        "max": max,
    }

    def __init__(self, store: CachedStore, combine: str = "add"):
        if combine not in self._OPS:
            raise ConfigurationError(
                f"unknown combine op {combine!r}; expected one of "
                f"{sorted(self._OPS)}"
            )
        self._store = store
        self._op = self._OPS[combine]
        self._combine_name = combine
        self._buffer: dict[str, float] = {}
        self.merged = 0
        self.flushes = 0
        self.flushed_keys = 0

    def add(self, key: str, value: float):
        if key in self._buffer:
            self._buffer[key] = self._op(self._buffer[key], value)
            self.merged += 1
        else:
            self._buffer[key] = value

    def pending(self) -> int:
        return len(self._buffer)

    def peek(self, key: str) -> float | None:
        """Buffered (not yet flushed) value for ``key``, if any."""
        return self._buffer.get(key)

    def snapshot_buffer(self) -> dict[str, float]:
        """Unflushed deltas, for the checkpoint protocol: a crash between
        ticks must not lose partial aggregates."""
        return dict(self._buffer)

    def restore_buffer(self, buffer: dict[str, float]):
        self._buffer = dict(buffer)

    def flush(self):
        """Apply all buffered values to the store."""
        for key, value in self._buffer.items():
            if self._combine_name == "add":
                self._store.incr(key, value)
            else:
                current = self._store.get(key, 0.0)
                self._store.put(key, self._op(current, value))
            self.flushed_keys += 1
        self._buffer.clear()
        self.flushes += 1
