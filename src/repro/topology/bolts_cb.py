"""Content-based units: the ItemInfo statistics unit and the CB bolt.

``ItemInfo`` in Figure 6 is an algorithm-common unit holding item
content; :class:`ItemInfoBolt` ingests item-metadata events into TDStore
(metadata record plus a tag inverted index). :class:`CBProfileBolt`,
grouped by user, maintains the decayed tag-interest profiles the
recommender engine scores against.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.algorithms.ratings import ActionWeights, DEFAULT_ACTION_WEIGHTS
from repro.storm.component import Bolt
from repro.storm.tuples import StormTuple
from repro.tdstore.client import TDStoreClient
from repro.topology.state import CachedStore, StateKeys

ClientFactory = Callable[[], TDStoreClient]


def item_tags(meta: dict) -> tuple[str, ...]:
    """The taggable content of an item-metadata record."""
    tags = tuple(meta.get("tags", ()))
    category = meta.get("category")
    if category is not None:
        tags = tags + (f"category:{category}",)
    return tags


class ItemInfoBolt(Bolt):
    """Grouped by item: stores item metadata and maintains the tag index.

    Input stream ``item_meta`` with a ``meta`` dict field carrying at
    least ``item`` plus ``tags``/``category``/``publish_time``/
    ``lifetime``/``price``.
    """

    def __init__(self, client_factory: ClientFactory):
        self._client_factory = client_factory
        self.registered = 0

    def prepare(self, context, collector):
        super().prepare(context, collector)
        self._store = CachedStore(self._client_factory())

    def execute(self, tup: StormTuple):
        meta = tup["meta"]
        item = meta["item"]
        self._store.put(StateKeys.item_meta(item), dict(meta))
        for tag in item_tags(meta):
            # tag index keys are shared across item tasks: read fresh,
            # then write (tag fan-in is low; last-writer-wins is fine for
            # an index that only ever grows)
            index = self._store.get_fresh(StateKeys.tag_index(tag), None) or set()
            index.add(item)
            self._store.client.put(StateKeys.tag_index(tag), index)
        self.registered += 1


class CBProfileBolt(Bolt):
    """Grouped by user: decayed tag-interest profiles (the CBBolt)."""

    def __init__(
        self,
        client_factory: ClientFactory,
        weights: ActionWeights = DEFAULT_ACTION_WEIGHTS,
        half_life: float = 4 * 3600.0,
    ):
        self._client_factory = client_factory
        self._weights = weights
        self._half_life = half_life

    def prepare(self, context, collector):
        super().prepare(context, collector)
        self._store = CachedStore(self._client_factory())

    def execute(self, tup: StormTuple):
        user, item = tup["user"], tup["item"]
        now = tup["timestamp"]
        meta = self._store.get_fresh(StateKeys.item_meta(item), None)
        if meta is None:
            return  # unknown content: nothing to learn
        gain = self._weights.weight(tup["action"])
        profile = self._store.get(StateKeys.profile(user), None) or {}
        for tag in item_tags(meta):
            weight, since = profile.get(tag, (0.0, now))
            decayed = weight * math.pow(
                0.5, max(0.0, now - since) / self._half_life
            )
            profile[tag] = (decayed + gain, now)
        self._store.put(StateKeys.profile(user), profile)
        consumed = self._store.get(StateKeys.consumed(user), None) or set()
        consumed.add(item)
        self._store.put(StateKeys.consumed(user), consumed)
