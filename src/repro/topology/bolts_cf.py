"""The multi-layer item-based CF bolts (Figure 4 + Figure 6).

Layer 1 — :class:`UserHistoryBolt`, grouped by user id: keeps each user's
behaviour history, turns actions into rating and co-rating deltas.

Layer 2 — :class:`ItemCountBolt` (grouped by item) and
:class:`PairCountBolt` (grouped by item pair): incrementally maintain
itemCount and pairCount (Eq 6–8); the pair bolt recomputes the pair's
similarity (Eq 5) and runs the Hoeffding pruning check (Algorithm 1).

Layer 3 — :class:`SimListBolt`, grouped by item: owns each item's
similar-items list, its entry threshold, and its pruned-partner set, so
every piece of state has exactly one writing task.
"""

from __future__ import annotations

from typing import Callable

from repro.algorithms.demographic import GLOBAL_GROUP
from repro.algorithms.itemcf.history import apply_action
from repro.algorithms.itemcf.pruning import hoeffding_epsilon
from repro.algorithms.itemcf.similarity import SimilarItemsList
from repro.algorithms.ratings import ActionWeights, DEFAULT_ACTION_WEIGHTS
from repro.errors import VersionConflictError
from repro.storm.reliability import ExactlyOnceBolt
from repro.storm.tuples import StormTuple
from repro.tdstore.client import TDStoreClient
from repro.topology.state import CachedStore, Combiner, StateKeys
from repro.types import UserProfile
from repro.utils.clock import SECONDS_PER_HOUR

ClientFactory = Callable[[], TDStoreClient]
ProfileLookup = Callable[[str], "UserProfile | None"]


class UserHistoryBolt(ExactlyOnceBolt):
    """Grouped by user: histories, rating deltas, recent-k, group deltas.

    Emits:

    * ``item_delta`` (item, delta) — grouped by item downstream.
    * ``pair_delta`` (pair_a, pair_b, item, delta) — grouped by the pair.
    * ``group_delta`` (group, item, delta) — the multi-hash hop of
      Section 5.4: demographic counting is re-keyed by group id here so a
      single downstream task owns each group's counters.

    The history update is a read-modify-write, not a delta, so beyond
    the dedup ledger each identified action is journaled against the
    user's history key (``run_once``): a replay arriving after a task
    kill wiped the ledger is still skipped — including its emissions,
    whose first delivery already reached downstream.
    """

    def __init__(
        self,
        client_factory: ClientFactory,
        weights: ActionWeights = DEFAULT_ACTION_WEIGHTS,
        linked_time: float = 6 * SECONDS_PER_HOUR,
        recent_k: int = 10,
        group_of: Callable[[str], str] | None = None,
    ):
        super().__init__()
        self._client_factory = client_factory
        self._weights = weights
        self._linked_time = linked_time
        self._recent_k = recent_k
        self._group_of = group_of

    def declare_outputs(self, declarer):
        declarer.declare(("item", "delta"), "item_delta")
        declarer.declare(("pair_a", "pair_b", "item", "delta"), "pair_delta")
        declarer.declare(("group", "item", "delta"), "group_delta")

    def prepare(self, context, collector):
        super().prepare(context, collector)
        self._store = CachedStore(self._client_factory())

    def process(self, tup: StormTuple):
        user, item = tup["user"], tup["item"]
        if tup.op_id is not None and not self._store.run_once(
            StateKeys.history(user), tup.op_id
        ):
            return
        now = tup["timestamp"]
        weight = self._weights.weight(tup["action"])
        history = self._store.get(StateKeys.history(user), None)
        if history is None:
            history = {}
        # pruned sets are owned by SimListBolt tasks: read fresh (§5.2)
        pruned = self._store.get_fresh(StateKeys.pruned(item), None) or set()
        update = apply_action(
            history, item, weight, now, self._linked_time, pruned
        )
        self._store.put(StateKeys.history(user), history)
        self._update_recent(user, item, update.new_rating, now)
        if not update.rating_increased:
            return
        self.collector.emit((item, update.item_delta), stream_id="item_delta")
        for other, delta in update.pair_deltas:
            first, second = (item, other) if item < other else (other, item)
            self.collector.emit(
                (first, second, item, delta), stream_id="pair_delta"
            )
        if self._group_of is not None:
            group = self._group_of(user)
            for target in {group, GLOBAL_GROUP}:
                self.collector.emit(
                    (target, item, update.item_delta), stream_id="group_delta"
                )

    def _update_recent(self, user: str, item: str, rating: float, now: float):
        recent = self._store.get(StateKeys.recent(user), None) or []
        recent = [entry for entry in recent if entry[0] != item]
        recent.insert(0, (item, rating, now))
        del recent[self._recent_k :]
        self._store.put(StateKeys.recent(user), recent)


class ItemCountBolt(ExactlyOnceBolt):
    """Grouped by item: maintains itemCount (Eq 6) in TDStore.

    With ``use_combiner`` the deltas buffer in a combiner map and flush
    on tick — the Section 5.3 optimization for hot items; without it,
    every delta is written through immediately (exact, more writes).

    Write-through deltas go through the store's op journal
    (:meth:`CachedStore.apply`) so they are idempotent under replay even
    when the dedup ledger did not survive a task kill; combiner-buffered
    deltas rely on the ledger alone — a delta enters the buffer exactly
    once, and the buffer itself is checkpointed.
    """

    def __init__(self, client_factory: ClientFactory, use_combiner: bool = False):
        super().__init__()
        self._client_factory = client_factory
        self._use_combiner = use_combiner

    def prepare(self, context, collector):
        super().prepare(context, collector)
        self._store = CachedStore(self._client_factory())
        self._combiner = Combiner(self._store, "add") if self._use_combiner else None

    def process(self, tup: StormTuple):
        key = StateKeys.item_count(tup["item"])
        if self._combiner is not None:
            self._combiner.add(key, tup["delta"])
        elif tup.op_id is not None:
            self._store.apply(key, tup.op_id, tup["delta"])
        else:
            self._store.incr(key, tup["delta"])

    def tick(self, now: float):
        if self._combiner is not None:
            self._combiner.flush()

    @property
    def combiner(self) -> Combiner | None:
        return self._combiner

    def snapshot_app_state(self) -> dict | None:
        if self._combiner is None:
            return None  # write-through: everything already in TDStore
        return {"combiner": self._combiner.snapshot_buffer()}

    def restore_app_state(self, state: dict):
        if self._combiner is not None:
            self._combiner.restore_buffer(state["combiner"])


class PairCountBolt(ExactlyOnceBolt):
    """Grouped by (pair_a, pair_b): pairCount, similarity, pruning check.

    Emits ``sim_update`` (item, other, similarity) once per direction so
    the per-item SimListBolt tasks can refresh their lists, and ``prune``
    (item, other) when Algorithm 1's bound fires.
    """

    def __init__(
        self,
        client_factory: ClientFactory,
        pruning_delta: float | None = None,
    ):
        super().__init__()
        self._client_factory = client_factory
        self._pruning_delta = pruning_delta
        self.pair_updates = 0
        self.prunes = 0

    def declare_outputs(self, declarer):
        declarer.declare(("item", "other", "similarity"), "sim_update")
        declarer.declare(("item", "other"), "prune")

    def prepare(self, context, collector):
        super().prepare(context, collector)
        self._store = CachedStore(self._client_factory())
        self._observations: dict[tuple[str, str], int] = {}

    def snapshot_app_state(self) -> dict | None:
        # the Hoeffding observation counters (Algorithm 1's n) live only
        # in this task's memory; losing them resets pruning confidence
        return {"observations": dict(self._observations)}

    def restore_app_state(self, state: dict):
        self._observations = dict(state["observations"])

    def process(self, tup: StormTuple):
        a, b, delta = tup["pair_a"], tup["pair_b"], tup["delta"]
        key = StateKeys.pair_count(a, b)
        if delta != 0.0 and tup.op_id is not None:
            pair_count, __ = self._store.apply(key, tup.op_id, delta)
        elif delta != 0.0:
            pair_count = self._store.incr(key, delta)
        else:
            pair_count = self._store.get(key, 0.0)
        similarity = self._similarity(a, b, pair_count)
        self.pair_updates += 1
        self.collector.emit((a, b, similarity), stream_id="sim_update")
        self.collector.emit((b, a, similarity), stream_id="sim_update")
        if self._pruning_delta is not None:
            self._maybe_prune(a, b, similarity)

    def _similarity(self, a: str, b: str, pair_count: float) -> float:
        """Equation 5 from the live counts (itemCounts owned elsewhere)."""
        if pair_count <= 0.0:
            return 0.0
        count_a = self._store.get_fresh(StateKeys.item_count(a), 0.0)
        count_b = self._store.get_fresh(StateKeys.item_count(b), 0.0)
        denominator = (count_a**0.5) * (count_b**0.5)
        if denominator <= 0.0:
            return 0.0
        return pair_count / denominator

    def _maybe_prune(self, a: str, b: str, similarity: float):
        pair = (a, b)
        n = self._observations.get(pair, 0) + 1
        self._observations[pair] = n
        threshold_a = self._store.get_fresh(StateKeys.threshold(a), 0.0)
        threshold_b = self._store.get_fresh(StateKeys.threshold(b), 0.0)
        t = min(threshold_a, threshold_b)
        if t <= 0.0:
            return
        eps = hoeffding_epsilon(n, self._pruning_delta)
        if eps < t - similarity:
            self.prunes += 1
            self._observations.pop(pair, None)
            self.collector.emit((a, b), stream_id="prune")
            self.collector.emit((b, a), stream_id="prune")


class SimListBolt(ExactlyOnceBolt):
    """Grouped by item: owns simlist, threshold, and pruned set per item.

    Subscribes to both ``sim_update`` and ``prune`` streams (keyed by the
    ``item`` field in each, so one task owns all state for an item).

    List rewrites are conditional writes (``check_and_set`` against the
    version this task last observed), and each identified update is
    journaled against the item's list key — so a replayed ``sim_update``
    carrying a stale similarity can never overwrite a newer list, even
    after the in-memory ledger died with its task.
    """

    def __init__(self, client_factory: ClientFactory, k: int = 20):
        super().__init__()
        self._client_factory = client_factory
        self._k = k

    def prepare(self, context, collector):
        super().prepare(context, collector)
        self._store = CachedStore(self._client_factory())
        self._versions: dict[str, int] = {}

    def _load_list(self, item: str) -> SimilarItemsList:
        key = StateKeys.sim_list(item)
        if item in self._versions:
            stored = self._store.get(key, None)
        else:
            # first touch since (re)start: learn the stored version so
            # the conditional write below has something to check against
            stored, version = self._store.client.get_versioned(key)
            self._versions[item] = version
            self._store.prime(key, stored)
        lst = SimilarItemsList(self._k)
        if stored:
            for other, sim in stored.items():
                lst.update(other, sim)
        return lst

    def _save_list(self, item: str, lst: SimilarItemsList):
        key = StateKeys.sim_list(item)
        payload = dict(lst.top())
        try:
            self._versions[item] = self._store.client.check_and_set(
                key, payload, self._versions.get(item, 0)
            )
        except VersionConflictError as conflict:
            # our cached version predates a failover replay or restore;
            # this task is still the only writer, so adopt the stored
            # version and reissue the write
            self._versions[item] = self._store.client.check_and_set(
                key, payload, conflict.current
            )
        self._store.prime(key, payload)
        self._store.put(StateKeys.threshold(item), lst.threshold())

    def process(self, tup: StormTuple):
        if tup.stream_id == "sim_update":
            item, other, sim = tup["item"], tup["other"], tup["similarity"]
            if tup.op_id is not None and not self._store.run_once(
                StateKeys.sim_list(item), tup.op_id
            ):
                return
            lst = self._load_list(item)
            lst.update(other, sim)
            self._save_list(item, lst)
        elif tup.stream_id == "prune":
            item, other = tup["item"], tup["other"]
            if tup.op_id is not None and not self._store.run_once(
                StateKeys.sim_list(item), tup.op_id
            ):
                return
            pruned = self._store.get(StateKeys.pruned(item), None) or set()
            pruned.add(other)
            self._store.put(StateKeys.pruned(item), pruned)
            lst = self._load_list(item)
            lst.remove(other)
            self._save_list(item, lst)
