"""The multi-layer item-based CF bolts (Figure 4 + Figure 6).

Layer 1 — :class:`UserHistoryBolt`, grouped by user id: keeps each user's
behaviour history, turns actions into rating and co-rating deltas.

Layer 2 — :class:`ItemCountBolt` (grouped by item) and
:class:`PairCountBolt` (grouped by item pair): incrementally maintain
itemCount and pairCount (Eq 6–8); the pair bolt recomputes the pair's
similarity (Eq 5) and runs the Hoeffding pruning check (Algorithm 1).

Layer 3 — :class:`SimListBolt`, grouped by item: owns each item's
similar-items list, its entry threshold, and its pruned-partner set, so
every piece of state has exactly one writing task.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.algorithms.demographic import GLOBAL_GROUP
from repro.algorithms.itemcf.history import apply_action
from repro.algorithms.itemcf.pruning import hoeffding_epsilon
from repro.algorithms.itemcf.similarity import SimilarItemsList
from repro.algorithms.ratings import ActionWeights, DEFAULT_ACTION_WEIGHTS
from repro.storm.reliability import ExactlyOnceBolt
from repro.storm.tuples import StormTuple
from repro.tdstore.client import TDStoreClient
from repro.topology.state import CachedStore, Combiner, StateKeys
from repro.types import UserProfile
from repro.utils.clock import SECONDS_PER_HOUR

if TYPE_CHECKING:
    from repro.serving.invalidation import InvalidationBus

ClientFactory = Callable[[], TDStoreClient]
ProfileLookup = Callable[[str], "UserProfile | None"]


class UserHistoryBolt(ExactlyOnceBolt):
    """Grouped by user: histories, rating deltas, recent-k, group deltas.

    Emits:

    * ``item_delta`` (item, delta) — grouped by item downstream.
    * ``pair_delta`` (pair_a, pair_b, item, delta) — grouped by the pair.
    * ``group_delta`` (group, item, delta) — the multi-hash hop of
      Section 5.4: demographic counting is re-keyed by group id here so a
      single downstream task owns each group's counters.

    The history update is a read-modify-write, not a delta, so beyond
    the dedup ledger it follows the commit protocol for RMW updates:
    probe the store journal (``op_seen``), compute the update on copies,
    emit the deltas, apply the idempotent side writes, and only then
    commit the new history atomically with the journal entry
    (``put_once``). A replay after a task kill wiped the ledger is
    skipped by the probe; a replay after a failure *mid-update* finds no
    journal entry, re-executes from the unchanged history and re-emits —
    the derived op ids dedup downstream any emission whose first
    delivery already got through.

    With ``bus`` set, a ``("user", user)`` invalidation is published
    after the commit lands — never before, so a cache acting on it
    re-reads post-commit state — telling the serving caches this user's
    history/recent state changed. The dedup early-return does not
    publish: the first delivery already did.
    """

    def __init__(
        self,
        client_factory: ClientFactory,
        weights: ActionWeights = DEFAULT_ACTION_WEIGHTS,
        linked_time: float = 6 * SECONDS_PER_HOUR,
        recent_k: int = 10,
        group_of: Callable[[str], str] | None = None,
        bus: "InvalidationBus | None" = None,
    ):
        super().__init__()
        self._client_factory = client_factory
        self._weights = weights
        self._linked_time = linked_time
        self._recent_k = recent_k
        self._group_of = group_of
        self._bus = bus

    def declare_outputs(self, declarer):
        declarer.declare(("item", "delta"), "item_delta")
        declarer.declare(("pair_a", "pair_b", "item", "delta"), "pair_delta")
        declarer.declare(("group", "item", "delta"), "group_delta")

    def prepare(self, context, collector):
        super().prepare(context, collector)
        self._store = CachedStore(self._client_factory())

    def process(self, tup: StormTuple):
        user, item = tup["user"], tup["item"]
        hist_key = StateKeys.history(user)
        op_id = tup.op_id
        if op_id is not None and self._store.op_seen(hist_key, op_id):
            return
        now = tup["timestamp"]
        weight = self._weights.weight(tup["action"])
        # work on a copy: the cached history must stay at the committed
        # state until put_once lands, so a failure below leaves nothing
        # half-applied for the replay to read
        history = dict(self._store.get(hist_key, None) or {})
        # pruned sets are owned by SimListBolt tasks: read fresh (§5.2)
        pruned = self._store.get_fresh(StateKeys.pruned(item), None) or set()
        update = apply_action(
            history, item, weight, now, self._linked_time, pruned
        )
        # emissions precede the commit: a replay after a partial failure
        # recomputes the same deltas from the unchanged history, and the
        # derived op ids dedup whatever already reached downstream
        if update.rating_increased:
            self.collector.emit(
                (item, update.item_delta), stream_id="item_delta"
            )
            for other, delta in update.pair_deltas:
                first, second = (item, other) if item < other else (other, item)
                self.collector.emit(
                    (first, second, item, delta), stream_id="pair_delta"
                )
            if self._group_of is not None:
                group = self._group_of(user)
                for target in {group, GLOBAL_GROUP}:
                    self.collector.emit(
                        (target, item, update.item_delta),
                        stream_id="group_delta",
                    )
        # idempotent under re-execution (same inputs, same result)
        self._update_recent(user, item, update.new_rating, now)
        if op_id is not None:
            self._store.put_once(hist_key, op_id, history)
        else:
            self._store.put(hist_key, history)
        if self._bus is not None:
            self._bus.publish("user", user)

    def _update_recent(self, user: str, item: str, rating: float, now: float):
        recent = self._store.get(StateKeys.recent(user), None) or []
        recent = [entry for entry in recent if entry[0] != item]
        recent.insert(0, (item, rating, now))
        del recent[self._recent_k :]
        self._store.put(StateKeys.recent(user), recent)


class ItemCountBolt(ExactlyOnceBolt):
    """Grouped by item: maintains itemCount (Eq 6) in TDStore.

    With ``use_combiner`` the deltas buffer in a combiner map and flush
    on tick — the Section 5.3 optimization for hot items; without it,
    every delta is written through immediately (exact, more writes).

    Write-through deltas go through the store's op journal
    (:meth:`CachedStore.apply`) so they are idempotent under replay even
    when the dedup ledger did not survive a task kill; combiner-buffered
    deltas rely on the ledger alone — a delta enters the buffer exactly
    once, and the buffer itself is checkpointed.
    """

    def __init__(self, client_factory: ClientFactory, use_combiner: bool = False):
        super().__init__()
        self._client_factory = client_factory
        self._use_combiner = use_combiner

    def prepare(self, context, collector):
        super().prepare(context, collector)
        self._store = CachedStore(self._client_factory())
        self._combiner = Combiner(self._store, "add") if self._use_combiner else None

    def process(self, tup: StormTuple):
        key = StateKeys.item_count(tup["item"])
        if self._combiner is not None:
            self._combiner.add(key, tup["delta"])
        elif tup.op_id is not None:
            self._store.apply(key, tup.op_id, tup["delta"])
        else:
            self._store.incr(key, tup["delta"])

    def tick(self, now: float):
        if self._combiner is not None:
            self._combiner.flush()

    @property
    def combiner(self) -> Combiner | None:
        return self._combiner

    def snapshot_app_state(self) -> dict | None:
        if self._combiner is None:
            return None  # write-through: everything already in TDStore
        return {"combiner": self._combiner.snapshot_buffer()}

    def restore_app_state(self, state: dict):
        if self._combiner is not None:
            self._combiner.restore_buffer(state["combiner"])


class PairCountBolt(ExactlyOnceBolt):
    """Grouped by (pair_a, pair_b): pairCount, similarity, pruning check.

    Emits ``sim_update`` (item, other, similarity) once per direction so
    the per-item SimListBolt tasks can refresh their lists, and ``prune``
    (item, other) when Algorithm 1's bound fires.
    """

    def __init__(
        self,
        client_factory: ClientFactory,
        pruning_delta: float | None = None,
    ):
        super().__init__()
        self._client_factory = client_factory
        self._pruning_delta = pruning_delta
        self.pair_updates = 0
        self.prunes = 0

    def declare_outputs(self, declarer):
        declarer.declare(("item", "other", "similarity"), "sim_update")
        declarer.declare(("item", "other"), "prune")

    def prepare(self, context, collector):
        super().prepare(context, collector)
        self._store = CachedStore(self._client_factory())
        self._observations: dict[tuple[str, str], int] = {}

    def snapshot_app_state(self) -> dict | None:
        # the Hoeffding observation counters (Algorithm 1's n) live only
        # in this task's memory; losing them resets pruning confidence
        return {"observations": dict(self._observations)}

    def restore_app_state(self, state: dict):
        self._observations = dict(state["observations"])

    def process(self, tup: StormTuple):
        a, b, delta = tup["pair_a"], tup["pair_b"], tup["delta"]
        key = StateKeys.pair_count(a, b)
        if delta != 0.0 and tup.op_id is not None:
            pair_count, __ = self._store.apply(key, tup.op_id, delta)
        elif delta != 0.0:
            pair_count = self._store.incr(key, delta)
        else:
            pair_count = self._store.get(key, 0.0)
        similarity = self._similarity(a, b, pair_count)
        self.pair_updates += 1
        self.collector.emit((a, b, similarity), stream_id="sim_update")
        self.collector.emit((b, a, similarity), stream_id="sim_update")
        if self._pruning_delta is not None:
            self._maybe_prune(a, b, similarity)

    def _similarity(self, a: str, b: str, pair_count: float) -> float:
        """Equation 5 from the live counts (itemCounts owned elsewhere)."""
        if pair_count <= 0.0:
            return 0.0
        count_a = self._store.get_fresh(StateKeys.item_count(a), 0.0)
        count_b = self._store.get_fresh(StateKeys.item_count(b), 0.0)
        denominator = (count_a**0.5) * (count_b**0.5)
        if denominator <= 0.0:
            return 0.0
        return pair_count / denominator

    def _maybe_prune(self, a: str, b: str, similarity: float):
        pair = (a, b)
        n = self._observations.get(pair, 0) + 1
        self._observations[pair] = n
        threshold_a = self._store.get_fresh(StateKeys.threshold(a), 0.0)
        threshold_b = self._store.get_fresh(StateKeys.threshold(b), 0.0)
        t = min(threshold_a, threshold_b)
        if t <= 0.0:
            return
        eps = hoeffding_epsilon(n, self._pruning_delta)
        if eps < t - similarity:
            self.prunes += 1
            self._observations.pop(pair, None)
            self.collector.emit((a, b), stream_id="prune")
            self.collector.emit((b, a), stream_id="prune")


class SimListBolt(ExactlyOnceBolt):
    """Grouped by item: owns simlist, threshold, and pruned set per item.

    Subscribes to both ``sim_update`` and ``prune`` streams (keyed by the
    ``item`` field in each, so one task owns all state for an item).

    Each identified update probes the item's list journal (``op_seen``),
    rebuilds the list from the stored payload, writes the derived state
    (threshold, pruned set — idempotent, re-executable), and commits the
    new list payload together with the journal entry (``put_once``) as
    the final step. The journal replicates with the value, so a replayed
    ``sim_update`` is a no-op even after the in-memory ledger died with
    its task — and a failure mid-update leaves no journal entry, so the
    replay re-runs the whole update instead of losing it.

    With ``bus`` set, an ``("item", item)`` invalidation is published
    after the list commit so serving caches drop answers computed from
    the old similar-items list.
    """

    def __init__(
        self,
        client_factory: ClientFactory,
        k: int = 20,
        bus: "InvalidationBus | None" = None,
    ):
        super().__init__()
        self._client_factory = client_factory
        self._k = k
        self._bus = bus

    def prepare(self, context, collector):
        super().prepare(context, collector)
        self._store = CachedStore(self._client_factory())

    def _load_list(self, item: str) -> SimilarItemsList:
        stored = self._store.get(StateKeys.sim_list(item), None)
        lst = SimilarItemsList(self._k)
        if stored:
            for other, sim in stored.items():
                lst.update(other, sim)
        return lst

    def _save_list(self, item: str, lst: SimilarItemsList, op_id: "str | None"):
        key = StateKeys.sim_list(item)
        payload = dict(lst.top())
        # derived state first: if the commit below never lands, the
        # replay recomputes and rewrites the same threshold
        self._store.put(StateKeys.threshold(item), lst.threshold())
        if op_id is not None:
            self._store.put_once(key, op_id, payload)
        else:
            self._store.put(key, payload)
        if self._bus is not None:
            self._bus.publish("item", item)

    def process(self, tup: StormTuple):
        if tup.stream_id == "sim_update":
            item, other, sim = tup["item"], tup["other"], tup["similarity"]
            if tup.op_id is not None and self._store.op_seen(
                StateKeys.sim_list(item), tup.op_id
            ):
                return
            lst = self._load_list(item)
            lst.update(other, sim)
            self._save_list(item, lst, tup.op_id)
        elif tup.stream_id == "prune":
            item, other = tup["item"], tup["other"]
            if tup.op_id is not None and self._store.op_seen(
                StateKeys.sim_list(item), tup.op_id
            ):
                return
            # copy before mutating: the cached set must stay clean if a
            # write below fails and the update re-executes
            pruned = set(self._store.get(StateKeys.pruned(item), None) or ())
            pruned.add(other)
            self._store.put(StateKeys.pruned(item), pruned)
            lst = self._load_list(item)
            lst.remove(other)
            self._save_list(item, lst, tup.op_id)
