"""Application-common units: Pretreatment, Filter, ResultStorage.

These are the blue-grey rectangles of Figure 6 — the steps every
application's topology shares.
"""

from __future__ import annotations

from typing import Callable

from repro.algorithms.ratings import ActionWeights, DEFAULT_ACTION_WEIGHTS
from repro.storm.component import Bolt
from repro.storm.tuples import StormTuple
from repro.tdstore.client import TDStoreClient
from repro.topology.spouts import USER_ACTION_FIELDS
from repro.topology.state import CachedStore, StateKeys


class PretreatmentBolt(Bolt):
    """Parses raw messages, drops unqualified tuples (preprocessing layer).

    Input: ``raw_action`` tuples carrying a ``payload`` dict.
    Output: validated ``user_action`` tuples.
    """

    REQUIRED = ("user", "item", "action", "timestamp")

    def __init__(self, weights: ActionWeights = DEFAULT_ACTION_WEIGHTS):
        self._weights = weights
        self.dropped = 0

    def declare_outputs(self, declarer):
        declarer.declare(USER_ACTION_FIELDS, "user_action")

    def execute(self, tup: StormTuple):
        payload = tup["payload"]
        if not isinstance(payload, dict):
            self.dropped += 1
            return
        if any(field not in payload for field in self.REQUIRED):
            self.dropped += 1
            return
        action = payload["action"]
        if not self._weights.knows(action):
            self.dropped += 1
            return
        timestamp = payload["timestamp"]
        if not isinstance(timestamp, (int, float)) or timestamp < 0:
            self.dropped += 1
            return
        self.collector.emit(
            (str(payload["user"]), str(payload["item"]), action, float(timestamp)),
            stream_id="user_action",
        )


class FilterBolt(Bolt):
    """Application-specific filtering (storage layer of Figure 6).

    Passes through tuples for which ``predicate`` holds; the predicate
    receives the tuple's field dict. Applications configure e.g. price
    ranges or category restrictions here.
    """

    def __init__(
        self,
        predicate: Callable[[dict], bool],
        output_stream: str,
        output_fields: tuple[str, ...],
    ):
        self._predicate = predicate
        self._output_stream = output_stream
        self._output_fields = output_fields
        self.passed = 0
        self.filtered = 0

    def declare_outputs(self, declarer):
        declarer.declare(self._output_fields, self._output_stream)

    def execute(self, tup: StormTuple):
        row = tup.as_dict()
        if self._predicate(row):
            self.passed += 1
            self.collector.emit(
                tuple(row[field] for field in self._output_fields),
                stream_id=self._output_stream,
            )
        else:
            self.filtered += 1


class ResultStorageBolt(Bolt):
    """Writes computation results into TDStore for the recommender engine.

    ``key_fields`` select the tuple fields forming the result key;
    ``value_fields`` the stored value (a dict). Results live under
    ``result:{kind}:{key}``.
    """

    def __init__(
        self,
        client_factory: Callable[[], TDStoreClient],
        kind: str,
        key_fields: tuple[str, ...],
        value_fields: tuple[str, ...],
    ):
        self._client_factory = client_factory
        self._kind = kind
        self._key_fields = key_fields
        self._value_fields = value_fields
        self.stored = 0

    def prepare(self, context, collector):
        super().prepare(context, collector)
        self._store = CachedStore(self._client_factory())

    def execute(self, tup: StormTuple):
        row = tup.as_dict()
        key = "|".join(str(row[field]) for field in self._key_fields)
        value = {field: row[field] for field in self._value_fields}
        self._store.put(StateKeys.result(self._kind, key), value)
        self.stored += 1
