"""Demographic group counting — the target of the multi-hash hop (§5.4).

Actions are first keyed by user (UserHistoryBolt), which resolves the
user's demographic group and re-emits the rating delta keyed by group
id; this bolt, grouped by group id, is then the *only* writer of each
group's hot-item counters — the write conflict the plain design would
have is gone without any locking.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.storm.reliability import ExactlyOnceBolt
from repro.storm.tuples import StormTuple
from repro.tdstore.client import TDStoreClient
from repro.topology.state import CachedStore, StateKeys

if TYPE_CHECKING:
    from repro.serving.invalidation import InvalidationBus


class GroupCountBolt(ExactlyOnceBolt):
    """Grouped by demographic group id: windowless hot-item counters.

    ``decay`` is applied once per elapsed ``decay_interval`` of simulated
    time, geometrically forgetting old engagement — the topology-side
    stand-in for the sliding window; ``max_items`` bounds each group's
    counter map by evicting the weakest entries. The counter map is a
    read-modify-write, so each identified delta probes the group key's
    journal (``op_seen``), folds into a copy, and commits the new map
    atomically with the journal entry (``put_once``) — a failure before
    the commit leaves no journal entry, so the replay redoes the whole
    fold instead of losing the delta.

    With ``bus`` set, a ``("group", group)`` invalidation is published
    after each counter commit (and after each decay write), so serving
    caches drop hot lists and complemented answers built on the old
    counters.
    """

    def __init__(
        self,
        client_factory: Callable[[], TDStoreClient],
        decay: float = 0.5,
        decay_interval: float = 1800.0,
        max_items: int = 200,
        bus: "InvalidationBus | None" = None,
    ):
        super().__init__()
        self._client_factory = client_factory
        self._decay = decay
        self._decay_interval = decay_interval
        self._max_items = max_items
        self._bus = bus
        self._groups_seen: set[str] = set()
        self._last_decay: float | None = None

    def prepare(self, context, collector):
        super().prepare(context, collector)
        self._store = CachedStore(self._client_factory())

    def process(self, tup: StormTuple):
        group, item, delta = tup["group"], tup["item"], tup["delta"]
        key = StateKeys.hot(group)
        op_id = tup.op_id
        if op_id is not None and self._store.op_seen(key, op_id):
            self._groups_seen.add(group)
            return
        # fold into a copy so a failed commit leaves the cache clean
        hot = dict(self._store.get(key, None) or {})
        hot[item] = hot.get(item, 0.0) + delta
        if len(hot) > self._max_items:
            ranked = sorted(hot.items(), key=lambda kv: (-kv[1], kv[0]))
            hot = dict(ranked[: self._max_items])
        if op_id is not None:
            self._store.put_once(key, op_id, hot)
        else:
            self._store.put(key, hot)
        self._groups_seen.add(group)
        if self._bus is not None:
            self._bus.publish("group", group)

    def tick(self, now: float):
        if self._last_decay is None:
            self._last_decay = now
            return
        rounds = int((now - self._last_decay) // self._decay_interval)
        if rounds <= 0:
            return
        self._last_decay += rounds * self._decay_interval
        factor = self._decay**rounds
        for group in self._groups_seen:
            key = StateKeys.hot(group)
            hot = self._store.get(key, None)
            if not hot:
                continue
            decayed = {
                item: value * factor
                for item, value in hot.items()
                if value * factor > 1e-6
            }
            self._store.put(key, decayed)
            if self._bus is not None:
                self._bus.publish("group", group)
