"""Situational CTR units — the ctrStore / ctrBolt pair of Figure 7.

:class:`CtrStoreBolt` (grouped by item) maintains windowless impression
and click counters per (item, situation level); :class:`CtrBolt`
recomputes the smoothed CTR for the touched (item, situation) pairs and
hands them to ResultStorage, reproducing the example topology of
Figure 7: spout -> pretreatment -> ctrStore -> ctrBolt -> resultStorage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.algorithms.ctr import BACKOFF_LEVELS, situation_key
from repro.algorithms.demographic import age_band
from repro.storm.reliability import ExactlyOnceBolt
from repro.storm.tuples import StormTuple
from repro.tdstore.client import TDStoreClient
from repro.topology.state import CachedStore, StateKeys
from repro.types import UserProfile

if TYPE_CHECKING:
    from repro.serving.invalidation import InvalidationBus

ClientFactory = Callable[[], TDStoreClient]
ProfileLookup = Callable[[str], "UserProfile | None"]


def profile_attributes(profile: UserProfile | None) -> dict[str, str | None]:
    if profile is None:
        return {"region": None, "gender": None, "age": None}
    return {
        "region": profile.region,
        "gender": profile.gender,
        "age": age_band(profile.age),
    }


class CtrStoreBolt(ExactlyOnceBolt):
    """Grouped by item: impression/click counters per situation level.

    With ``session_seconds``/``window_sessions`` set, counters are
    bucketed by time session so CtrBolt can answer the introduction's
    "during the last ten seconds" query; without them, counters
    accumulate over the topic's lifetime.

    One input action increments up to one counter per situation level;
    each increment carries the action's op id suffixed with its level so
    every single one is independently idempotent under replay.
    """

    def __init__(
        self,
        client_factory: ClientFactory,
        profiles: ProfileLookup,
        session_seconds: float | None = None,
        window_sessions: int | None = None,
    ):
        if (session_seconds is None) != (window_sessions is None):
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "session_seconds and window_sessions must be set together"
            )
        super().__init__()
        self._client_factory = client_factory
        self._profiles = profiles
        self._session_seconds = session_seconds
        self._window_sessions = window_sessions

    def declare_outputs(self, declarer):
        declarer.declare(("item", "situation", "session"), "ctr_update")

    def prepare(self, context, collector):
        super().prepare(context, collector)
        self._store = CachedStore(self._client_factory())

    def process(self, tup: StormTuple):
        action = tup["action"]
        if action not in ("impression", "click"):
            return
        item = tup["item"]
        session = -1
        if self._session_seconds is not None:
            session = int(tup["timestamp"] // self._session_seconds)
        attributes = profile_attributes(self._profiles(tup["user"]))
        for level in BACKOFF_LEVELS:
            situation = situation_key(attributes, level)
            if situation is None:
                continue
            if session >= 0:
                if action == "impression":
                    key = StateKeys.impressions_session(item, situation, session)
                else:
                    key = StateKeys.clicks_session(item, situation, session)
            else:
                if action == "impression":
                    key = StateKeys.impressions(item, situation)
                else:
                    key = StateKeys.clicks(item, situation)
            if tup.op_id is not None:
                self._store.apply(key, f"{tup.op_id}#{level}", 1.0)
            else:
                self._store.incr(key, 1.0)
            self.collector.emit((item, situation, session),
                                stream_id="ctr_update")


class CtrBolt(ExactlyOnceBolt):
    """Grouped by item: recomputes smoothed CTR for updated situations.

    ``window_sessions`` must match the upstream CtrStoreBolt: when set,
    the CTR sums the last W session buckets ending at the update's
    session — a sliding-window CTR.

    The recompute-and-overwrite is naturally idempotent; the dedup
    ledger still suppresses replays so a stale recompute cannot clobber
    a newer CTR value.

    With ``bus`` set, a ``("ctr", item)`` invalidation is published
    after the CTR value is written, so serving caches holding answers
    ranked by the old value drop them.
    """

    def __init__(
        self,
        client_factory: ClientFactory,
        prior_ctr: float = 0.02,
        prior_strength: float = 20.0,
        window_sessions: int | None = None,
        bus: "InvalidationBus | None" = None,
    ):
        super().__init__()
        self._client_factory = client_factory
        self._prior_ctr = prior_ctr
        self._prior_strength = prior_strength
        self._window_sessions = window_sessions
        self._bus = bus

    def declare_outputs(self, declarer):
        declarer.declare(("item", "situation", "ctr"), "ctr_value")

    def prepare(self, context, collector):
        super().prepare(context, collector)
        self._store = CachedStore(self._client_factory())

    def _counts(self, item: str, situation: str, session: int) -> tuple[float, float]:
        if session < 0 or self._window_sessions is None:
            return (
                self._store.get_fresh(StateKeys.impressions(item, situation), 0.0),
                self._store.get_fresh(StateKeys.clicks(item, situation), 0.0),
            )
        impressions = 0.0
        clicks = 0.0
        for bucket in range(session - self._window_sessions + 1, session + 1):
            impressions += self._store.get_fresh(
                StateKeys.impressions_session(item, situation, bucket), 0.0
            )
            clicks += self._store.get_fresh(
                StateKeys.clicks_session(item, situation, bucket), 0.0
            )
        return impressions, clicks

    def process(self, tup: StormTuple):
        item, situation = tup["item"], tup["situation"]
        session = tup["session"]
        impressions, clicks = self._counts(item, situation, session)
        ctr = (clicks + self._prior_ctr * self._prior_strength) / (
            impressions + self._prior_strength
        )
        self._store.put(StateKeys.ctr(item, situation), ctr)
        if self._bus is not None:
            self._bus.publish("ctr", item)
        self.collector.emit((item, situation, ctr), stream_id="ctr_value")
