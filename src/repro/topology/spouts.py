"""Spouts feeding user actions into TencentRec topologies.

:class:`TDAccessSpout` is the production path of Figure 6: it consumes a
TDAccess topic partition-parallel and emits ``user_action`` tuples.
:class:`ActionSpout` feeds a plain list of :class:`UserAction` — handy
for tests and examples that do not need the pub/sub layer.

Both advance the shared simulated clock to each event's timestamp so
tick-driven machinery (combiner flushes, hot-item decay) fires at the
right simulated times.
"""

from __future__ import annotations

from typing import Iterable

from repro.storm.component import Spout
from repro.tdaccess.consumer import Consumer
from repro.types import UserAction
from repro.utils.clock import SimClock

USER_ACTION_FIELDS = ("user", "item", "action", "timestamp")


class ActionSpout(Spout):
    """Emits a fixed sequence of user actions, one per poll."""

    def __init__(self, actions: Iterable[UserAction], clock: SimClock):
        self._actions = list(actions)
        self._clock = clock
        self._cursor = 0

    def declare_outputs(self, declarer):
        declarer.declare(USER_ACTION_FIELDS, "user_action")

    def next_tuple(self) -> bool:
        if self._cursor >= len(self._actions):
            return False
        action = self._actions[self._cursor]
        op_id = f"actions@{self._cursor}"
        self._cursor += 1
        self._clock.advance_to(action.timestamp)
        self.collector.emit(
            (action.user_id, action.item_id, action.action, action.timestamp),
            stream_id="user_action",
            op_id=op_id,
        )
        return True


class TDAccessSpout(Spout):
    """Consumes raw action payloads from a TDAccess topic.

    Message values are dicts with ``user``/``item``/``action``/
    ``timestamp`` keys (the raw-message format Pretreatment parses);
    malformed payloads are passed through for Pretreatment to filter,
    keeping the spout dumb like the paper's.
    """

    def __init__(self, consumer: Consumer, clock: SimClock, batch_size: int = 64):
        self._consumer = consumer
        self._clock = clock
        self._batch_size = batch_size

    def declare_outputs(self, declarer):
        declarer.declare(("payload",), "raw_action")

    def next_tuple(self) -> bool:
        batch = self._consumer.poll(self._batch_size)
        if not batch:
            return False
        for message in batch:
            self._clock.advance_to(message.timestamp)
            self.collector.emit(
                (message.value,),
                stream_id="raw_action",
                op_id=f"{message.topic}/{message.partition}@{message.offset}",
            )
        return True
