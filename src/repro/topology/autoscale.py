"""Automatic parallelism selection (the paper's first future-work item).

Section 7: "the parallelism of the spouts and bolts in Storm topology is
set manually at present. It is desirable for TencentRec to set the
parallelism automatically according to the data size of specific
applications." This module implements that: given a workload profile
(events per second, key cardinalities) and per-task capacity, it sizes
each layer of the CF topology so no task exceeds its budget, while
capping by key cardinality — more tasks than distinct keys would idle
under a fields grouping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.types import UserAction


@dataclass(frozen=True)
class WorkloadProfile:
    """What the auto-scaler needs to know about an application's stream."""

    events_per_second: float
    distinct_users: int
    distinct_items: int
    # pairs generated per event: roughly the user's linked-history size
    pairs_per_event: float = 5.0

    def __post_init__(self):
        if self.events_per_second <= 0:
            raise ConfigurationError(
                f"events_per_second must be positive: {self.events_per_second}"
            )
        if self.distinct_users <= 0 or self.distinct_items <= 0:
            raise ConfigurationError("key cardinalities must be positive")
        if self.pairs_per_event < 0:
            raise ConfigurationError(
                f"pairs_per_event must be >= 0: {self.pairs_per_event}"
            )

    @classmethod
    def from_sample(
        cls, actions: list[UserAction], pairs_per_event: float = 5.0
    ) -> "WorkloadProfile":
        """Profile a stream sample (what a deployed auto-scaler would do
        from the last monitoring window)."""
        if len(actions) < 2:
            raise ConfigurationError("need at least two sampled actions")
        span = actions[-1].timestamp - actions[0].timestamp
        rate = len(actions) / span if span > 0 else float(len(actions))
        return cls(
            events_per_second=max(rate, 1e-6),
            distinct_users=len({a.user_id for a in actions}),
            distinct_items=len({a.item_id for a in actions}),
            pairs_per_event=pairs_per_event,
        )


@dataclass(frozen=True)
class ParallelismPlan:
    """Chosen task counts per CF-topology layer."""

    user_history: int
    item_count: int
    pair_count: int
    sim_list: int

    def as_dict(self) -> dict[str, int]:
        return {
            "userHistory": self.user_history,
            "itemCount": self.item_count,
            "pairCount": self.pair_count,
            "simList": self.sim_list,
        }


def plan_parallelism(
    profile: WorkloadProfile,
    events_per_task_per_second: float = 500.0,
    max_parallelism: int = 64,
) -> ParallelismPlan:
    """Size every layer to its own tuple rate.

    UserHistory sees one tuple per event; ItemCount one per rating
    increase (bounded by one per event); PairCount and SimList see
    ``pairs_per_event`` (SimList twice — one update per direction). Each
    layer is additionally capped by its grouping-key cardinality and by
    ``max_parallelism``.
    """
    if events_per_task_per_second <= 0:
        raise ConfigurationError(
            "events_per_task_per_second must be positive: "
            f"{events_per_task_per_second}"
        )
    if max_parallelism < 1:
        raise ConfigurationError(
            f"max_parallelism must be >= 1: {max_parallelism}"
        )

    def size(rate: float, key_cardinality: int) -> int:
        tasks = math.ceil(rate / events_per_task_per_second)
        return max(1, min(tasks, key_cardinality, max_parallelism))

    events = profile.events_per_second
    pair_rate = events * profile.pairs_per_event
    # distinct pair keys are bounded by items^2 but realistically by the
    # co-engagement graph; items is a safe conservative cap
    pair_cardinality = max(1, profile.distinct_items)
    return ParallelismPlan(
        user_history=size(events, profile.distinct_users),
        item_count=size(events, profile.distinct_items),
        pair_count=size(pair_rate, pair_cardinality),
        sim_list=size(2.0 * pair_rate, profile.distinct_items),
    )
