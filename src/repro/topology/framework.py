"""Topology assembly for TencentRec applications (Figures 6 and 7).

``build_cf_topology`` wires the full multi-layer CF pipeline (with the
demographic side-channel); ``build_ctr_topology`` reproduces the
situational-CTR example of Figure 7. ``unit_registry`` exposes the same
units by their class names for the XML configuration path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.algorithms.ratings import ActionWeights, DEFAULT_ACTION_WEIGHTS
from repro.storm.grouping import FieldsGrouping, ShuffleGrouping
from repro.storm.topology import Topology, TopologyBuilder
from repro.tdstore.client import TDStoreClient
from repro.topology.bolts_ar import ARCountBolt, ARSessionBolt
from repro.topology.bolts_cb import CBProfileBolt, ItemInfoBolt
from repro.topology.bolts_cf import (
    ItemCountBolt,
    PairCountBolt,
    SimListBolt,
    UserHistoryBolt,
)
from repro.topology.bolts_common import PretreatmentBolt, ResultStorageBolt
from repro.topology.bolts_ctr import CtrBolt, CtrStoreBolt
from repro.topology.bolts_db import GroupCountBolt
from repro.topology.spouts import ActionSpout, TDAccessSpout
from repro.types import UserAction, UserProfile
from repro.utils.clock import SECONDS_PER_HOUR, SimClock

if TYPE_CHECKING:
    from repro.retrieval.bolts import RetrievalConfig
    from repro.serving.invalidation import InvalidationBus

ClientFactory = Callable[[], TDStoreClient]
ProfileLookup = Callable[[str], "UserProfile | None"]

CTR_ACTION_WEIGHTS = ActionWeights.of(impression=0.1, click=2.0)


@dataclass
class CFTopologyConfig:
    """Tuning knobs for the CF topology.

    ``parallelism`` applies to the keyed layers; correctness never
    depends on it (fields grouping pins each key to one task), only
    throughput does — the paper's scalability claim, which the
    throughput bench exercises by sweeping this value.

    ``invalidation_bus`` wires the stateful bolts to the serving
    caches: each publishes a touched-key notification after its commit
    point, and the serving layer drops the answers built on that state.

    ``retrieval`` rides the embedding/VQ pipeline alongside the CF
    layers off the same ``user_action`` stream; ``None`` (the default)
    builds the classic CF-only topology.
    """

    weights: ActionWeights = DEFAULT_ACTION_WEIGHTS
    k: int = 20
    linked_time: float = 6 * SECONDS_PER_HOUR
    recent_k: int = 10
    pruning_delta: float | None = None
    use_combiner: bool = False
    parallelism: int = 2
    group_of: Callable[[str], str] | None = None
    invalidation_bus: "InvalidationBus | None" = None
    retrieval: "RetrievalConfig | None" = None


def build_cf_topology(
    name: str,
    actions: Iterable[UserAction],
    clock: SimClock,
    client_factory: ClientFactory,
    config: CFTopologyConfig | None = None,
) -> Topology:
    """The multi-layer item-based CF topology of Figure 4 / Figure 6."""
    cfg = config if config is not None else CFTopologyConfig()
    builder = TopologyBuilder(name)
    builder.add_spout("spout", lambda: ActionSpout(actions, clock))
    builder.add_bolt(
        "userHistory",
        lambda: UserHistoryBolt(
            client_factory,
            weights=cfg.weights,
            linked_time=cfg.linked_time,
            recent_k=cfg.recent_k,
            group_of=cfg.group_of,
            bus=cfg.invalidation_bus,
        ),
        parallelism=cfg.parallelism,
    ).grouping("spout", FieldsGrouping(["user"]), "user_action")
    # registration order matters for exactness: itemCount tasks drain
    # before pairCount tasks each round, so Eq 5 sees fresh itemCounts
    builder.add_bolt(
        "itemCount",
        lambda: ItemCountBolt(client_factory, use_combiner=cfg.use_combiner),
        parallelism=cfg.parallelism,
    ).grouping("userHistory", FieldsGrouping(["item"]), "item_delta")
    builder.add_bolt(
        "pairCount",
        lambda: PairCountBolt(client_factory, pruning_delta=cfg.pruning_delta),
        parallelism=cfg.parallelism,
    ).grouping(
        "userHistory", FieldsGrouping(["pair_a", "pair_b"]), "pair_delta"
    )
    builder.add_bolt(
        "simList",
        lambda: SimListBolt(client_factory, k=cfg.k, bus=cfg.invalidation_bus),
        parallelism=cfg.parallelism,
    ).grouping("pairCount", FieldsGrouping(["item"]), "sim_update").grouping(
        "pairCount", FieldsGrouping(["item"]), "prune"
    )
    if cfg.group_of is not None:
        builder.add_bolt(
            "groupCount",
            lambda: GroupCountBolt(client_factory, bus=cfg.invalidation_bus),
            parallelism=cfg.parallelism,
        ).grouping("userHistory", FieldsGrouping(["group"]), "group_delta")
    if cfg.retrieval is not None:
        add_retrieval_bolts(builder, "spout", client_factory, cfg.retrieval)
    return builder.build()


def add_retrieval_bolts(
    builder: TopologyBuilder,
    action_source: str,
    client_factory: ClientFactory,
    config: "RetrievalConfig | None" = None,
    weights: ActionWeights = DEFAULT_ACTION_WEIGHTS,
):
    """Attach the embedding/VQ pipeline to an existing builder.

    ``action_source`` is any component emitting a ``user_action``
    stream (the spout here, the pretreatment bolt in the harness
    factories). Registered after the CF layers so adding retrieval
    never shifts their drain order — existing CF state stays
    byte-identical with retrieval on or off.
    """
    # imported here: retrieval sits above the topology state layer, so
    # a module-level import would be circular through the package root
    from repro.retrieval.bolts import (
        EmbeddingPairBolt,
        EmbeddingUpdateBolt,
        RetrievalConfig,
        VQAssignBolt,
    )

    rcfg = config if config is not None else RetrievalConfig()
    builder.add_bolt(
        "embPair",
        lambda: EmbeddingPairBolt(
            client_factory,
            weights=weights,
            co_window=rcfg.co_window,
            co_k=rcfg.co_k,
        ),
        parallelism=rcfg.parallelism,
    ).grouping(action_source, FieldsGrouping(["user"]), "user_action")
    builder.add_bolt(
        "embUpdate",
        lambda: EmbeddingUpdateBolt(client_factory, config=rcfg.embedding),
        parallelism=rcfg.parallelism,
    ).grouping("embPair", FieldsGrouping(["item"]), "emb_pair")
    # parallelism 1: the VQ index's single-writer contract
    builder.add_bolt(
        "vqAssign",
        lambda: VQAssignBolt(client_factory, config=rcfg.vq),
        parallelism=1,
    ).grouping("embUpdate", FieldsGrouping(["item"]), "emb_row")
    return builder


def build_ctr_topology(
    name: str,
    raw_source: Callable[[], TDAccessSpout | ActionSpout],
    client_factory: ClientFactory,
    profiles: ProfileLookup,
    parallelism: int = 2,
    session_seconds: float | None = None,
    window_sessions: int | None = None,
    invalidation_bus: "InvalidationBus | None" = None,
) -> Topology:
    """The Figure 7 topology: spout -> pretreatment -> ctrStore -> ctrBolt
    -> resultStorage.

    With ``session_seconds``/``window_sessions``, CTR values are computed
    over a sliding window (the introduction's last-ten-seconds query);
    otherwise over the topic's lifetime.
    """
    builder = TopologyBuilder(name)
    builder.add_spout("spout", raw_source)
    builder.add_bolt(
        "pretreatment",
        lambda: PretreatmentBolt(weights=CTR_ACTION_WEIGHTS),
        parallelism=parallelism,
    ).grouping("spout", ShuffleGrouping(), "raw_action")
    builder.add_bolt(
        "ctrStore",
        lambda: CtrStoreBolt(
            client_factory, profiles,
            session_seconds=session_seconds,
            window_sessions=window_sessions,
        ),
        parallelism=parallelism,
    ).grouping("pretreatment", FieldsGrouping(["item"]), "user_action")
    builder.add_bolt(
        "ctrBolt",
        lambda: CtrBolt(
            client_factory,
            window_sessions=window_sessions,
            bus=invalidation_bus,
        ),
        parallelism=parallelism,
    ).grouping("ctrStore", FieldsGrouping(["item"]), "ctr_update")
    builder.add_bolt(
        "resultStorage",
        lambda: ResultStorageBolt(
            client_factory,
            kind="ctr",
            key_fields=("item", "situation"),
            value_fields=("ctr",),
        ),
        parallelism=1,
    ).grouping("ctrBolt", FieldsGrouping(["item"]), "ctr_value")
    return builder.build()


def build_cb_topology(
    name: str,
    actions: Iterable[UserAction],
    item_metas: Iterable[dict],
    clock: SimClock,
    client_factory: ClientFactory,
    weights: ActionWeights = DEFAULT_ACTION_WEIGHTS,
    half_life: float = 4 * 3600.0,
    parallelism: int = 2,
) -> Topology:
    """Item-info ingestion plus CB profile maintenance."""
    from repro.storm.component import Spout

    metas = list(item_metas)

    class MetaSpout(Spout):
        def __init__(self):
            self._cursor = 0

        def declare_outputs(self, declarer):
            declarer.declare(("item", "meta"), "item_meta")

        def next_tuple(self) -> bool:
            if self._cursor >= len(metas):
                return False
            meta = metas[self._cursor]
            self._cursor += 1
            self.collector.emit((meta["item"], meta), stream_id="item_meta")
            return True

    builder = TopologyBuilder(name)
    builder.add_spout("metaSpout", MetaSpout)
    builder.add_spout("spout", lambda: ActionSpout(actions, clock))
    builder.add_bolt(
        "itemInfo", lambda: ItemInfoBolt(client_factory), parallelism=parallelism
    ).grouping("metaSpout", FieldsGrouping(["item"]), "item_meta")
    builder.add_bolt(
        "cbBolt",
        lambda: CBProfileBolt(client_factory, weights=weights, half_life=half_life),
        parallelism=parallelism,
    ).grouping("spout", FieldsGrouping(["user"]), "user_action")
    return builder.build()


def build_ar_topology(
    name: str,
    actions: Iterable[UserAction],
    clock: SimClock,
    client_factory: ClientFactory,
    session_gap: float = 1800.0,
    parallelism: int = 2,
) -> Topology:
    """Session mining into AR support counters."""
    builder = TopologyBuilder(name)
    builder.add_spout("spout", lambda: ActionSpout(actions, clock))
    builder.add_bolt(
        "arSession",
        lambda: ARSessionBolt(session_gap=session_gap),
        parallelism=parallelism,
    ).grouping("spout", FieldsGrouping(["user"]), "user_action")
    builder.add_bolt(
        "arCount", lambda: ARCountBolt(client_factory), parallelism=parallelism
    ).grouping("arSession", FieldsGrouping(["item"]), "ar_item").grouping(
        "arSession", FieldsGrouping(["pair_a", "pair_b"]), "ar_pair"
    )
    return builder.build()


def unit_registry(
    clock: SimClock,
    client_factory: ClientFactory,
    actions: Iterable[UserAction] = (),
    profiles: ProfileLookup = lambda user: None,
    config: CFTopologyConfig | None = None,
) -> dict[str, Callable[[], object]]:
    """Component classes by name, for the XML topology path (Figure 7)."""
    cfg = config if config is not None else CFTopologyConfig()
    return {
        "ActionSpout": lambda: ActionSpout(actions, clock),
        "Pretreatment": lambda: PretreatmentBolt(cfg.weights),
        "UserHistory": lambda: UserHistoryBolt(
            client_factory,
            weights=cfg.weights,
            linked_time=cfg.linked_time,
            recent_k=cfg.recent_k,
            group_of=cfg.group_of,
        ),
        "ItemCount": lambda: ItemCountBolt(
            client_factory, use_combiner=cfg.use_combiner
        ),
        "PairCount": lambda: PairCountBolt(
            client_factory, pruning_delta=cfg.pruning_delta
        ),
        "SimList": lambda: SimListBolt(client_factory, k=cfg.k),
        "GroupCount": lambda: GroupCountBolt(client_factory),
        "ItemInfo": lambda: ItemInfoBolt(client_factory),
        "CBBolt": lambda: CBProfileBolt(client_factory, weights=cfg.weights),
        "ARSession": lambda: ARSessionBolt(),
        "ARCount": lambda: ARCountBolt(client_factory),
        "CtrStore": lambda: CtrStoreBolt(client_factory, profiles),
        "CtrBolt": lambda: CtrBolt(client_factory),
        "EmbeddingPair": lambda: _retrieval().EmbeddingPairBolt(
            client_factory, weights=cfg.weights
        ),
        "EmbeddingUpdate": lambda: _retrieval().EmbeddingUpdateBolt(
            client_factory
        ),
        "VQAssign": lambda: _retrieval().VQAssignBolt(client_factory),
    }


def _retrieval():
    """Late import of the retrieval bolts (see add_retrieval_bolts)."""
    import repro.retrieval.bolts as bolts

    return bolts
