"""The TencentRec topology layer (Section 5, Figures 4, 6 and 7).

Assembles the recommendation algorithms into Storm topologies backed by
TDStore: a preprocessing layer (Pretreatment), an algorithm layer split
into data statistics (UserHistory, ItemCount, PairCount, group counts,
CTR stores) and algorithm computation (CF similarity + lists, CB
profiles, AR rules, CTR prediction), and a storage layer (Filter,
ResultStorage). Includes the production optimizations: the fine-grained
cache of Section 5.2, the combiner of Section 5.3 and the multi-hash
regrouping of Section 5.4.
"""

from repro.topology.state import CachedStore, Combiner, StateKeys
from repro.topology.spouts import ActionSpout, TDAccessSpout
from repro.topology.bolts_common import PretreatmentBolt, ResultStorageBolt, FilterBolt
from repro.topology.bolts_cf import (
    UserHistoryBolt,
    ItemCountBolt,
    PairCountBolt,
    SimListBolt,
)
from repro.topology.bolts_db import GroupCountBolt
from repro.topology.bolts_cb import ItemInfoBolt, CBProfileBolt
from repro.topology.bolts_ar import ARSessionBolt, ARCountBolt
from repro.topology.bolts_ctr import CtrStoreBolt, CtrBolt
from repro.topology.framework import (
    CFTopologyConfig,
    build_cf_topology,
    build_ctr_topology,
    unit_registry,
)
from repro.topology.autoscale import (
    ParallelismPlan,
    WorkloadProfile,
    plan_parallelism,
)

__all__ = [
    "CachedStore",
    "Combiner",
    "StateKeys",
    "ActionSpout",
    "TDAccessSpout",
    "PretreatmentBolt",
    "ResultStorageBolt",
    "FilterBolt",
    "UserHistoryBolt",
    "ItemCountBolt",
    "PairCountBolt",
    "SimListBolt",
    "GroupCountBolt",
    "ItemInfoBolt",
    "CBProfileBolt",
    "ARSessionBolt",
    "ARCountBolt",
    "CtrStoreBolt",
    "CtrBolt",
    "CFTopologyConfig",
    "build_cf_topology",
    "build_ctr_topology",
    "unit_registry",
    "ParallelismPlan",
    "WorkloadProfile",
    "plan_parallelism",
]
