"""TDAccess master servers.

An active master balances partitions over data servers at the granularity
of a partition and answers routing queries from producers and consumers;
a standby master mirrors its state and takes over if the active one dies
(Figure 2).
"""

from __future__ import annotations

from repro.errors import (
    MasterUnavailableError,
    PartitionUnavailableError,
    TDAccessError,
    UnknownTopicError,
)
from repro.tdaccess.data_server import DataServer
from repro.tdaccess.log import PartitionLog


class MasterServer:
    """Routing and balancing brain of a TDAccess cluster."""

    def __init__(self, name: str = "master"):
        self.name = name
        self.alive = True
        self._servers: list[DataServer] = []
        # (topic, partition) -> data server id
        self._placement: dict[tuple[str, int], int] = {}
        self._topics: dict[str, int] = {}

    def _check_alive(self):
        """Routing queries against a dead master must fail loudly.

        Producers cache the master they resolved a topic against; after
        a failover that cached reference is a dead process, and the
        client-visible signal is this error — the cue to re-query the
        pair for the acting master and retry.
        """
        if not self.alive:
            raise MasterUnavailableError(
                f"master {self.name!r} is down; re-query the pair"
            )

    # -- cluster membership -------------------------------------------------

    def register_server(self, server: DataServer):
        if any(s.server_id == server.server_id for s in self._servers):
            raise TDAccessError(f"server id {server.server_id} already registered")
        self._servers.append(server)

    def servers(self) -> list[DataServer]:
        return list(self._servers)

    def _server_by_id(self, server_id: int) -> DataServer:
        for server in self._servers:
            if server.server_id == server_id:
                return server
        raise TDAccessError(f"unknown data server {server_id}")

    # -- topic management ---------------------------------------------------

    def create_topic(
        self,
        topic: str,
        num_partitions: int,
        segment_size: int = 1024,
        retention_segments: int | None = None,
    ):
        """Create ``topic`` and spread its partitions over the least-loaded
        servers (the paper's balancing "in the granularity of partition")."""
        if topic in self._topics:
            raise TDAccessError(f"topic {topic!r} already exists")
        if num_partitions <= 0:
            raise TDAccessError(f"need at least one partition: {num_partitions}")
        if not self._servers:
            raise TDAccessError("no data servers registered")
        self._topics[topic] = num_partitions
        for partition in range(num_partitions):
            target = min(self._servers, key=lambda s: (s.partition_count(), s.server_id))
            log = PartitionLog(topic, partition, segment_size, retention_segments)
            target.host_partition(log)
            self._placement[(topic, partition)] = target.server_id

    def num_partitions(self, topic: str) -> int:
        self._check_alive()
        try:
            return self._topics[topic]
        except KeyError:
            raise UnknownTopicError(
                f"unknown topic {topic!r}; known: {sorted(self._topics)}"
            ) from None

    def topics(self) -> list[str]:
        return sorted(self._topics)

    # -- routing ------------------------------------------------------------

    def route(self, topic: str, partition: int) -> DataServer:
        """Return the live data server hosting ``topic[partition]``."""
        self._check_alive()
        self.num_partitions(topic)  # validates topic
        server_id = self._placement.get((topic, partition))
        if server_id is None:
            raise PartitionUnavailableError(
                f"no placement for {topic}[{partition}]"
            )
        server = self._server_by_id(server_id)
        if not server.alive:
            raise PartitionUnavailableError(
                f"{topic}[{partition}] hosted on dead server {server_id}"
            )
        return server

    def partition_map(self, topic: str) -> dict[int, int]:
        """partition index -> server id, for all partitions of ``topic``."""
        count = self.num_partitions(topic)
        return {
            p: self._placement[(topic, p)]
            for p in range(count)
            if (topic, p) in self._placement
        }

    def snapshot(self) -> dict:
        """State handed to the standby for mirroring."""
        return {
            "placement": dict(self._placement),
            "topics": dict(self._topics),
            "servers": list(self._servers),
        }

    def restore(self, snapshot: dict):
        self._placement = dict(snapshot["placement"])
        self._topics = dict(snapshot["topics"])
        self._servers = list(snapshot["servers"])


class MasterPair:
    """Active/standby master pair with failover."""

    def __init__(self):
        self._active = MasterServer("active")
        self._standby = MasterServer("standby")
        self.failovers = 0
        self._active_alive = True

    @property
    def active(self) -> MasterServer:
        """The master currently answering queries."""
        if not self._active_alive:
            return self._standby
        return self._active

    def sync_standby(self):
        """Mirror the acting master's state to its peer (done per mutation)."""
        if self._active_alive:
            self._standby.restore(self._active.snapshot())
        else:
            # the standby is acting; keep the (dead) active's state fresh so
            # it can rejoin as the new standby on revive
            self._active.restore(self._standby.snapshot())

    def kill_active(self):
        """Active master dies; standby takes over with mirrored state."""
        if not self._active_alive:
            raise TDAccessError("active master already down")
        self._active_alive = False
        self._active.alive = False
        self.failovers += 1

    def revive(self):
        """Old active rejoins as the new standby."""
        if self._active_alive:
            return
        self._active.restore(self._standby.snapshot())
        self._active, self._standby = self._standby, self._active
        self._active.alive = True
        self._standby.alive = True
        self._active_alive = True
