"""TDAccess producers.

A producer asks the master for the partition map once per topic, then
talks to data servers directly (Figure 2's flow). Keyed messages are
hashed so one key always lands in one partition; unkeyed messages are
spread round-robin.

Because the routing master is cached per topic, a master failover makes
the cached reference a dead process; and a data server can die or brown
out between routing and the append. Rather than surface either to the
caller (and lose the write), :meth:`Producer.send` re-queries
:class:`~repro.tdaccess.master.MasterPair` for the acting master and
retries — once by default, or under a full
:class:`~repro.resilience.RetryPolicy` with backoff when one is given.
"""

from __future__ import annotations

from typing import Any

from repro.errors import MasterUnavailableError, PartitionUnavailableError
from repro.resilience.retry import RetryBudget, RetryPolicy
from repro.tdaccess.master import MasterPair, MasterServer
from repro.tdaccess.message import Message
from repro.utils.clock import SimClock
from repro.utils.hashing import partition_for_key

_ROUTING_FAILURES = (MasterUnavailableError, PartitionUnavailableError)


class Producer:
    """Publishes messages to topics.

    Parameters
    ----------
    masters:
        The master pair answering routing queries.
    clock:
        Message timestamps; also charged with degraded servers'
        advertised latency.
    retry:
        Optional policy for retrying failed sends beyond the built-in
        single re-route; its ``sleep`` should advance this same clock so
        backoff gives crashed servers (simulated) time to recover.
    retry_budget:
        Optional per-producer cap on the retry ratio.
    """

    def __init__(
        self,
        masters: MasterPair,
        clock: SimClock,
        retry: RetryPolicy | None = None,
        retry_budget: RetryBudget | None = None,
    ):
        self._masters = masters
        self._clock = clock
        self._retry = retry
        self._retry_budget = retry_budget
        self._round_robin: dict[str, int] = {}
        # the master each topic's partition count was resolved against;
        # invalidated when a send fails through it (e.g. master failover)
        self._topic_masters: dict[str, MasterServer] = {}
        self.sent = 0
        self.send_retries = 0
        self.latency_absorbed = 0.0

    def _master_for(self, topic: str) -> tuple[MasterServer, int]:
        master = self._topic_masters.get(topic)
        if master is None:
            master = self._masters.active
        num_partitions = master.num_partitions(topic)  # may raise if dead
        self._topic_masters[topic] = master
        return master, num_partitions

    def _partition_for(self, topic: str, key: Any, num_partitions: int) -> int:
        if key is not None:
            return partition_for_key(key, num_partitions)
        cursor = self._round_robin.get(topic, 0)
        self._round_robin[topic] = cursor + 1
        return cursor % num_partitions

    def _attempt_send(self, topic: str, value: Any, key: Any) -> Message:
        master, num_partitions = self._master_for(topic)
        partition = self._partition_for(topic, key, num_partitions)
        server = master.route(topic, partition)
        if server.latency > 0.0:
            self.latency_absorbed += server.latency
            self._clock.advance(server.latency)
        return server.append(topic, partition, key, value, self._clock.now())

    def send(self, topic: str, value: Any, key: Any = None) -> Message:
        """Publish ``value`` to ``topic``; returns the stored message.

        A routing or data-server failure drops the cached master for the
        topic, re-queries the pair's acting master, and retries — so a
        master failover or single browned-out server mid-produce does
        not lose the write.
        """

        def attempt() -> Message:
            return self._attempt_send(topic, value, key)

        def on_retry(*_):
            self._topic_masters.pop(topic, None)
            self.send_retries += 1

        try:
            message = attempt()
        except _ROUTING_FAILURES:
            self._topic_masters.pop(topic, None)
            self.send_retries += 1
            if self._retry is None:
                message = attempt()
            else:
                message = self._retry.run(
                    attempt,
                    retryable=_ROUTING_FAILURES,
                    budget=self._retry_budget,
                    on_retry=on_retry,
                )
        self.sent += 1
        return message

    def send_batch(self, topic: str, values: list[Any], key: Any = None) -> int:
        """Publish many values; returns the count stored."""
        for value in values:
            self.send(topic, value, key)
        return len(values)
