"""TDAccess producers.

A producer asks the master for the partition map once per topic, then
talks to data servers directly (Figure 2's flow). Keyed messages are
hashed so one key always lands in one partition; unkeyed messages are
spread round-robin.
"""

from __future__ import annotations

from typing import Any

from repro.tdaccess.master import MasterPair
from repro.tdaccess.message import Message
from repro.utils.clock import SimClock
from repro.utils.hashing import partition_for_key


class Producer:
    """Publishes messages to topics."""

    def __init__(self, masters: MasterPair, clock: SimClock):
        self._masters = masters
        self._clock = clock
        self._round_robin: dict[str, int] = {}
        self.sent = 0

    def send(self, topic: str, value: Any, key: Any = None) -> Message:
        """Publish ``value`` to ``topic``; returns the stored message."""
        master = self._masters.active
        num_partitions = master.num_partitions(topic)
        if key is not None:
            partition = partition_for_key(key, num_partitions)
        else:
            cursor = self._round_robin.get(topic, 0)
            partition = cursor % num_partitions
            self._round_robin[topic] = cursor + 1
        server = master.route(topic, partition)
        message = server.append(topic, partition, key, value, self._clock.now())
        self.sent += 1
        return message

    def send_batch(self, topic: str, values: list[Any], key: Any = None) -> int:
        """Publish many values; returns the count stored."""
        for value in values:
            self.send(topic, value, key)
        return len(values)
