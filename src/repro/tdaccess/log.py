"""Append-only partition logs.

The paper stresses that TDAccess, unlike a classic message queue, keeps
message data on disk so that offline consumers and temporarily absent
real-time systems can catch up, and that it uses *sequential* operations
for speed. We model that as a segmented append-only log: writes go to the
active segment; reads are sequential scans from an offset; old segments
can be truncated by a retention policy. Counters expose the sequential /
total operation split so tests can assert the access pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import OffsetOutOfRangeError, TDAccessError
from repro.tdaccess.message import Message


@dataclass
class LogSegment:
    """A contiguous run of messages starting at ``base_offset``."""

    base_offset: int
    messages: list[Message] = field(default_factory=list)

    @property
    def next_offset(self) -> int:
        return self.base_offset + len(self.messages)

    def __len__(self) -> int:
        return len(self.messages)


class PartitionLog:
    """The storage behind one topic partition.

    Parameters
    ----------
    topic, partition:
        Identity, stamped into every appended message.
    segment_size:
        Messages per segment before rolling to a new one.
    retention_segments:
        When set, only this many most-recent *sealed* segments are kept
        (plus the active one); older messages become unreadable, modelling
        disk-space retention.
    """

    def __init__(
        self,
        topic: str,
        partition: int,
        segment_size: int = 1024,
        retention_segments: int | None = None,
    ):
        if segment_size <= 0:
            raise TDAccessError(f"segment_size must be positive: {segment_size}")
        if retention_segments is not None and retention_segments < 1:
            raise TDAccessError(
                f"retention_segments must be >= 1: {retention_segments}"
            )
        self.topic = topic
        self.partition = partition
        self._segment_size = segment_size
        self._retention_segments = retention_segments
        self._segments: list[LogSegment] = [LogSegment(base_offset=0)]
        self.appends = 0
        self.sequential_reads = 0

    @property
    def start_offset(self) -> int:
        """Oldest retained offset."""
        return self._segments[0].base_offset

    @property
    def next_offset(self) -> int:
        """Offset the next append will receive."""
        return self._segments[-1].next_offset

    def __len__(self) -> int:
        return self.next_offset - self.start_offset

    def append(self, key: Any, value: Any, timestamp: float) -> Message:
        """Append one message; returns it with its assigned offset."""
        active = self._segments[-1]
        if len(active) >= self._segment_size:
            active = LogSegment(base_offset=active.next_offset)
            self._segments.append(active)
            self._enforce_retention()
        message = Message(
            self.topic, self.partition, active.next_offset, key, value, timestamp
        )
        active.messages.append(message)
        self.appends += 1
        return message

    def _enforce_retention(self):
        if self._retention_segments is None:
            return
        sealed = len(self._segments) - 1
        excess = sealed - self._retention_segments
        if excess > 0:
            self._segments = self._segments[excess:]

    def read(self, from_offset: int, max_messages: int) -> list[Message]:
        """Read up to ``max_messages`` starting at ``from_offset``.

        Offsets older than retention raise :class:`OffsetOutOfRangeError`
        carrying the earliest retained offset, so replay callers can
        decide to reseek or abort; reading at or past the head returns an
        empty list (nothing new yet).
        """
        if from_offset < self.start_offset:
            raise OffsetOutOfRangeError(
                f"offset {from_offset} below retained start "
                f"{self.start_offset} for {self.topic}[{self.partition}]",
                earliest=self.start_offset,
            )
        if max_messages <= 0:
            return []
        out: list[Message] = []
        for segment in self._segments:
            if segment.next_offset <= from_offset:
                continue
            start = max(0, from_offset - segment.base_offset)
            for message in segment.messages[start:]:
                out.append(message)
                if len(out) >= max_messages:
                    self.sequential_reads += 1
                    return out
        self.sequential_reads += 1
        return out

    def scan(self, from_offset: int = 0) -> Iterator[Message]:
        """Iterate all retained messages from ``from_offset`` (offline reads).

        ``from_offset=0`` (the default) means "everything retained". An
        explicit positive offset that retention already truncated raises
        :class:`OffsetOutOfRangeError` rather than silently skipping the
        missing range — a replay that cannot see every message it asked
        for must know, not guess.
        """
        if 0 < from_offset < self.start_offset:
            raise OffsetOutOfRangeError(
                f"scan from offset {from_offset} below retained start "
                f"{self.start_offset} for {self.topic}[{self.partition}]",
                earliest=self.start_offset,
            )
        cursor = max(from_offset, self.start_offset)
        while True:
            batch = self.read(cursor, 1024)
            if not batch:
                return
            yield from batch
            cursor = batch[-1].offset + 1

    def segment_count(self) -> int:
        return len(self._segments)
