"""TDAccess consumers and consumer groups.

Consumers pull messages per partition and track their own offsets, so a
consumer that was absent (the paper's "temporary absence of the real-time
computation systems") resumes from where it left off, and an offline
system can replay from offset zero. A :class:`ConsumerGroup` splits a
topic's partitions across member consumers so they poll in parallel.
"""

from __future__ import annotations

from repro.errors import (
    ConsumerGroupError,
    MasterUnavailableError,
    PartitionUnavailableError,
)
from repro.tdaccess.data_server import DataServer
from repro.tdaccess.master import MasterPair
from repro.tdaccess.message import Message

_ROUTING_FAILURES = (MasterUnavailableError, PartitionUnavailableError)


class OffsetStore:
    """Server-side committed offsets, keyed by (group, topic, partition).

    Lives with the cluster, not the consumer process, so a consumer that
    crashes and restarts resumes from its last commit — the paper's
    "temporary absence of the real-time computation systems".
    """

    def __init__(self):
        self._offsets: dict[tuple[str, str, int], int] = {}

    def commit(self, group: str, topic: str, partition: int, offset: int):
        self._offsets[(group, topic, partition)] = offset

    def committed(self, group: str, topic: str, partition: int) -> int | None:
        return self._offsets.get((group, topic, partition))


class Consumer:
    """A single consumer reading an explicit set of partitions.

    With ``group_id`` and an :class:`OffsetStore`, progress can be
    committed server-side and is restored on construction.
    """

    def __init__(
        self,
        masters: MasterPair,
        topic: str,
        partitions: list[int] | None = None,
        start_offset: int = 0,
        group_id: str | None = None,
        offset_store: "OffsetStore | None" = None,
    ):
        if (group_id is None) != (offset_store is None):
            raise ConsumerGroupError(
                "group_id and offset_store must be provided together"
            )
        self._masters = masters
        self.topic = topic
        self.group_id = group_id
        self._offset_store = offset_store
        total = masters.active.num_partitions(topic)
        if partitions is None:
            partitions = list(range(total))
        bad = [p for p in partitions if p < 0 or p >= total]
        if bad:
            raise ConsumerGroupError(
                f"partitions {bad} out of range for topic {topic!r} ({total})"
            )
        self.partitions = list(partitions)
        self._offsets: dict[int, int] = {}
        for partition in partitions:
            committed = None
            if offset_store is not None and group_id is not None:
                committed = offset_store.committed(group_id, topic, partition)
            self._offsets[partition] = (
                committed if committed is not None else start_offset
            )
        self.received = 0
        self.poll_retries = 0

    def commit(self):
        """Persist current positions to the cluster's offset store."""
        if self._offset_store is None or self.group_id is None:
            raise ConsumerGroupError(
                "commit() needs a group_id and an offset store"
            )
        for partition, offset in self._offsets.items():
            self._offset_store.commit(
                self.group_id, self.topic, partition, offset
            )

    def position(self, partition: int) -> int:
        return self._offsets[partition]

    def positions(self) -> dict[int, int]:
        """Offset snapshot of every owned partition (checkpoint capture)."""
        return dict(self._offsets)

    def seek(self, partition: int, offset: int):
        if partition not in self._offsets:
            raise ConsumerGroupError(
                f"consumer does not own partition {partition}"
            )
        self._offsets[partition] = offset

    def seek_all(self, offsets: dict[int, int]):
        """Restore every partition position from a checkpoint snapshot."""
        for partition, offset in offsets.items():
            self.seek(partition, offset)

    def earliest(self, partition: int) -> int | None:
        """Oldest retained offset of ``partition``, or None if it is down.

        Recovery uses this to detect checkpoints whose replay range has
        been truncated by retention before replaying a single message.
        """
        if partition not in self._offsets:
            raise ConsumerGroupError(
                f"consumer does not own partition {partition}"
            )
        try:
            server = self._masters.active.route(self.topic, partition)
        except PartitionUnavailableError:
            return None
        return server.start_offset(self.topic, partition)

    def _route_with_retry(self, partition: int) -> "DataServer | None":
        """Route through the acting master, retrying once through failover.

        A first failure may be a stale master (mid-failover) or a
        just-died data server: re-querying :attr:`MasterPair.active`
        picks up the standby's mirrored placement. A second failure
        means the partition is genuinely down right now.
        """
        for attempt in range(2):
            try:
                return self._masters.active.route(self.topic, partition)
            except _ROUTING_FAILURES:
                if attempt == 0:
                    self.poll_retries += 1
        return None

    def _read_with_retry(
        self, partition: int, max_messages: int
    ) -> list[Message] | None:
        """Read a batch, re-routing and retrying once on failure (a
        browned-out server drops some requests; a retry usually lands)."""
        server = self._route_with_retry(partition)
        if server is None:
            return None
        for attempt in range(2):
            try:
                return server.read(
                    self.topic, partition, self._offsets[partition], max_messages
                )
            except PartitionUnavailableError:
                if attempt == 1:
                    return None
                self.poll_retries += 1
                server = self._route_with_retry(partition)
                if server is None:
                    return None
        return None

    def poll(self, max_per_partition: int = 256) -> list[Message]:
        """Fetch new messages from every owned, live partition.

        Dead partitions are skipped after one retried route (their
        messages are delivered after the hosting server recovers),
        matching the availability story of §3.2.
        """
        out: list[Message] = []
        for partition in self.partitions:
            batch = self._read_with_retry(partition, max_per_partition)
            if batch:
                self._offsets[partition] = batch[-1].offset + 1
                out.extend(batch)
        self.received += len(out)
        return out

    def drain(self, max_per_partition: int = 256) -> list[Message]:
        """Poll until no partition returns anything new."""
        out: list[Message] = []
        while True:
            batch = self.poll(max_per_partition)
            if not batch:
                return out
            out.extend(batch)

    def lag(self) -> int:
        """Total messages available but not yet consumed (live partitions)."""
        master = self._masters.active
        total = 0
        for partition in self.partitions:
            try:
                server = master.route(self.topic, partition)
            except PartitionUnavailableError:
                continue
            total += server.head_offset(self.topic, partition) - self._offsets[
                partition
            ]
        return total


class ConsumerGroup:
    """Splits a topic's partitions across ``num_consumers`` members."""

    def __init__(self, masters: MasterPair, topic: str, num_consumers: int):
        if num_consumers <= 0:
            raise ConsumerGroupError(
                f"need at least one consumer: {num_consumers}"
            )
        total = masters.active.num_partitions(topic)
        if num_consumers > total:
            raise ConsumerGroupError(
                f"{num_consumers} consumers for {total} partitions: "
                "some would idle"
            )
        self.members: list[Consumer] = []
        for index in range(num_consumers):
            owned = [p for p in range(total) if p % num_consumers == index]
            self.members.append(Consumer(masters, topic, owned))

    def poll_all(self, max_per_partition: int = 256) -> list[Message]:
        """Poll every member once; returns the combined batch."""
        out: list[Message] = []
        for member in self.members:
            out.extend(member.poll(max_per_partition))
        return out
