"""TDAccess data servers.

Data servers host partitions, cache their message data, and serve
producers and consumers directly (the master is only consulted for
routing). Data servers do not share data with each other — the design
point the paper credits for linear scalability.
"""

from __future__ import annotations

from typing import Any

from repro.errors import PartitionUnavailableError, TDAccessError
from repro.tdaccess.log import PartitionLog
from repro.tdaccess.message import Message


class DataServer:
    """One data-server process hosting a set of partition logs."""

    def __init__(self, server_id: int):
        self.server_id = server_id
        self.alive = True
        self._logs: dict[tuple[str, int], PartitionLog] = {}
        # degradation state (chaos injection): advertised extra latency
        # per request and a deterministic request-drop cadence (brownout)
        self.latency = 0.0
        self.error_every = 0
        self._degraded_ops = 0
        self.injected_errors = 0

    def host_partition(self, log: PartitionLog):
        key = (log.topic, log.partition)
        if key in self._logs:
            raise TDAccessError(
                f"server {self.server_id} already hosts {key[0]}[{key[1]}]"
            )
        self._logs[key] = log

    def hosted_partitions(self) -> list[tuple[str, int]]:
        return sorted(self._logs)

    def partition_count(self) -> int:
        return len(self._logs)

    def _log(self, topic: str, partition: int) -> PartitionLog:
        if not self.alive:
            raise PartitionUnavailableError(
                f"data server {self.server_id} is down"
            )
        try:
            return self._logs[(topic, partition)]
        except KeyError:
            raise PartitionUnavailableError(
                f"server {self.server_id} does not host {topic}[{partition}]"
            ) from None

    # -- degradation (brownouts) ---------------------------------------------

    def set_degradation(
        self, latency: float | None = None, error_every: int | None = None
    ):
        """Enter a degraded (browned-out) mode: advertised extra latency
        and/or dropping every ``error_every``-th request."""
        if latency is not None:
            if latency < 0:
                raise TDAccessError(f"latency must be >= 0: {latency}")
            self.latency = float(latency)
        if error_every is not None:
            if error_every < 0:
                raise TDAccessError(f"error_every must be >= 0: {error_every}")
            self.error_every = int(error_every)

    def clear_degradation(self):
        self.latency = 0.0
        self.error_every = 0

    @property
    def degraded(self) -> bool:
        return self.latency > 0.0 or self.error_every > 0

    def _check_degraded(self, topic: str, partition: int):
        if self.error_every:
            self._degraded_ops += 1
            if self._degraded_ops % self.error_every == 0:
                self.injected_errors += 1
                raise PartitionUnavailableError(
                    f"server {self.server_id} browned out "
                    f"{topic}[{partition}] (drops 1/{self.error_every} "
                    f"requests)"
                )

    def append(
        self, topic: str, partition: int, key: Any, value: Any, timestamp: float
    ) -> Message:
        log = self._log(topic, partition)
        self._check_degraded(topic, partition)
        return log.append(key, value, timestamp)

    def read(
        self, topic: str, partition: int, from_offset: int, max_messages: int
    ) -> list[Message]:
        log = self._log(topic, partition)
        self._check_degraded(topic, partition)
        return log.read(from_offset, max_messages)

    def head_offset(self, topic: str, partition: int) -> int:
        return self._log(topic, partition).next_offset

    def start_offset(self, topic: str, partition: int) -> int:
        """Oldest retained offset (retention may have truncated earlier)."""
        return self._log(topic, partition).start_offset

    def crash(self):
        """Simulate a machine failure; logs are retained (disk survives)."""
        self.alive = False

    def recover(self):
        """Bring the server back; its on-disk logs are intact."""
        self.alive = True
        self.clear_degradation()  # a restarted process is healthy again

    def __repr__(self) -> str:
        state = "up" if self.alive else "DOWN"
        return f"DataServer({self.server_id}, {state}, {len(self._logs)} partitions)"
