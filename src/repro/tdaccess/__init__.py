"""TDAccess: Tencent Data Access (Section 3.2, Figure 2).

A partitioned publish/subscribe layer decoupling data sources from the
data-processing systems. Producers publish user-action messages to
topics; each topic is split into partitions spread across data servers;
consumers pull in parallel, one consumer per partition within a group.
An active/standby master pair tracks server liveness and balances
partitions. Messages are retained in per-partition append-only logs
("cached in disk" in the paper), so late or offline consumers can replay
history.
"""

from repro.tdaccess.message import Message
from repro.tdaccess.log import PartitionLog, LogSegment
from repro.tdaccess.data_server import DataServer
from repro.tdaccess.master import MasterServer, MasterPair
from repro.tdaccess.producer import Producer
from repro.tdaccess.consumer import Consumer, ConsumerGroup, OffsetStore
from repro.tdaccess.cluster import TDAccessCluster

__all__ = [
    "Message",
    "PartitionLog",
    "LogSegment",
    "DataServer",
    "MasterServer",
    "MasterPair",
    "Producer",
    "Consumer",
    "ConsumerGroup",
    "OffsetStore",
    "TDAccessCluster",
]
