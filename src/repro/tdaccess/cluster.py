"""TDAccess cluster facade.

Wires data servers and the master pair together and hands out producers
and consumers, so application code needs a single object (mirrors how
TencentRec treats TDAccess as one component in Figure 6).
"""

from __future__ import annotations

from repro.errors import TDAccessError
from repro.tdaccess.consumer import Consumer, ConsumerGroup, OffsetStore
from repro.tdaccess.data_server import DataServer
from repro.tdaccess.master import MasterPair
from repro.tdaccess.producer import Producer
from repro.utils.clock import SimClock


class TDAccessCluster:
    """A complete TDAccess deployment."""

    def __init__(self, clock: SimClock, num_data_servers: int = 3):
        if num_data_servers <= 0:
            raise TDAccessError(
                f"need at least one data server: {num_data_servers}"
            )
        self.clock = clock
        self.masters = MasterPair()
        self.offsets = OffsetStore()
        self.data_servers = [DataServer(i) for i in range(num_data_servers)]
        for server in self.data_servers:
            self.masters.active.register_server(server)
        self.masters.sync_standby()

    def create_topic(
        self,
        topic: str,
        num_partitions: int,
        segment_size: int = 1024,
        retention_segments: int | None = None,
    ):
        self.masters.active.create_topic(
            topic, num_partitions, segment_size, retention_segments
        )
        self.masters.sync_standby()

    def producer(self, **resilience) -> Producer:
        """A new producer; ``retry`` / ``retry_budget`` forward to it."""
        return Producer(self.masters, self.clock, **resilience)

    def consumer(
        self,
        topic: str,
        partitions: list[int] | None = None,
        group_id: str | None = None,
    ) -> Consumer:
        offset_store = self.offsets if group_id is not None else None
        return Consumer(
            self.masters, topic, partitions,
            group_id=group_id, offset_store=offset_store,
        )

    def consumer_group(self, topic: str, num_consumers: int) -> ConsumerGroup:
        return ConsumerGroup(self.masters, topic, num_consumers)

    def crash_data_server(self, server_id: int):
        self._server(server_id).crash()

    def recover_data_server(self, server_id: int):
        self._server(server_id).recover()

    def _server(self, server_id: int) -> DataServer:
        for server in self.data_servers:
            if server.server_id == server_id:
                return server
        raise TDAccessError(f"unknown data server {server_id}")

    def failover_master(self):
        """Kill the active master; the standby takes over transparently."""
        self.masters.kill_active()

    # -- degradation (chaos: brownouts, latency spikes) -------------------

    def set_degradation(
        self,
        server_id: int,
        latency: float | None = None,
        error_every: int | None = None,
    ):
        self._server(server_id).set_degradation(latency, error_every)

    def clear_degradation(self, server_id: int):
        self._server(server_id).clear_degradation()

    def degraded_servers(self) -> list[int]:
        return [s.server_id for s in self.data_servers if s.degraded]

    def partition_balance(self, topic: str) -> dict[int, int]:
        """server id -> number of partitions of ``topic`` it hosts."""
        balance: dict[int, int] = {}
        for __, server_id in self.masters.active.partition_map(topic).items():
            balance[server_id] = balance.get(server_id, 0) + 1
        return balance
