"""Messages flowing through TDAccess."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Message:
    """One record in a partition log.

    ``offset`` is assigned by the partition on append and is unique and
    dense within a partition — consumers track progress as (partition,
    offset) pairs.
    """

    topic: str
    partition: int
    offset: int
    key: Any
    value: Any
    timestamp: float

    def __repr__(self) -> str:
        return (
            f"Message({self.topic}[{self.partition}]@{self.offset} "
            f"key={self.key!r})"
        )
