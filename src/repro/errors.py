"""Exception hierarchy for the TencentRec reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch library failures without swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent parameters."""


class TopologyError(ReproError):
    """A Storm topology was built or wired incorrectly."""


class TopologyValidationError(TopologyError):
    """A topology failed validation (missing components, bad groupings)."""


class ClusterError(ReproError):
    """A simulated cluster operation failed."""


class ClusterStateError(ClusterError):
    """The cluster was asked to do something invalid in its current state."""


class ResilienceError(ReproError):
    """Base error for the resilience layer (deadlines, breakers, shedding)."""


class DeadlineExceededError(ResilienceError):
    """An operation ran out of its propagated time budget.

    Carries ``elapsed`` and ``budget`` so callers can log how far over
    the line the operation was when it was cut off.
    """

    def __init__(self, message: str, elapsed: float, budget: float):
        super().__init__(message)
        self.elapsed = elapsed
        self.budget = budget

    def __reduce__(self):
        return (type(self), (self.args[0], self.elapsed, self.budget))


class CircuitOpenError(ResilienceError):
    """A circuit breaker is open: the call was rejected without being tried.

    Fast failure is the point — callers should take their degraded path
    immediately instead of queueing behind a dependency that is known to
    be unhealthy.
    """


class RetryBudgetExhaustedError(ResilienceError):
    """A caller's retry budget is spent; the failure surfaces un-retried.

    Prevents retry storms: when a dependency is broadly unhealthy,
    per-caller budgets stop every caller from multiplying the load.
    """


class OverloadError(ResilienceError):
    """The load shedder rejected admission for this priority class."""


class TDAccessError(ReproError):
    """Base error for the TDAccess publish/subscribe layer."""


class MasterUnavailableError(TDAccessError):
    """The addressed master server is dead; re-query the pair for the
    acting master and retry."""


class UnknownTopicError(TDAccessError):
    """A producer or consumer referenced a topic that does not exist."""


class PartitionUnavailableError(TDAccessError):
    """No live data server currently hosts the requested partition."""


class ConsumerGroupError(TDAccessError):
    """Consumer-group bookkeeping was violated (duplicate ids, bad offsets)."""


class OffsetOutOfRangeError(TDAccessError):
    """A read referenced an offset already truncated by log retention.

    Carries ``earliest``, the oldest offset still retained, so callers
    (replay, recovery) can decide whether to reseek or abort.
    """

    def __init__(self, message: str, earliest: int):
        super().__init__(message)
        self.earliest = earliest

    def __reduce__(self):
        return (type(self), (self.args[0], self.earliest))


class TDStoreError(ReproError):
    """Base error for the TDStore distributed key-value store."""


class RouteError(TDStoreError):
    """The route table does not cover the requested key or instance."""


class EngineError(TDStoreError):
    """A storage engine failed an operation."""


class ReplicationError(TDStoreError):
    """Host/slave synchronization failed or was misconfigured."""


class DataServerDownError(TDStoreError):
    """The addressed data server is not alive and no failover was possible."""


class StaleRouteError(TDStoreError):
    """The addressed server no longer hosts the instance (stale route table).

    Raised by the host-fencing check: after a failover moves an instance,
    a client still holding the old route table must refresh and retry
    rather than split-brain the instance between old and new hosts.
    """


class MigrationError(TDStoreError):
    """A live instance migration was requested or driven incorrectly."""


class MigrationInProgressError(TDStoreError):
    """The addressed instance is mid-cutover to a new host.

    Raised by the migration fence on the old host during the brief
    cutover window. Deliberately *not* a :class:`StaleRouteError`: the
    client's route table is current — the route itself is moving — so
    the right response is to await the cutover for this one instance
    and retry only the affected keys, not to re-download the table in a
    loop. Carries ``instance`` so the client can wait on the right
    migration.
    """

    def __init__(self, message: str, instance: int):
        super().__init__(message)
        self.instance = instance

    def __reduce__(self):
        return (type(self), (self.args[0], self.instance))


class VersionConflictError(TDStoreError):
    """A conditional write lost the race: the key's version moved on.

    Carries the version the store holds now, so the caller can re-read,
    re-apply its update, and retry the ``check_and_set``.
    """

    def __init__(self, message: str, current: int):
        super().__init__(message)
        self.current = current

    def __reduce__(self):
        return (type(self), (self.args[0], self.current))


class AlgorithmError(ReproError):
    """A recommendation algorithm was misused or given invalid input."""


class UnknownActionError(AlgorithmError):
    """An action type has no configured implicit-feedback weight."""


class RetrievalError(AlgorithmError):
    """Base error for the embedding/VQ retrieval subsystem."""


class ColdIndexError(RetrievalError):
    """The VQ index cannot answer yet (no centroids, or the query user
    has no embedded recent items).

    Carries ``reason`` so the front end's fallback counter can tell a
    genuinely empty index apart from a user the index has not seen —
    both degrade to CF, but they are different operational signals.
    """

    def __init__(self, message: str, reason: str = "empty_index"):
        super().__init__(message)
        self.reason = reason

    def __reduce__(self):
        return (type(self), (self.args[0], self.reason))


class SimulationError(ReproError):
    """The synthetic workload generator hit an invalid configuration."""


class EvaluationError(ReproError):
    """An experiment harness was configured or run incorrectly."""


class RecoveryError(ReproError):
    """Coordinated checkpoint/restore could not produce a consistent state."""


class CheckpointError(RecoveryError):
    """A checkpoint manifest is missing, malformed, or failed verification."""


class FaultPlanError(RecoveryError):
    """A fault-injection plan is malformed (unknown kind, bad round)."""


class RuntimeSubstrateError(ReproError):
    """Base error for the multi-process execution substrate."""


class SubstrateMismatchError(RuntimeSubstrateError):
    """A simulated-clock-only fixture was wired to a real-clock substrate.

    Latency faults, for example, work by advertising extra seconds for
    clients to charge against the *simulated* clock; on the process
    substrate operations take real wall time and there is no simulated
    clock to charge, so silently accepting the fault would measure
    nothing. Raised instead, at wiring time, so the test fails loudly.
    """


class RemoteOpError(RuntimeSubstrateError):
    """A remote operation failed with an exception that cannot round-trip.

    Carries the remote traceback text so the failure is debuggable from
    the calling process.
    """


class WorkerCrashError(RuntimeSubstrateError):
    """A worker process died (or was killed) while holding dispatched work."""


class SimulatedCrash(ReproError):
    """Raised by the fault injector to model a whole-process crash.

    Not an error in the library itself: harnesses catch it at the top of
    the run loop and hand control to the recovery path.
    """
