"""Elastic scaling (repro.elastic).

TencentRec's TDStore hashes keys onto data instances behind a
config-server route table (§3.3), and the paper names automatic
parallelism adjustment as its key future work (§7). This package adds
the two halves of that story on top of the existing route-epoch,
put_once, and monitoring machinery:

* :mod:`repro.elastic.migration` — live instance migration: move a data
  instance to a new host via snapshot-copy → dual-write catch-up →
  epoch-bumped cutover, preserving op journals and versions so
  exactly-once semantics survive the move. :class:`InstanceMigrator`
  drives single moves, load-balancing rebalances after cluster
  expansion, and whole-server drains.
* :mod:`repro.elastic.autoscaler` — a signal-driven
  :class:`Autoscaler` reading :class:`~repro.monitoring.SystemMonitor`
  snapshots (queue depth, shed rate, breaker state, replication
  backlog) and issuing ``LocalCluster.rebalance`` and TDStore
  expansion/drain decisions through a pluggable policy
  (:class:`ThresholdHysteresisPolicy`), with a dry-run mode.
"""

from repro.elastic.migration import (
    InstanceMigrator,
    Migration,
    MigrationRecord,
    invalidation_for_key,
)
from repro.elastic.autoscaler import (
    Autoscaler,
    ScalingDecision,
    ThresholdHysteresisPolicy,
)

__all__ = [
    "InstanceMigrator",
    "Migration",
    "MigrationRecord",
    "invalidation_for_key",
    "Autoscaler",
    "ScalingDecision",
    "ThresholdHysteresisPolicy",
]
