"""Live TDStore instance migration.

Moving a data instance to a new host without stopping traffic is the
storage half of elasticity: expansion adds empty servers, and only
migration gives them load. The protocol is the classic three-phase move,
expressed over the simulation's primitives:

1. **snapshot copy** (``begin``) — the target adopts a full snapshot of
   the instance's engine. Engine snapshots include the ``__ops__:`` op
   journals and ``__ver__:`` versions, so every dedup decision and CAS
   version travels with the data and ``put_once`` replays stay no-ops
   after the move.
2. **dual-write catch-up** — while the migration is registered with the
   config pair, every client mutation enqueues its sync records to the
   target as well as the slave (the same records, so journals and
   versions keep riding along). The source keeps serving reads.
3. **epoch-bumped cutover** (``enter_cutover`` → ``finish``) — the
   source raises a migration fence (its fencing check answers
   :class:`~repro.errors.MigrationInProgressError` instead of serving),
   the target drains its catch-up queue, and the config pair installs a
   route table derived with :meth:`~repro.tdstore.route_table.RouteTable.with_host`
   — one epoch bump that clients pick up through the existing
   ``route_epoch`` gate. A client that hits the fence awaits the
   cutover and retries only the moving shard.

After cutover the migrator publishes serving-layer invalidations for
the migrated keys (mapped by :func:`invalidation_for_key`), so cached
answers computed against the old placement are staled rather than
trusted blindly across the move.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import MigrationError
from repro.tdstore.config_server import ConfigServerPair
from repro.tdstore.engines import JOURNAL_PREFIX, VERSION_PREFIX

if TYPE_CHECKING:
    from repro.serving.invalidation import InvalidationBus

# simulated cost of the cutover window: one route-install round trip
# plus the per-record catch-up drain at the target
CUTOVER_FIXED_SECONDS = 0.002
CUTOVER_PER_RECORD_SECONDS = 0.0002

STATES = ("pending", "catching_up", "cutover", "done", "aborted")

_META_PREFIXES = (JOURNAL_PREFIX, VERSION_PREFIX)

# TDStore key prefix -> invalidation kind published after cutover; the
# key part mirrors what the committing bolts publish (see StateKeys and
# the bolt publish sites), so one subscriber wiring serves both streams
_USER_PREFIXES = ("hist", "recent", "consumed")


def invalidation_for_key(key: str) -> "tuple[str, str] | None":
    """Serving invalidation ``(kind, key)`` implied by a migrated key.

    Meta keys (op journals, versions) and state families the serving
    caches never tag by map to None.
    """
    if key.startswith(_META_PREFIXES):
        return None
    prefix, sep, rest = key.partition(":")
    if not sep or not rest:
        return None
    if prefix in _USER_PREFIXES:
        return ("user", rest)
    if prefix == "simlist":
        return ("item", rest)
    if prefix == "hot":
        return ("group", rest)
    if prefix == "ctr":
        # CtrBolt publishes the bare item (see bolts_ctr), key format is
        # "ctr:item|situation"
        return ("ctr", rest.split("|", 1)[0])
    return None


@dataclass
class MigrationRecord:
    """Observable state of one migration (monitoring + manifests)."""

    instance: int
    source: int
    target: int
    state: str = "pending"
    keys_copied: int = 0
    records_caught_up: int = 0
    invalidations_published: int = 0
    started_at: "float | None" = None
    finished_at: "float | None" = None
    stall_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "instance": self.instance,
            "source": self.source,
            "target": self.target,
            "state": self.state,
            "keys_copied": self.keys_copied,
            "records_caught_up": self.records_caught_up,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class Migration:
    """One live instance move, driven phase by phase.

    Use :class:`InstanceMigrator` for the one-shot form; the stepped
    form (``begin`` → ``enter_cutover`` → ``finish``) exists so tests
    and benchmarks can hold the cutover window open and measure what
    clients experience inside it.
    """

    def __init__(
        self,
        config: ConfigServerPair,
        instance: int,
        target_id: int,
        clock_now: "Callable[[], float] | None" = None,
        bus: "InvalidationBus | None" = None,
    ):
        self._config = config
        self.instance = instance
        self.target_id = target_id
        self._now = clock_now
        self._bus = bus
        self._on_settled: "Callable[[MigrationRecord], None] | None" = None
        route = config.route_table().route(instance)
        self.source_id = route.host
        self.record = MigrationRecord(
            instance=instance, source=self.source_id, target=target_id
        )

    @property
    def state(self) -> str:
        return self.record.state

    @property
    def stall_seconds(self) -> float:
        return self.record.stall_seconds

    def _time(self) -> "float | None":
        return self._now() if self._now is not None else None

    # -- phase 1: snapshot copy + dual-write registration -----------------

    def begin(self):
        """Copy the instance to the target and open the dual-write window."""
        if self.state != "pending":
            raise MigrationError(
                f"instance {self.instance}: begin() in state {self.state!r}"
            )
        if self._config.migration_target(self.instance) is not None:
            raise MigrationError(
                f"instance {self.instance} already has a migration in flight"
            )
        route = self._config.route_table().route(self.instance)
        if route.host != self.source_id:
            raise MigrationError(
                f"instance {self.instance} moved hosts ({self.source_id} -> "
                f"{route.host}) since this migration was planned"
            )
        target = self._config.server(self.target_id)
        if not target.alive:
            raise MigrationError(
                f"migration target server {self.target_id} is down"
            )
        if self.target_id == route.host:
            raise MigrationError(
                f"instance {self.instance} is already hosted by server "
                f"{self.target_id}"
            )
        if self.target_id == route.slave:
            raise MigrationError(
                f"server {self.target_id} is instance {self.instance}'s "
                "slave; promote it instead of migrating onto it"
            )
        source = self._config.server(self.source_id)
        snapshot = source.engine(self.instance).snapshot()
        # each replica owns its values: post-cutover writes at the target
        # must not reach back into the (still replica-holding) source
        target.adopt_snapshot(self.instance, copy.deepcopy(snapshot))
        self.record.keys_copied = len(snapshot)
        self.record.started_at = self._time()
        self.record.state = "catching_up"
        self._config.register_migration(self)

    # -- phase 3: cutover --------------------------------------------------

    def enter_cutover(self):
        """Fence the source: traffic now waits for :meth:`finish`."""
        if self.state != "catching_up":
            raise MigrationError(
                f"instance {self.instance}: enter_cutover() in state "
                f"{self.state!r}"
            )
        self._config.server(self.source_id).set_migration_fence(
            self.instance, True
        )
        self.record.state = "cutover"

    def finish(self) -> MigrationRecord:
        """Drain the catch-up queue, move the host role, bump the epoch."""
        if self.state == "done":
            return self.record  # idempotent: a racing await already won
        if self.state == "aborted":
            raise MigrationError(
                f"instance {self.instance}: migration was aborted"
            )
        if self.state == "catching_up":
            self.enter_cutover()
        if self.state != "cutover":
            raise MigrationError(
                f"instance {self.instance}: finish() in state {self.state!r}"
            )
        target = self._config.server(self.target_id)
        if not target.alive:
            self.abort()
            raise MigrationError(
                f"migration target server {self.target_id} died mid-move; "
                "migration aborted"
            )
        caught_up = target.pending_syncs(self.instance)
        target.apply_pending(self.instance)
        self.record.records_caught_up = caught_up

        table = self._config.route_table()
        route = table.route(self.instance)
        if route.host != self.source_id:
            # a failover raced us and moved the instance already; the
            # snapshot at the target is now of unknown lineage — abort
            self.abort()
            raise MigrationError(
                f"instance {self.instance} failed over to server "
                f"{route.host} mid-migration; migration aborted"
            )
        # keep the slave unless a failover made the target the slave
        new_slave = self.source_id if route.slave == self.target_id else None
        self._config.install_table(
            table.with_host(self.instance, self.target_id, new_slave)
        )
        target.set_host_role(self.instance, True)
        source = self._config.server(self.source_id)
        source.set_host_role(self.instance, False)
        source.set_migration_fence(self.instance, False)

        self.record.stall_seconds = (
            CUTOVER_FIXED_SECONDS + CUTOVER_PER_RECORD_SECONDS * caught_up
        )
        self.record.finished_at = self._time()
        self.record.state = "done"
        self._config.unregister_migration(self.instance, completed=True)
        self._publish_invalidations(target)
        self._settle()
        return self.record

    def abort(self):
        """Back out: lower the fence, close the dual-write window."""
        if self.state in ("done", "aborted"):
            return
        source = self._config.server(self.source_id)
        if source.alive:
            source.set_migration_fence(self.instance, False)
        self._config.unregister_migration(self.instance, completed=False)
        self.record.state = "aborted"
        self._settle()

    # -- post-cutover serving invalidation --------------------------------

    def _publish_invalidations(self, target):
        if self._bus is None:
            return
        published: set = set()
        for key in target.engine(self.instance).snapshot():
            event = invalidation_for_key(key)
            if event is not None and event not in published:
                published.add(event)
                self._bus.publish(*event)
        self.record.invalidations_published = len(published)

    def _settle(self):
        if self._on_settled is not None:
            self._on_settled(self.record)
            self._on_settled = None


class InstanceMigrator:
    """Drives live migrations against one TDStore deployment.

    Parameters
    ----------
    store:
        A :class:`~repro.tdstore.cluster.TDStoreCluster` or its
        :class:`~repro.tdstore.config_server.ConfigServerPair`.
    clock_now:
        Optional clock for migration timestamps.
    bus:
        Optional :class:`~repro.serving.invalidation.InvalidationBus`;
        when given, cached results depending on migrated keys are staled
        at cutover.
    """

    def __init__(
        self,
        store,
        clock_now: "Callable[[], float] | None" = None,
        bus: "InvalidationBus | None" = None,
    ):
        self._config: ConfigServerPair = getattr(store, "config", store)
        self._now = clock_now
        self._bus = bus
        self.migrations: list[MigrationRecord] = []

    def begin(self, instance: int, target_id: int) -> Migration:
        """Start a stepped migration (snapshot copy + dual-write)."""
        migration = Migration(
            self._config, instance, target_id,
            clock_now=self._now, bus=self._bus,
        )
        migration._on_settled = self.migrations.append
        migration.begin()
        return migration

    def migrate(self, instance: int, target_id: int) -> MigrationRecord:
        """Move ``instance`` to ``target_id``, start to finish."""
        migration = self.begin(instance, target_id)
        migration.enter_cutover()
        return migration.finish()

    # -- load balancing ----------------------------------------------------

    def plan_rebalance(self) -> list[tuple[int, int]]:
        """Moves ``(instance, target_server)`` that even out host load.

        Greedy: repeatedly shift one instance from the most- to the
        least-loaded live server until the spread is <= 1 (or no legal
        move remains — a move may not target the instance's own slave).
        """
        table = self._config.route_table()
        live = [s.server_id for s in self._config.servers() if s.alive]
        if len(live) < 2:
            return []
        load = {sid: 0 for sid in live}
        for sid, count in table.host_load().items():
            if sid in load:
                load[sid] = count
        hosted = {sid: list(table.instances_hosted_by(sid)) for sid in live}
        moves: list[tuple[int, int]] = []
        while True:
            most = max(live, key=lambda s: (load[s], s))
            least = min(live, key=lambda s: (load[s], s))
            if load[most] - load[least] <= 1:
                break
            candidates = [
                i for i in hosted[most] if table.route(i).slave != least
            ]
            if not candidates:
                break
            instance = candidates[0]
            hosted[most].remove(instance)
            hosted[least].append(instance)
            load[most] -= 1
            load[least] += 1
            moves.append((instance, least))
        return moves

    def rebalance(self) -> list[MigrationRecord]:
        """Plan and run every move; the usual step after expansion."""
        return [
            self.migrate(instance, target)
            for instance, target in self.plan_rebalance()
        ]

    # -- decommissioning ---------------------------------------------------

    def drain(
        self, server_id: int, exclude: "tuple[int, ...]" = ()
    ) -> list[MigrationRecord]:
        """Live-migrate every role off ``server_id``.

        Hosted instances move to the least-loaded remaining live servers
        through the full migration protocol; instances it backed up get
        a fresh slave seeded from their host. The server stays alive and
        registered (so in-flight clients can still be answered by
        fences) but owns nothing afterwards. ``exclude`` removes further
        servers from the target pool — a multi-server decommission must
        not shuffle load between the servers it is emptying.
        """
        config = self._config
        server = config.server(server_id)
        if not server.alive:
            raise MigrationError(
                f"server {server_id} is down; use failover, not drain"
            )
        barred = {server_id, *exclude}
        others = [
            s for s in config.servers()
            if s.alive and s.server_id not in barred
        ]
        if len(others) < 2:
            raise MigrationError(
                "draining would leave fewer than two live servers"
            )
        records: list[MigrationRecord] = []
        for instance in config.route_table().instances_hosted_by(server_id):
            table = config.route_table()
            route = table.route(instance)
            load = table.host_load()
            target = min(
                (s for s in others if s.server_id != route.slave),
                key=lambda s: (load.get(s.server_id, 0), s.server_id),
            ).server_id
            records.append(self.migrate(instance, target))
        for instance in config.route_table().instances_backed_by(server_id):
            table = config.route_table()
            route = table.route(instance)
            host = config.server(route.host)
            load = table.host_load()
            new_slave = min(
                (s for s in others if s.server_id != route.host),
                key=lambda s: (load.get(s.server_id, 0), s.server_id),
            ).server_id
            host.apply_pending(instance)
            snapshot = host.engine(instance).snapshot()
            config.server(new_slave).adopt_snapshot(
                instance, copy.deepcopy(snapshot)
            )
            config.install_table(table.with_slave(instance, new_slave))
        return records
