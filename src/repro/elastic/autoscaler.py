"""Signal-driven autoscaling (the paper's §7 future work, made concrete).

TencentRec names "adjust the parallelism of each component automatically
according to real-time data rates" as key future work. This module closes
the loop on top of the machinery the repo already has:

* the :class:`~repro.monitoring.SystemMonitor` supplies the signals
  (queue depth per component, shed rate, breaker states, replication
  backlog, read imbalance),
* ``LocalCluster.rebalance`` applies parallelism changes live (pending
  tuples re-route through the groupings; TDStore-backed state survives),
* :class:`~repro.elastic.migration.InstanceMigrator` expands / drains
  the TDStore pool under live traffic.

The :class:`Autoscaler` itself is a thin deterministic loop: snapshot →
policy → apply → record. All judgement lives in the pluggable policy;
the default :class:`ThresholdHysteresisPolicy` uses high/low watermarks
with sustain counts (hysteresis) and a cooldown so one noisy snapshot
never triggers a resize, and flapping between sizes is impossible by
construction. ``dry_run=True`` records every decision without applying
it — the mode an operator runs first in production.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import ClusterStateError, TDStoreError

if TYPE_CHECKING:
    from repro.elastic.migration import InstanceMigrator
    from repro.monitoring import SystemMonitor, SystemSnapshot
    from repro.storm.cluster import LocalCluster
    from repro.tdstore.cluster import TDStoreCluster

# decision actions, in the order an overloaded system escalates
ACTIONS = (
    "scale_up",        # double a component's parallelism
    "scale_down",      # halve a component's parallelism
    "expand_store",    # add a TDStore data server + rebalance instances
    "drain_store",     # migrate a TDStore server empty (shrink prep)
    "hold",            # pressure seen but sustain/cooldown not met
)


@dataclass
class ScalingDecision:
    """One autoscaler verdict, applied or not."""

    at: float
    action: str
    target: str            # component name or "tdstore"
    reason: str            # the signal that tripped (human-readable)
    detail: dict[str, Any] = field(default_factory=dict)
    applied: bool = False

    def as_dict(self) -> dict[str, Any]:
        return {
            "at": self.at,
            "action": self.action,
            "target": self.target,
            "reason": self.reason,
            "detail": dict(self.detail),
            "applied": self.applied,
        }


@dataclass
class _Proposal:
    """What a policy asks for (before cooldown/apply bookkeeping)."""

    action: str
    target: str
    reason: str
    detail: dict[str, Any] = field(default_factory=dict)


class ThresholdHysteresisPolicy:
    """Watermark policy with sustain counts and per-target cooldown.

    Parallelism: a component whose queued tuples per task stay above
    ``queue_high_per_task`` for ``sustain_up`` consecutive snapshots is
    doubled (capped at ``max_parallelism``); below ``queue_low_per_task``
    for ``sustain_down`` snapshots it is halved (floored at
    ``min_parallelism``). Shed rate above ``shed_rate_high`` or an open
    breaker count as pressure on every watched component — load shedding
    means the whole pipeline is saturated, not one stage.

    Store: replication backlog above ``backlog_high`` or read imbalance
    above ``imbalance_high``, sustained, proposes ``expand_store``.

    Cooldown: after any applied action on a target, that target is
    ignored for ``cooldown`` seconds of snapshot time — a rebalance
    needs time to show up in the signals before being judged again.
    """

    def __init__(
        self,
        queue_high_per_task: float = 32.0,
        queue_low_per_task: float = 2.0,
        shed_rate_high: float = 0.05,
        backlog_high: int = 5_000,
        imbalance_high: float = 3.0,
        sustain_up: int = 2,
        sustain_down: int = 3,
        cooldown: float = 60.0,
        min_parallelism: int = 1,
        max_parallelism: int = 64,
        max_store_servers: int = 16,
    ):
        if sustain_up < 1 or sustain_down < 1:
            raise ValueError("sustain counts must be >= 1")
        if min_parallelism < 1 or max_parallelism < min_parallelism:
            raise ValueError("need 1 <= min_parallelism <= max_parallelism")
        self.queue_high_per_task = queue_high_per_task
        self.queue_low_per_task = queue_low_per_task
        self.shed_rate_high = shed_rate_high
        self.backlog_high = backlog_high
        self.imbalance_high = imbalance_high
        self.sustain_up = sustain_up
        self.sustain_down = sustain_down
        self.cooldown = cooldown
        self.min_parallelism = min_parallelism
        self.max_parallelism = max_parallelism
        self.max_store_servers = max_store_servers
        # consecutive-snapshot pressure/relief counters, per target
        self._pressure: dict[str, int] = {}
        self._relief: dict[str, int] = {}
        self._store_pressure = 0

    # -- signal classification ------------------------------------------------

    def _global_pressure(self, snap: "SystemSnapshot") -> str | None:
        """A saturation signal that is not attributable to one component."""
        if snap.shed_rate > self.shed_rate_high:
            return (
                f"shed rate {snap.shed_rate:.1%} above "
                f"{self.shed_rate_high:.1%}"
            )
        open_breakers = [
            name
            for name, state in snap.breaker_states.items()
            if state == "open"
        ]
        if open_breakers:
            return f"circuit breaker(s) open: {sorted(open_breakers)}"
        return None

    def propose(
        self,
        snap: "SystemSnapshot",
        queue_depths: dict[str, int],
        parallelism: dict[str, int],
        store_servers_up: int,
    ) -> list[_Proposal]:
        """Classify this snapshot; return the actions it justifies."""
        proposals: list[_Proposal] = []
        global_reason = self._global_pressure(snap)
        for component in sorted(parallelism):
            tasks = max(1, parallelism[component])
            per_task = queue_depths.get(component, 0) / tasks
            if per_task >= self.queue_high_per_task or (
                global_reason is not None and per_task > self.queue_low_per_task
            ):
                self._pressure[component] = (
                    self._pressure.get(component, 0) + 1
                )
                self._relief[component] = 0
                reason = (
                    f"queue depth {per_task:.1f}/task above "
                    f"{self.queue_high_per_task:.0f}"
                    if per_task >= self.queue_high_per_task
                    else global_reason
                )
                if self._pressure[component] >= self.sustain_up:
                    new = min(tasks * 2, self.max_parallelism)
                    if new > tasks:
                        proposals.append(
                            _Proposal(
                                "scale_up",
                                component,
                                reason,
                                {"from": tasks, "to": new,
                                 "per_task_depth": per_task},
                            )
                        )
                    else:
                        proposals.append(
                            _Proposal(
                                "hold",
                                component,
                                f"{reason}; already at max parallelism "
                                f"{self.max_parallelism}",
                                {"parallelism": tasks},
                            )
                        )
                else:
                    proposals.append(
                        _Proposal(
                            "hold",
                            component,
                            f"{reason}; sustaining "
                            f"({self._pressure[component]}/{self.sustain_up})",
                            {"per_task_depth": per_task},
                        )
                    )
            elif per_task <= self.queue_low_per_task and global_reason is None:
                self._relief[component] = self._relief.get(component, 0) + 1
                self._pressure[component] = 0
                if (
                    self._relief[component] >= self.sustain_down
                    and tasks > self.min_parallelism
                ):
                    new = max(tasks // 2, self.min_parallelism)
                    proposals.append(
                        _Proposal(
                            "scale_down",
                            component,
                            f"queue depth {per_task:.1f}/task below "
                            f"{self.queue_low_per_task:.0f} for "
                            f"{self._relief[component]} snapshot(s)",
                            {"from": tasks, "to": new,
                             "per_task_depth": per_task},
                        )
                    )
            else:
                # between the watermarks: decay both counters
                self._pressure[component] = 0
                self._relief[component] = 0
        # store expansion: backlog or imbalance sustained
        imbalance = snap.read_imbalance()
        store_reason = None
        if snap.replication_backlog > self.backlog_high:
            store_reason = (
                f"replication backlog {snap.replication_backlog} above "
                f"{self.backlog_high}"
            )
        elif imbalance > self.imbalance_high:
            store_reason = (
                f"read imbalance {imbalance:.1f}x above "
                f"{self.imbalance_high:.1f}x"
            )
        if store_reason is not None:
            self._store_pressure += 1
            if self._store_pressure >= self.sustain_up:
                if store_servers_up < self.max_store_servers:
                    proposals.append(
                        _Proposal(
                            "expand_store",
                            "tdstore",
                            store_reason,
                            {"servers": store_servers_up},
                        )
                    )
                else:
                    proposals.append(
                        _Proposal(
                            "hold",
                            "tdstore",
                            f"{store_reason}; already at max pool size "
                            f"{self.max_store_servers}",
                            {"servers": store_servers_up},
                        )
                    )
            else:
                proposals.append(
                    _Proposal(
                        "hold",
                        "tdstore",
                        f"{store_reason}; sustaining "
                        f"({self._store_pressure}/{self.sustain_up})",
                        {"servers": store_servers_up},
                    )
                )
        else:
            self._store_pressure = 0
        return proposals

    def reset(self, target: str):
        """Forget accumulated pressure after an applied action."""
        if target == "tdstore":
            self._store_pressure = 0
        else:
            self._pressure[target] = 0
            self._relief[target] = 0


class Autoscaler:
    """Snapshot → policy → apply loop over a running deployment.

    Parameters
    ----------
    monitor:
        Signal source. Each :meth:`evaluate` takes a fresh snapshot
        unless one is passed in.
    storm, topology, components:
        Where parallelism changes land. ``components`` whitelists the
        bolts the autoscaler may resize (never spouts — the cluster
        refuses those anyway).
    tdstore, migrator:
        Where store expansion lands. ``expand`` = ``add_data_server()``
        followed by ``migrator.rebalance()`` so the new server actually
        takes load.
    policy:
        Defaults to :class:`ThresholdHysteresisPolicy`.
    dry_run:
        Record decisions with ``applied=False`` instead of acting.
    """

    def __init__(
        self,
        monitor: "SystemMonitor",
        storm: "LocalCluster | None" = None,
        topology: str | None = None,
        components: list[str] | None = None,
        tdstore: "TDStoreCluster | None" = None,
        migrator: "InstanceMigrator | None" = None,
        policy: ThresholdHysteresisPolicy | None = None,
        dry_run: bool = False,
    ):
        self._monitor = monitor
        self._storm = storm
        self._topology = topology
        self._components = list(components) if components else []
        self._tdstore = tdstore
        self._migrator = migrator
        self.policy = policy if policy is not None else (
            ThresholdHysteresisPolicy()
        )
        self.dry_run = dry_run
        self.decisions: list[ScalingDecision] = []
        self._last_applied: dict[str, float] = {}  # target -> snapshot time
        monitor.watch_autoscaler(self)

    # -- introspection (consumed by SystemMonitor.snapshot) -------------------

    @property
    def last_action(self) -> str | None:
        for decision in reversed(self.decisions):
            if decision.action != "hold":
                return f"{decision.action}:{decision.target}"
        return None

    def decisions_applied(self) -> int:
        return sum(1 for d in self.decisions if d.applied)

    # -- the loop -------------------------------------------------------------

    def evaluate(self, snap: "SystemSnapshot | None" = None) -> list[ScalingDecision]:
        """One control iteration; returns the decisions it recorded."""
        if snap is None:
            snap = self._monitor.snapshot()
        queue_depths: dict[str, int] = {}
        parallelism: dict[str, int] = {}
        if self._storm is not None and self._topology is not None:
            depths = self._storm.queue_depths(self._topology)
            for component in self._components:
                queue_depths[component] = depths.get(component, 0)
                parallelism[component] = self._storm.parallelism_of(
                    self._topology, component
                )
        store_up = 0
        if self._tdstore is not None:
            store_up = sum(
                1 for s in self._tdstore.data_servers if s.alive
            )
        proposals = self.policy.propose(
            snap, queue_depths, parallelism, store_up
        )
        recorded: list[ScalingDecision] = []
        for proposal in proposals:
            decision = ScalingDecision(
                at=snap.timestamp,
                action=proposal.action,
                target=proposal.target,
                reason=proposal.reason,
                detail=proposal.detail,
            )
            if proposal.action != "hold" and self._in_cooldown(
                proposal.target, snap.timestamp
            ):
                decision.action = "hold"
                decision.reason = (
                    f"{proposal.reason}; in cooldown after "
                    f"{proposal.action} at "
                    f"t={self._last_applied[proposal.target]:.0f}s"
                )
            elif proposal.action != "hold" and not self.dry_run:
                decision.applied = self._apply(proposal)
                if decision.applied:
                    self._last_applied[proposal.target] = snap.timestamp
                    self.policy.reset(proposal.target)
            self.decisions.append(decision)
            recorded.append(decision)
        return recorded

    def _in_cooldown(self, target: str, now: float) -> bool:
        last = self._last_applied.get(target)
        return last is not None and (now - last) < self.policy.cooldown

    def _apply(self, proposal: _Proposal) -> bool:
        try:
            if proposal.action in ("scale_up", "scale_down"):
                if self._storm is None or self._topology is None:
                    return False
                self._storm.rebalance(
                    self._topology, proposal.target, proposal.detail["to"]
                )
                return True
            if proposal.action == "expand_store":
                if self._tdstore is None:
                    return False
                server_id = self._tdstore.add_data_server()
                proposal.detail["new_server"] = server_id
                if self._migrator is not None:
                    moves = self._migrator.rebalance()
                    proposal.detail["migrations"] = len(moves)
                return True
            if proposal.action == "drain_store":
                if self._tdstore is None:
                    return False
                moves = self._tdstore.drain_data_server(
                    proposal.detail["server_id"]
                )
                proposal.detail["migrations"] = len(moves)
                return True
        except (ClusterStateError, TDStoreError) as exc:
            # a racing failover/rebalance invalidated the plan; record,
            # don't crash the control loop
            proposal.detail["error"] = str(exc)
            return False
        return False
