"""At-least-once delivery helpers.

Storm's guarantee: a spout tuple whose tree fails (or times out) is
replayed. :class:`ReplayingSpout` wraps any pull-based source with the
standard pending-buffer pattern — emitted tuples are remembered until
acked, failed ones re-enter the front of the queue, and a bounded retry
count routes poison messages to a dead-letter list instead of looping
forever.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.storm.component import Spout

PullFn = Callable[[], "Sequence[tuple] | None"]


class ReplayingSpout(Spout):
    """A reliable spout over an iterable of value tuples.

    Parameters
    ----------
    rows:
        The value tuples to emit.
    fields / stream_id:
        Output stream declaration.
    max_retries:
        After this many failures a row is moved to ``dead_letters``.
    max_in_flight:
        Cap on unacked emitted tuples. When reached the spout stops
        emitting (``throttled`` counts the skipped polls) until acks or
        failures shrink the pending buffer — Storm's
        ``topology.max.spout.pending`` backpressure. Without a cap,
        repeated downstream failures let the pending buffer grow with
        the whole remaining input.
    """

    def __init__(
        self,
        rows: Iterable[tuple],
        fields: tuple[str, ...],
        stream_id: str = "default",
        max_retries: int = 3,
        max_in_flight: int | None = None,
    ):
        if max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0: {max_retries}")
        if max_in_flight is not None and max_in_flight <= 0:
            raise ConfigurationError(
                f"max_in_flight must be positive: {max_in_flight}"
            )
        self._queue: deque[tuple[int, tuple]] = deque(enumerate(rows))
        self._fields = fields
        self._stream_id = stream_id
        self._max_retries = max_retries
        self._max_in_flight = max_in_flight
        self._pending: dict[int, tuple] = {}
        self._failures: dict[int, int] = {}
        self.dead_letters: list[tuple] = []
        self.replays = 0
        self.completed = 0
        self.duplicate_acks = 0
        self.throttled = 0
        self.max_in_flight_seen = 0

    def declare_outputs(self, declarer):
        declarer.declare(self._fields, self._stream_id)

    def next_tuple(self) -> bool:
        if not self._queue:
            return False
        if (
            self._max_in_flight is not None
            and len(self._pending) >= self._max_in_flight
        ):
            # backpressure: rows remain queued, so report "more to come"
            # without emitting; pending tuples resolve during the drain
            # that follows every poll, reopening the window
            self.throttled += 1
            return True
        message_id, row = self._queue.popleft()
        self._pending[message_id] = row
        self.collector.emit(row, stream_id=self._stream_id,
                            message_id=message_id)
        self.max_in_flight_seen = max(self.max_in_flight_seen, len(self._pending))
        return True

    def on_ack(self, message_id: Any):
        if self._pending.pop(message_id, None) is None:
            # duplicate or unknown ack (e.g. an acker double-delivering):
            # counting it would inflate the completion metric past the
            # number of rows actually processed
            self.duplicate_acks += 1
            return
        self._failures.pop(message_id, None)
        self.completed += 1

    def on_fail(self, message_id: Any):
        row = self._pending.pop(message_id, None)
        if row is None:
            return
        failures = self._failures.get(message_id, 0) + 1
        if failures > self._max_retries:
            self.dead_letters.append(row)
            self._failures.pop(message_id, None)
            return
        self._failures[message_id] = failures
        self.replays += 1
        self._queue.appendleft((message_id, row))

    def in_flight(self) -> int:
        return len(self._pending)

    def fully_processed(self) -> bool:
        return not self._queue and not self._pending
