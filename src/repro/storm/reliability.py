"""Delivery-guarantee helpers: at-least-once replay and exactly-once dedup.

Storm's native guarantee is at-least-once: a spout tuple whose tree fails
(or times out) is replayed. :class:`ReplayingSpout` wraps any pull-based
source with the standard pending-buffer pattern — emitted tuples are
remembered until acked, failed ones re-enter the front of the queue, and
a bounded retry count routes poison messages to a dead-letter record
(optionally published to a TDAccess topic) instead of looping forever.

On top of that, :class:`ExactlyOnceBolt` upgrades a bolt to effectively
exactly-once processing: every spout tuple carries a stable
``(source, offset)`` identity (``StormTuple.op_id``), bolt emissions
derive child identities deterministically, and a bounded
:class:`DedupLedger` drops re-deliveries before they touch state. The
ledger is watermark-pruned — memory stays O(in-flight window), not
O(stream) — and is captured by ``snapshot_state`` so the recovery
subsystem's checkpoints include it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.storm.component import Bolt, Spout
from repro.storm.tuples import StormTuple

PullFn = Callable[[], "Sequence[tuple] | None"]

# Offsets retained per source behind the highest offset seen. Must exceed
# the largest burst of first deliveries that can arrive out of order at
# one task (a poll batch per round) and the deepest rewind a fault or
# recovery replays; anything older showing up again can only be a
# duplicate.
DEFAULT_RETAIN_DEPTH = 256


class _SourceWindow:
    """Seen-offset tracking for one source, pruned by a low watermark.

    Offsets at or below ``watermark`` are treated as already seen — by
    the time the watermark passes an offset, its first delivery has long
    been processed, so a later arrival can only be a replay. Offsets in
    ``(watermark, max_seen]`` are tracked exactly, per derived-op suffix,
    in ``detail``.
    """

    __slots__ = ("watermark", "max_seen", "detail")

    def __init__(self):
        self.watermark = -1
        self.max_seen = -1
        self.detail: dict[int, set[str]] = {}

    def below_watermark(self, offset: int) -> bool:
        return offset <= self.watermark

    def seen(self, offset: int, suffix: str) -> bool:
        """Pure check: was ``(offset, suffix)`` observed (or pruned past)?"""
        if offset <= self.watermark:
            return True
        ops = self.detail.get(offset)
        return ops is not None and suffix in ops

    def record(self, offset: int, suffix: str, retain_depth: int):
        """Record ``(offset, suffix)`` as seen and advance the watermark."""
        if offset <= self.watermark:
            return
        ops = self.detail.get(offset)
        if ops is None:
            self.detail[offset] = {suffix}
        else:
            ops.add(suffix)
        if offset > self.max_seen:
            self.max_seen = offset
            floor = self.max_seen - retain_depth
            if floor > self.watermark:
                self.watermark = floor
                for old in [o for o in self.detail if o <= floor]:
                    del self.detail[old]


class DedupLedger:
    """Bounded per-task ledger of seen operation ids.

    Parses op ids of the shape ``"{source}@{offset}"`` (optionally
    followed by ``">..."`` derivation suffixes) and tracks them per
    source in a watermark-pruned window of ``retain_depth`` offsets.
    Op ids that do not parse are kept verbatim (unbounded, but only
    hand-crafted ids ever take that path).
    """

    def __init__(self, retain_depth: int = DEFAULT_RETAIN_DEPTH):
        if retain_depth <= 0:
            raise ConfigurationError(
                f"retain_depth must be positive: {retain_depth}"
            )
        self.retain_depth = retain_depth
        self._sources: dict[str, _SourceWindow] = {}
        self._odd: set[str] = set()
        self.first_seen = 0
        self.duplicates = 0
        # drops decided solely by the watermark: the offset is so far
        # behind max_seen that the exact detail was pruned. Almost always
        # a replay, but a late *first* delivery (inter-stream skew beyond
        # retain_depth) is indistinguishable — counted separately so that
        # misconfiguration-driven data loss is observable, not folded
        # into ordinary dedup hits.
        self.watermark_rejections = 0

    @staticmethod
    def _parse(op_id: str) -> "tuple[str, int, str] | None":
        root, sep, suffix = op_id.partition(">")
        source, at, offset = root.rpartition("@")
        if not at or not source:
            return None
        try:
            return source, int(offset), suffix
        except ValueError:
            return None

    def seen(self, op_id: str) -> bool:
        """Is ``op_id`` a replay? Counts the duplicate but records nothing.

        Callers pair this with :meth:`commit`: check first, run the
        (fallible) work, and only then commit the id — so a failure in
        between leaves the ledger unmarked and the replay is processed.
        """
        parsed = self._parse(op_id)
        if parsed is None:
            if op_id in self._odd:
                self.duplicates += 1
                return True
            return False
        source, offset, suffix = parsed
        window = self._sources.get(source)
        if window is None:
            return False
        if window.seen(offset, suffix):
            self.duplicates += 1
            if window.below_watermark(offset):
                self.watermark_rejections += 1
            return True
        return False

    def commit(self, op_id: str):
        """Record ``op_id`` as processed (call after the work succeeded)."""
        parsed = self._parse(op_id)
        if parsed is None:
            self._odd.add(op_id)
            self.first_seen += 1
            return
        source, offset, suffix = parsed
        window = self._sources.get(source)
        if window is None:
            window = self._sources[source] = _SourceWindow()
        window.record(offset, suffix, self.retain_depth)
        self.first_seen += 1

    def observe(self, op_id: str) -> bool:
        """Record ``op_id``; return True the first time, False on replays."""
        if self.seen(op_id):
            return False
        self.commit(op_id)
        return True

    # -- introspection -----------------------------------------------------

    def offsets_retained(self) -> int:
        """Distinct offsets currently tracked exactly (above watermarks)."""
        return sum(len(w.detail) for w in self._sources.values())

    def entries(self) -> int:
        """Total (offset, suffix) pairs held, plus unparseable ids."""
        return len(self._odd) + sum(
            len(ops) for w in self._sources.values() for ops in w.detail.values()
        )

    def within_bound(self) -> bool:
        """True while every source window respects the watermark bound."""
        return all(
            len(w.detail) <= self.retain_depth
            and all(o > w.watermark for o in w.detail)
            for w in self._sources.values()
        )

    def stats(self) -> dict:
        return {
            "sources": len(self._sources),
            "offsets": self.offsets_retained(),
            "entries": self.entries(),
            "retain_depth": self.retain_depth,
            "within_bound": self.within_bound(),
            "first_seen": self.first_seen,
            "duplicates": self.duplicates,
            "watermark_rejections": self.watermark_rejections,
        }

    # -- checkpoint support ------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "retain_depth": self.retain_depth,
            "first_seen": self.first_seen,
            "duplicates": self.duplicates,
            "watermark_rejections": self.watermark_rejections,
            "odd": sorted(self._odd),
            "sources": {
                name: {
                    "watermark": w.watermark,
                    "max_seen": w.max_seen,
                    "detail": {o: sorted(ops) for o, ops in w.detail.items()},
                }
                for name, w in sorted(self._sources.items())
            },
        }

    def restore(self, state: dict):
        self.retain_depth = state["retain_depth"]
        self.first_seen = state["first_seen"]
        self.duplicates = state["duplicates"]
        # snapshots from before the counter existed restore to zero
        self.watermark_rejections = state.get("watermark_rejections", 0)
        self._odd = set(state["odd"])
        self._sources = {}
        for name, ws in state["sources"].items():
            window = _SourceWindow()
            window.watermark = ws["watermark"]
            window.max_seen = ws["max_seen"]
            window.detail = {
                int(o): set(ops) for o, ops in ws["detail"].items()
            }
            self._sources[name] = window


class ExactlyOnceBolt(Bolt):
    """A bolt that processes each identified tuple exactly once.

    Subclasses implement :meth:`process` instead of ``execute``; input
    tuples whose ``op_id`` the ledger has already seen are dropped before
    any state is touched (and before any emission, so the whole subtree
    of a replayed tuple is suppressed). Tuples without an ``op_id`` fall
    back to at-least-once processing.

    The ledger is committed only *after* :meth:`process` returns: if the
    work raises (a store deadline miss, an open breaker, an injected
    server error) the tuple tree fails with the ledger unmarked, so the
    spout's replay is processed rather than swallowed as a duplicate.
    Marking first would silently degrade exactly-once to at-most-once
    whenever an exception coincides with a replay.

    The ledger rides along in ``snapshot_state``/``restore_state`` so
    recovery checkpoints capture it; subclasses keep their own
    checkpointed state through :meth:`snapshot_app_state` /
    :meth:`restore_app_state` rather than overriding the base protocol.
    """

    def __init__(self, dedup_retain: int = DEFAULT_RETAIN_DEPTH):
        self._ledger = DedupLedger(retain_depth=dedup_retain)
        self.dedup_hits = 0

    @property
    def ledger(self) -> DedupLedger:
        return self._ledger

    def execute(self, tup: StormTuple):
        op_id = tup.op_id
        if op_id is not None and self._ledger.seen(op_id):
            self.dedup_hits += 1
            return
        self.process(tup)
        if op_id is not None:
            self._ledger.commit(op_id)

    def process(self, tup: StormTuple):
        """Handle one input tuple, guaranteed unseen. Override."""
        raise NotImplementedError

    def ledger_stats(self) -> dict:
        stats = self._ledger.stats()
        stats["dedup_hits"] = self.dedup_hits
        return stats

    # -- checkpoint protocol ----------------------------------------------

    def snapshot_app_state(self) -> "dict | None":
        """Subclass hook: process-local state beyond the dedup ledger."""
        return None

    def restore_app_state(self, state: dict):
        """Subclass hook: reinstall state from :meth:`snapshot_app_state`."""

    def snapshot_state(self) -> "dict | None":
        app = self.snapshot_app_state()
        ledger = self._ledger.snapshot()
        if app is None and not ledger["sources"] and not ledger["odd"]:
            return None
        return {"exactly_once": ledger, "app": app}

    def restore_state(self, state: dict):
        if "exactly_once" in state:
            self._ledger.restore(state["exactly_once"])
            app = state.get("app")
        else:
            # manifest from before the exactly-once layer: the whole dict
            # is application state
            app = state
        if app is not None:
            self.restore_app_state(app)


@dataclass(frozen=True)
class DeadLetter:
    """A row abandoned after exhausting its retries."""

    row: tuple
    message_id: Any
    failures: int


class ReplayingSpout(Spout):
    """A reliable spout over an iterable of value tuples.

    Parameters
    ----------
    rows:
        The value tuples to emit.
    fields / stream_id:
        Output stream declaration.
    max_retries:
        After this many failures a row is moved to ``dead_letters``.
    max_in_flight:
        Cap on unacked emitted tuples. When reached the spout stops
        emitting (``throttled`` counts the skipped polls) until acks or
        failures shrink the pending buffer — Storm's
        ``topology.max.spout.pending`` backpressure. Without a cap,
        repeated downstream failures let the pending buffer grow with
        the whole remaining input.
    source_name:
        Identity prefix for emitted tuples: row ``i`` carries
        ``op_id="{source_name}@{i}"``, stable across replays.
    dead_letter_producer / dead_letter_topic:
        When a producer is given, each dead letter is also published to the
        TDAccess topic so it survives the process (the topic must already
        exist on the producer's cluster).
    """

    def __init__(
        self,
        rows: Iterable[tuple],
        fields: tuple[str, ...],
        stream_id: str = "default",
        max_retries: int = 3,
        max_in_flight: int | None = None,
        source_name: str = "rows",
        dead_letter_producer: Any = None,
        dead_letter_topic: str = "dead-letters",
    ):
        if max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0: {max_retries}")
        if max_in_flight is not None and max_in_flight <= 0:
            raise ConfigurationError(
                f"max_in_flight must be positive: {max_in_flight}"
            )
        self._queue: deque[tuple[int, tuple]] = deque(enumerate(rows))
        self._fields = fields
        self._stream_id = stream_id
        self._max_retries = max_retries
        self._max_in_flight = max_in_flight
        self._source_name = source_name
        self._dead_letter_producer = dead_letter_producer
        self._dead_letter_topic = dead_letter_topic
        self._pending: dict[int, tuple] = {}
        self._failures: dict[int, int] = {}
        self.dead_letters: list[DeadLetter] = []
        self.replays = 0
        self.completed = 0
        self.duplicate_acks = 0
        self.throttled = 0
        self.max_in_flight_seen = 0

    def declare_outputs(self, declarer):
        declarer.declare(self._fields, self._stream_id)

    def next_tuple(self) -> bool:
        if not self._queue:
            return False
        if (
            self._max_in_flight is not None
            and len(self._pending) >= self._max_in_flight
        ):
            # backpressure: rows remain queued, so report "more to come"
            # without emitting; pending tuples resolve during the drain
            # that follows every poll, reopening the window
            self.throttled += 1
            return True
        message_id, row = self._queue.popleft()
        self._pending[message_id] = row
        self.collector.emit(
            row,
            stream_id=self._stream_id,
            message_id=message_id,
            op_id=f"{self._source_name}@{message_id}",
        )
        self.max_in_flight_seen = max(self.max_in_flight_seen, len(self._pending))
        return True

    def on_ack(self, message_id: Any):
        if self._pending.pop(message_id, None) is None:
            # duplicate or unknown ack (e.g. an acker double-delivering):
            # counting it would inflate the completion metric past the
            # number of rows actually processed
            self.duplicate_acks += 1
            return
        self._failures.pop(message_id, None)
        self.completed += 1

    def on_fail(self, message_id: Any):
        row = self._pending.pop(message_id, None)
        if row is None:
            return
        failures = self._failures.get(message_id, 0) + 1
        if failures > self._max_retries:
            letter = DeadLetter(row, message_id, failures)
            self.dead_letters.append(letter)
            self._failures.pop(message_id, None)
            if self._dead_letter_producer is not None:
                self._dead_letter_producer.send(
                    self._dead_letter_topic,
                    {
                        "row": list(row),
                        "message_id": message_id,
                        "failures": failures,
                        "source": self._source_name,
                    },
                    key=str(message_id),
                )
            return
        self._failures[message_id] = failures
        self.replays += 1
        self._queue.appendleft((message_id, row))

    def in_flight(self) -> int:
        return len(self._pending)

    def fully_processed(self) -> bool:
        return not self._queue and not self._pending
