"""Stream tuples.

A :class:`StormTuple` is an immutable record flowing along a stream. It
knows which component and stream produced it, which fields it carries, and
(optionally) the message id used by the acking machinery to track its
tuple tree back to the originating spout.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.errors import TopologyError

Values = tuple


class StormTuple:
    """An immutable data tuple on a stream.

    Parameters
    ----------
    values:
        Field values, positionally aligned with ``fields``.
    fields:
        Field names declared by the emitting stream.
    stream_id:
        Id of the stream this tuple was emitted on.
    source_component:
        Name of the emitting component within the topology.
    source_task:
        Index of the emitting task within that component.
    root_ids:
        Ids of the spout tuple trees this tuple belongs to (for acking).
    timestamp:
        Simulated emission time in seconds.
    op_id:
        Stable identity of the operation that produced this tuple. Spout
        tuples carry ``"{source}@{offset}"``; bolt emissions derive
        ``"{parent_op}>{component}.{task}:{seq}"`` so a replayed spout
        tuple regenerates byte-identical ids all the way down its tree —
        the property dedup ledgers and the TDStore op journal rely on.
        ``None`` means the tuple has no replay-stable identity and is
        processed at-least-once.
    """

    __slots__ = (
        "_values",
        "_fields",
        "stream_id",
        "source_component",
        "source_task",
        "root_ids",
        "timestamp",
        "op_id",
    )

    def __init__(
        self,
        values: Sequence[Any],
        fields: Sequence[str],
        stream_id: str,
        source_component: str,
        source_task: int = 0,
        root_ids: frozenset[int] = frozenset(),
        timestamp: float = 0.0,
        op_id: str | None = None,
    ):
        if len(values) != len(fields):
            raise TopologyError(
                f"tuple on stream {stream_id!r} from {source_component!r} has "
                f"{len(values)} values for {len(fields)} fields {tuple(fields)}"
            )
        self._values = tuple(values)
        self._fields = tuple(fields)
        self.stream_id = stream_id
        self.source_component = source_component
        self.source_task = source_task
        self.root_ids = root_ids
        self.timestamp = timestamp
        self.op_id = op_id

    @property
    def values(self) -> tuple:
        return self._values

    @property
    def fields(self) -> tuple[str, ...]:
        return self._fields

    def value(self, field: str) -> Any:
        """Return the value of ``field``, raising if the field is absent."""
        try:
            return self._values[self._fields.index(field)]
        except ValueError:
            raise TopologyError(
                f"field {field!r} not in tuple fields {self._fields}"
            ) from None

    def select(self, fields: Sequence[str]) -> tuple:
        """Return the values of ``fields`` in order (used by groupings)."""
        return tuple(self.value(f) for f in fields)

    def as_dict(self) -> dict[str, Any]:
        """Return a field-name -> value mapping copy of this tuple."""
        return dict(zip(self._fields, self._values))

    def __getitem__(self, field: str) -> Any:
        return self.value(field)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        body = ", ".join(f"{f}={v!r}" for f, v in zip(self._fields, self._values))
        return (
            f"StormTuple({body}, stream={self.stream_id!r}, "
            f"source={self.source_component!r}:{self.source_task})"
        )
