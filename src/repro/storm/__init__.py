"""A deterministic, in-process reproduction of the Storm programming model.

TencentRec (SIGMOD 2015, Section 3.1 and Figure 1) runs on Apache Storm.
This subpackage implements the parts of Storm the paper's algorithms rely
on — spouts, bolts, stream groupings, topologies, acking, and a simulated
Nimbus/Supervisor/worker cluster — as a single-process discrete-event
system. Grouping semantics (one task owns all tuples for a key) are
preserved exactly; that is the property the paper's incremental counting
depends on.
"""

from repro.storm.tuples import StormTuple, Values
from repro.storm.streams import StreamDef, DEFAULT_STREAM
from repro.storm.grouping import (
    Grouping,
    FieldsGrouping,
    ShuffleGrouping,
    GlobalGrouping,
    AllGrouping,
)
from repro.storm.component import Spout, Bolt, OutputCollector, TopologyContext
from repro.storm.topology import TopologyBuilder, Topology
from repro.storm.cluster import LocalCluster
from repro.storm.metrics import ClusterMetrics
from repro.storm.reliability import (
    DeadLetter,
    DedupLedger,
    ExactlyOnceBolt,
    ReplayingSpout,
)
from repro.storm.xml_config import topology_from_xml

__all__ = [
    "StormTuple",
    "Values",
    "StreamDef",
    "DEFAULT_STREAM",
    "Grouping",
    "FieldsGrouping",
    "ShuffleGrouping",
    "GlobalGrouping",
    "AllGrouping",
    "Spout",
    "Bolt",
    "OutputCollector",
    "TopologyContext",
    "TopologyBuilder",
    "Topology",
    "LocalCluster",
    "ClusterMetrics",
    "DeadLetter",
    "DedupLedger",
    "ExactlyOnceBolt",
    "ReplayingSpout",
    "topology_from_xml",
]
