"""Spout and bolt programming model.

Mirrors Storm's component API: spouts produce the input streams, bolts
consume and transform them. Components declare output streams, are
instantiated once per task, and interact with the runtime only through
the :class:`OutputCollector` handed to them at preparation time.
"""

from __future__ import annotations

from abc import ABC
from typing import Any, Callable, Sequence

from repro.errors import TopologyError
from repro.storm.streams import DEFAULT_STREAM, OutputDeclaration
from repro.storm.tuples import StormTuple


class TopologyContext:
    """Runtime information handed to a component when it is prepared."""

    def __init__(
        self,
        component_name: str,
        task_index: int,
        num_tasks: int,
        topology_name: str,
    ):
        self.component_name = component_name
        self.task_index = task_index
        self.num_tasks = num_tasks
        self.topology_name = topology_name

    def __repr__(self) -> str:
        return (
            f"TopologyContext({self.topology_name!r}, "
            f"{self.component_name!r}[{self.task_index}/{self.num_tasks}])"
        )


class OutputCollector:
    """Emission interface given to a component task by the runtime.

    ``emit`` hands a value tuple to the cluster, which validates it against
    the declared stream schema and routes it to downstream tasks. For
    spouts, ``emit`` may carry a ``message_id`` enrolling the tuple in the
    acking machinery; for bolts, emitted tuples are anchored to the input
    tuple being executed.
    """

    def __init__(
        self,
        component_name: str,
        task_index: int,
        declaration: OutputDeclaration,
        emit_fn: Callable[[StormTuple, Any], None],
        ack_fn: Callable[[StormTuple], None],
        fail_fn: Callable[[StormTuple], None],
        clock_now: Callable[[], float],
    ):
        self._component_name = component_name
        self._task_index = task_index
        self._declaration = declaration
        self._emit_fn = emit_fn
        self._ack_fn = ack_fn
        self._fail_fn = fail_fn
        self._clock_now = clock_now
        self._anchor_roots: frozenset[int] = frozenset()
        self._input_op_id: str | None = None
        self._emit_seq = 0

    def set_anchor_roots(self, roots: frozenset[int]):
        """Set the tuple-tree roots for tuples emitted during this execute."""
        self._anchor_roots = roots

    def set_input_context(self, roots: frozenset[int], op_id: str | None):
        """Install the input tuple's identity for the current execute.

        Emissions during the execute derive replay-stable op ids
        ``"{op_id}>{component}.{task}:{seq}"`` with ``seq`` counting
        emissions within this execute — so re-executing the same input
        tuple reproduces exactly the same downstream identities.
        """
        self._anchor_roots = roots
        self._input_op_id = op_id
        self._emit_seq = 0

    def emit(
        self,
        values: Sequence[Any],
        stream_id: str = DEFAULT_STREAM,
        message_id: Any = None,
        op_id: str | None = None,
    ) -> StormTuple:
        """Emit ``values`` on ``stream_id`` and return the created tuple.

        ``op_id`` gives the tuple an explicit replay-stable identity
        (spouts derive it from their source position). Bolts normally
        leave it ``None``: anchored emissions inherit a derived identity
        from the input tuple being executed.
        """
        stream = self._declaration.stream(stream_id)
        if op_id is None and self._input_op_id is not None:
            op_id = (
                f"{self._input_op_id}>"
                f"{self._component_name}.{self._task_index}:{self._emit_seq}"
            )
            self._emit_seq += 1
        tup = StormTuple(
            values,
            stream.fields,
            stream_id,
            self._component_name,
            self._task_index,
            root_ids=self._anchor_roots,
            timestamp=self._clock_now(),
            op_id=op_id,
        )
        self._emit_fn(tup, message_id)
        return tup

    def ack(self, tup: StormTuple):
        """Mark ``tup`` as fully processed by this component."""
        self._ack_fn(tup)

    def fail(self, tup: StormTuple):
        """Mark ``tup`` as failed, triggering replay from the spout."""
        self._fail_fn(tup)


class Component(ABC):
    """Shared machinery for spouts and bolts."""

    def declare_outputs(self, declarer: OutputDeclaration):
        """Declare output streams. Override in components that emit."""

    def prepare(self, context: TopologyContext, collector: OutputCollector):
        """Called once before any tuples flow. Override to set up state."""
        self.context = context
        self.collector = collector

    def cleanup(self):
        """Called when the topology is shut down."""

    # -- checkpoint protocol (repro.recovery) ------------------------------

    def snapshot_state(self) -> "dict | None":
        """Return this task's in-memory state for a checkpoint.

        Components whose state lives entirely in TDStore (rebuilt lazily
        through their caches) return ``None`` — there is nothing beyond
        the store to capture. Components with genuine process-local state
        (combiner buffers, open sessions, observation counters) return a
        picklable dict that :meth:`restore_state` can consume.
        """
        return None

    def restore_state(self, state: dict):
        """Reinstall a state dict captured by :meth:`snapshot_state`.

        Called after :meth:`prepare` on a freshly constructed instance
        during recovery; the default ignores the state, matching the
        default :meth:`snapshot_state` of ``None``.
        """


class Spout(Component):
    """A source of streams.

    Subclasses override :meth:`next_tuple` to emit zero or more tuples per
    invocation, returning ``True`` while more input may follow and
    ``False`` once the source is exhausted (an extension to Storm's API
    that lets the simulated cluster run a finite stream to completion).
    """

    def next_tuple(self) -> bool:
        """Emit pending tuples; return False when the source is exhausted."""
        return False

    def on_ack(self, message_id: Any):
        """Called when a tuple tree rooted at ``message_id`` completes."""

    def on_fail(self, message_id: Any):
        """Called when a tuple tree rooted at ``message_id`` fails."""


class Bolt(Component):
    """A stream transformer: consumes tuples, may emit new ones."""

    def execute(self, tup: StormTuple):
        """Process one input tuple."""
        raise NotImplementedError

    def tick(self, now: float):
        """Called periodically by the cluster (Storm's tick tuples).

        Components that buffer (e.g. the combiner of Section 5.3) flush
        from here.
        """


class FunctionBolt(Bolt):
    """Adapter turning a plain callable into a bolt, for tests and examples."""

    def __init__(
        self,
        fn: Callable[[StormTuple, OutputCollector], None],
        output_streams: Sequence[tuple[str, tuple[str, ...]]] = (),
    ):
        self._fn = fn
        self._output_streams = tuple(output_streams)

    def declare_outputs(self, declarer: OutputDeclaration):
        for stream_id, fields in self._output_streams:
            declarer.declare(fields, stream_id)

    def execute(self, tup: StormTuple):
        self._fn(tup, self.collector)


def validate_component_name(name: str):
    """Component names appear in XML configs and metrics; keep them simple."""
    if not name or not name.replace("_", "").replace("-", "").isalnum():
        raise TopologyError(f"invalid component name: {name!r}")
