"""Per-component and cluster-wide execution metrics.

The throughput and ablation benchmarks read these counters; they are also
how tests assert that e.g. a fields grouping really did pin a key to one
task.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class TaskMetrics:
    """Counters for a single task (component instance)."""

    emitted: int = 0
    executed: int = 0
    acked: int = 0
    failed: int = 0


@dataclass
class ClusterMetrics:
    """Counters aggregated by the local cluster during a run."""

    tasks: dict[tuple[str, int], TaskMetrics] = field(
        default_factory=lambda: defaultdict(TaskMetrics)
    )
    tuples_transferred: int = 0
    trees_completed: int = 0
    trees_failed: int = 0
    task_restarts: int = 0

    def task(self, component: str, task_index: int) -> TaskMetrics:
        return self.tasks[(component, task_index)]

    def component_emitted(self, component: str) -> int:
        return sum(
            m.emitted for (name, _), m in self.tasks.items() if name == component
        )

    def component_executed(self, component: str) -> int:
        return sum(
            m.executed for (name, _), m in self.tasks.items() if name == component
        )

    def executed_by_task(self, component: str) -> dict[int, int]:
        """Return task index -> executed count for one component."""
        return {
            idx: m.executed
            for (name, idx), m in sorted(self.tasks.items())
            if name == component
        }

    def total_executed(self) -> int:
        return sum(m.executed for m in self.tasks.values())

    def summary(self) -> str:
        lines = ["component/task  executed  emitted  acked  failed"]
        for (name, idx), m in sorted(self.tasks.items()):
            lines.append(
                f"{name}[{idx}]  {m.executed}  {m.emitted}  {m.acked}  {m.failed}"
            )
        lines.append(
            f"transferred={self.tuples_transferred} "
            f"trees_completed={self.trees_completed} trees_failed={self.trees_failed}"
        )
        return "\n".join(lines)
