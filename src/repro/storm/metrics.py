"""Per-component and cluster-wide execution metrics.

The throughput and ablation benchmarks read these counters; they are also
how tests assert that e.g. a fields grouping really did pin a key to one
task.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import asdict, dataclass, field

# bump when a counter is added/renamed; from_dict refuses other versions
METRICS_SCHEMA_VERSION = 1


@dataclass
class TaskMetrics:
    """Counters for a single task (component instance)."""

    emitted: int = 0
    executed: int = 0
    acked: int = 0
    failed: int = 0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TaskMetrics":
        return cls(**data)


@dataclass
class ClusterMetrics:
    """Counters aggregated by the local cluster during a run."""

    tasks: dict[tuple[str, int], TaskMetrics] = field(
        default_factory=lambda: defaultdict(TaskMetrics)
    )
    tuples_transferred: int = 0
    trees_completed: int = 0
    trees_failed: int = 0
    task_restarts: int = 0

    def task(self, component: str, task_index: int) -> TaskMetrics:
        return self.tasks[(component, task_index)]

    def component_emitted(self, component: str) -> int:
        return sum(
            m.emitted for (name, _), m in self.tasks.items() if name == component
        )

    def component_executed(self, component: str) -> int:
        return sum(
            m.executed for (name, _), m in self.tasks.items() if name == component
        )

    def executed_by_task(self, component: str) -> dict[int, int]:
        """Return task index -> executed count for one component."""
        return {
            idx: m.executed
            for (name, idx), m in sorted(self.tasks.items())
            if name == component
        }

    def total_executed(self) -> int:
        return sum(m.executed for m in self.tasks.values())

    def to_dict(self) -> dict:
        """JSON-safe form; task keys flatten to ``"component[index]"``."""
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "tasks": {
                f"{name}[{idx}]": m.to_dict()
                for (name, idx), m in sorted(self.tasks.items())
            },
            "tuples_transferred": self.tuples_transferred,
            "trees_completed": self.trees_completed,
            "trees_failed": self.trees_failed,
            "task_restarts": self.task_restarts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterMetrics":
        version = data.get("schema_version")
        if version != METRICS_SCHEMA_VERSION:
            raise ValueError(
                f"metrics schema version {version!r} is not "
                f"{METRICS_SCHEMA_VERSION}; refusing a lossy decode"
            )
        metrics = cls(
            tuples_transferred=data["tuples_transferred"],
            trees_completed=data["trees_completed"],
            trees_failed=data["trees_failed"],
            task_restarts=data["task_restarts"],
        )
        for key, counters in data["tasks"].items():
            name, _, rest = key.rpartition("[")
            metrics.tasks[(name, int(rest[:-1]))] = TaskMetrics.from_dict(
                counters
            )
        return metrics

    def summary(self) -> str:
        lines = ["component/task  executed  emitted  acked  failed"]
        for (name, idx), m in sorted(self.tasks.items()):
            lines.append(
                f"{name}[{idx}]  {m.executed}  {m.emitted}  {m.acked}  {m.failed}"
            )
        lines.append(
            f"transferred={self.tuples_transferred} "
            f"trees_completed={self.trees_completed} trees_failed={self.trees_failed}"
        )
        return "\n".join(lines)
