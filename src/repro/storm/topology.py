"""Topology construction and validation.

A topology is a DAG of spouts and bolts with grouped edges (Section 5.1).
Because every task needs its own component instance, components are
registered as zero-argument *factories*; the cluster calls the factory
``parallelism`` times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import TopologyError, TopologyValidationError
from repro.storm.component import Bolt, Component, Spout, validate_component_name
from repro.storm.grouping import Grouping
from repro.storm.streams import DEFAULT_STREAM, OutputDeclaration

ComponentFactory = Callable[[], Component]


@dataclass(frozen=True)
class Subscription:
    """An edge: consumer listens to ``source`` / ``stream_id`` via ``grouping``."""

    source: str
    stream_id: str
    grouping: Grouping


@dataclass
class ComponentSpec:
    """A registered component: factory, parallelism, declared outputs, edges."""

    name: str
    factory: ComponentFactory
    parallelism: int
    is_spout: bool
    declaration: OutputDeclaration = field(default_factory=OutputDeclaration)
    subscriptions: list[Subscription] = field(default_factory=list)


class BoltDeclarer:
    """Fluent helper returned by :meth:`TopologyBuilder.add_bolt`."""

    def __init__(self, spec: ComponentSpec, builder: "TopologyBuilder"):
        self._spec = spec
        self._builder = builder

    def grouping(
        self,
        source: str,
        grouping: Grouping,
        stream_id: str = DEFAULT_STREAM,
    ) -> "BoltDeclarer":
        """Subscribe this bolt to ``source``'s ``stream_id`` via ``grouping``."""
        self._spec.subscriptions.append(Subscription(source, stream_id, grouping))
        return self


class TopologyBuilder:
    """Assembles and validates a :class:`Topology`."""

    def __init__(self, name: str):
        if not name:
            raise TopologyError("topology name must be non-empty")
        self.name = name
        self._specs: dict[str, ComponentSpec] = {}

    def _register(
        self, name: str, factory: ComponentFactory, parallelism: int, is_spout: bool
    ) -> ComponentSpec:
        validate_component_name(name)
        if name in self._specs:
            raise TopologyError(f"component {name!r} registered twice")
        if parallelism <= 0:
            raise TopologyError(
                f"component {name!r} needs positive parallelism, got {parallelism}"
            )
        prototype = factory()
        expected = Spout if is_spout else Bolt
        if not isinstance(prototype, expected):
            raise TopologyError(
                f"factory for {name!r} built {type(prototype).__name__}, "
                f"expected a {expected.__name__}"
            )
        spec = ComponentSpec(name, factory, parallelism, is_spout)
        prototype.declare_outputs(spec.declaration)
        self._specs[name] = spec
        return spec

    def add_spout(
        self, name: str, factory: ComponentFactory, parallelism: int = 1
    ) -> ComponentSpec:
        return self._register(name, factory, parallelism, is_spout=True)

    def add_bolt(
        self, name: str, factory: ComponentFactory, parallelism: int = 1
    ) -> BoltDeclarer:
        spec = self._register(name, factory, parallelism, is_spout=False)
        return BoltDeclarer(spec, self)

    def build(self) -> "Topology":
        return Topology(self.name, dict(self._specs))


class Topology:
    """A validated, immutable topology ready for submission to a cluster."""

    def __init__(self, name: str, specs: dict[str, ComponentSpec]):
        self.name = name
        self.specs = specs
        self._validate()
        # consumers[source][stream_id] -> list of (consumer name, grouping)
        self.consumers: dict[str, dict[str, list[tuple[str, Grouping]]]] = {}
        for spec in specs.values():
            for sub in spec.subscriptions:
                per_stream = self.consumers.setdefault(sub.source, {})
                per_stream.setdefault(sub.stream_id, []).append(
                    (spec.name, sub.grouping)
                )

    def _validate(self):
        if not any(s.is_spout for s in self.specs.values()):
            raise TopologyValidationError(f"topology {self.name!r} has no spout")
        for spec in self.specs.values():
            if spec.is_spout and spec.subscriptions:
                raise TopologyValidationError(
                    f"spout {spec.name!r} cannot subscribe to streams"
                )
            if not spec.is_spout and not spec.subscriptions:
                raise TopologyValidationError(
                    f"bolt {spec.name!r} has no input subscription"
                )
            for sub in spec.subscriptions:
                source = self.specs.get(sub.source)
                if source is None:
                    raise TopologyValidationError(
                        f"bolt {spec.name!r} subscribes to unknown component "
                        f"{sub.source!r}"
                    )
                stream = source.declaration.streams.get(sub.stream_id)
                if stream is None:
                    raise TopologyValidationError(
                        f"bolt {spec.name!r} subscribes to undeclared stream "
                        f"{sub.source!r}/{sub.stream_id!r}; declared: "
                        f"{sorted(source.declaration.streams)}"
                    )
                sub.grouping.validate(stream.fields)
        self._check_acyclic()

    def _check_acyclic(self):
        """Reject cyclic topologies; the simulated scheduler requires a DAG."""
        edges: dict[str, set[str]] = {name: set() for name in self.specs}
        for spec in self.specs.values():
            for sub in spec.subscriptions:
                edges[sub.source].add(spec.name)
        state: dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(node: str, stack: tuple[str, ...]):
            mark = state.get(node)
            if mark == 1:
                return
            if mark == 0:
                cycle = " -> ".join(stack + (node,))
                raise TopologyValidationError(
                    f"topology {self.name!r} has a cycle: {cycle}"
                )
            state[node] = 0
            for nxt in sorted(edges[node]):
                visit(nxt, stack + (node,))
            state[node] = 1

        for name in sorted(self.specs):
            visit(name, ())

    def spouts(self) -> list[ComponentSpec]:
        return [s for s in self.specs.values() if s.is_spout]

    def bolts(self) -> list[ComponentSpec]:
        return [s for s in self.specs.values() if not s.is_spout]

    def total_tasks(self) -> int:
        return sum(s.parallelism for s in self.specs.values())

    def __repr__(self) -> str:
        return (
            f"Topology({self.name!r}, spouts={[s.name for s in self.spouts()]}, "
            f"bolts={[b.name for b in self.bolts()]})"
        )
