"""Stream declarations.

Components declare their output streams up front (Storm's
``declareOutputFields``): each stream has an id and an ordered field list.
The topology validator uses these declarations to check groupings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError

DEFAULT_STREAM = "default"


@dataclass(frozen=True)
class StreamDef:
    """An output stream declaration: id plus ordered field names."""

    stream_id: str
    fields: tuple[str, ...]

    def __post_init__(self):
        if not self.stream_id:
            raise TopologyError("stream_id must be non-empty")
        if not self.fields:
            raise TopologyError(f"stream {self.stream_id!r} declares no fields")
        if len(set(self.fields)) != len(self.fields):
            raise TopologyError(
                f"stream {self.stream_id!r} has duplicate fields {self.fields}"
            )


@dataclass
class OutputDeclaration:
    """The set of streams a component emits, keyed by stream id."""

    streams: dict[str, StreamDef] = field(default_factory=dict)

    def declare(self, fields: tuple[str, ...], stream_id: str = DEFAULT_STREAM):
        if stream_id in self.streams:
            raise TopologyError(f"stream {stream_id!r} declared twice")
        self.streams[stream_id] = StreamDef(stream_id, tuple(fields))

    def stream(self, stream_id: str) -> StreamDef:
        try:
            return self.streams[stream_id]
        except KeyError:
            raise TopologyError(
                f"stream {stream_id!r} was never declared; "
                f"declared: {sorted(self.streams)}"
            ) from None
