"""Tuple-tree acking.

Storm guarantees at-least-once processing by tracking each spout tuple's
tree of descendants; when every tuple in the tree is acked the spout is
notified. Storm uses XOR of random edge ids; in a single process we can
track the tree with an exact pending counter per root, which is simpler
and gives the same observable semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


@dataclass
class _Root:
    message_id: Any
    spout_name: str
    pending: int
    failed: bool = False


class Acker:
    """Tracks outstanding tuple trees for every anchored spout tuple."""

    def __init__(self):
        self._roots: dict[int, _Root] = {}
        self._next_id = 0
        self.completed = 0
        self.failed = 0
        self.anomalies = 0

    def register_root(self, message_id: Any, spout_name: str) -> int:
        """Register a new spout tuple; returns its internal root id."""
        root_id = self._next_id
        self._next_id += 1
        self._roots[root_id] = _Root(message_id, spout_name, pending=1)
        return root_id

    def on_emit(self, root_ids: frozenset[int]):
        """A bolt emitted a tuple anchored to ``root_ids``."""
        for root_id in root_ids:
            root = self._roots.get(root_id)
            if root is not None:
                root.pending += 1

    def on_ack(
        self,
        root_ids: frozenset[int],
        notify: Callable[[str, Any, bool], None],
    ):
        """A tuple belonging to ``root_ids`` was acked.

        ``notify(spout_name, message_id, ok)`` fires when a tree completes.
        """
        for root_id in root_ids:
            root = self._roots.get(root_id)
            if root is None:
                continue
            if root.pending <= 0:
                # an over-acked tree (a bolt double-acking, or a replayed
                # tuple acked against an already-settled root): raising
                # here would wedge the acker mid-notify and leak the
                # remaining roots, so count the anomaly and keep draining
                self.anomalies += 1
                continue
            root.pending -= 1
            if root.pending == 0:
                del self._roots[root_id]
                if root.failed:
                    self.failed += 1
                    notify(root.spout_name, root.message_id, False)
                else:
                    self.completed += 1
                    notify(root.spout_name, root.message_id, True)

    def on_fail(
        self,
        root_ids: frozenset[int],
        notify: Callable[[str, Any, bool], None],
    ):
        """A tuple failed: fail its trees immediately (Storm semantics)."""
        for root_id in root_ids:
            root = self._roots.pop(root_id, None)
            if root is None:
                continue
            self.failed += 1
            notify(root.spout_name, root.message_id, False)

    def pending_trees(self) -> int:
        return len(self._roots)
