"""A simulated Storm cluster.

Reproduces the structure of Figure 1: a Nimbus assigns each topology's
tasks to worker slots hosted by supervisors; tasks exchange tuples through
grouped streams. Execution is single-process and deterministic — a
discrete-event loop polls spouts and drains bolt input queues — but the
semantics the paper depends on are preserved:

* a fields grouping delivers all tuples with one key to one task,
* each task is a separate component instance with private state,
* tasks (and whole workers) can be killed and restarted, losing any state
  not kept in TDStore, which is exactly the failure model of Section 3.3.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ClusterError, ClusterStateError
from repro.storm.acking import Acker
from repro.storm.component import (
    Bolt,
    Component,
    OutputCollector,
    Spout,
    TopologyContext,
)
from repro.storm.metrics import ClusterMetrics
from repro.storm.topology import Topology
from repro.storm.tuples import StormTuple
from repro.utils.clock import SimClock


@dataclass
class WorkerSlot:
    """A worker process slot on a supervisor (Figure 1)."""

    supervisor_id: int
    slot_index: int
    assigned: list[tuple[str, str, int]] = field(default_factory=list)

    @property
    def worker_id(self) -> str:
        return f"supervisor-{self.supervisor_id}/worker-{self.slot_index}"


class Nimbus:
    """Assigns tasks to worker slots round-robin, like Storm's scheduler."""

    def __init__(self, num_supervisors: int, slots_per_supervisor: int):
        if num_supervisors <= 0 or slots_per_supervisor <= 0:
            raise ClusterError(
                "cluster needs at least one supervisor with one slot"
            )
        self.slots = [
            WorkerSlot(sup, slot)
            for sup in range(num_supervisors)
            for slot in range(slots_per_supervisor)
        ]
        self._cursor = 0

    def assign(self, topology: Topology) -> dict[tuple[str, int], WorkerSlot]:
        """Assign every task of ``topology`` to a slot; returns the map."""
        assignment: dict[tuple[str, int], WorkerSlot] = {}
        for spec in sorted(topology.specs.values(), key=lambda s: s.name):
            for task_index in range(spec.parallelism):
                slot = self.slots[self._cursor % len(self.slots)]
                self._cursor += 1
                slot.assigned.append((topology.name, spec.name, task_index))
                assignment[(spec.name, task_index)] = slot
        return assignment


class _Task:
    """One running component instance plus its input queue."""

    def __init__(
        self,
        component_name: str,
        task_index: int,
        instance: Component,
        collector: OutputCollector,
    ):
        self.component_name = component_name
        self.task_index = task_index
        self.instance = instance
        self.collector = collector
        self.queue: deque[StormTuple] = deque()
        self.spout_done = False


class _RunningTopology:
    """All runtime state for one submitted topology."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self.tasks: dict[tuple[str, int], _Task] = {}
        self.acker = Acker()
        self.metrics = ClusterMetrics()

    def pending_tuples(self) -> int:
        return sum(len(t.queue) for t in self.tasks.values())

    def spouts_active(self) -> bool:
        return any(
            not task.spout_done
            for task in self.tasks.values()
            if isinstance(task.instance, Spout)
        )


class LocalCluster:
    """Runs topologies to completion over a simulated clock.

    Parameters
    ----------
    clock:
        The simulated clock shared with spouts and state stores.
    num_supervisors, slots_per_supervisor:
        Shape of the simulated machine pool (Figure 1).
    tick_interval:
        If set, every bolt's :meth:`~repro.storm.component.Bolt.tick` is
        invoked whenever the simulated clock crosses a multiple of this
        interval — Storm's tick-tuple mechanism, used by the combiner.
    """

    def __init__(
        self,
        clock: SimClock | None = None,
        num_supervisors: int = 4,
        slots_per_supervisor: int = 4,
        tick_interval: float | None = None,
    ):
        self.clock = clock if clock is not None else SimClock()
        self.nimbus = Nimbus(num_supervisors, slots_per_supervisor)
        self.tick_interval = tick_interval
        self._running: dict[str, _RunningTopology] = {}
        self._assignment: dict[tuple[str, str, int], WorkerSlot] = {}
        self._next_tick = (
            None if tick_interval is None else self.clock.now() + tick_interval
        )
        self._barrier_hooks: list[Callable[[int], None]] = []
        self._barrier_rounds = 0
        self._execute_hooks: list[Callable[[str], None]] = []

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(self, topology: Topology) -> ClusterMetrics:
        """Instantiate and prepare all tasks of ``topology``."""
        if topology.name in self._running:
            raise ClusterStateError(
                f"topology {topology.name!r} already submitted"
            )
        run = _RunningTopology(topology)
        self._running[topology.name] = run
        for (name, index), slot in self.nimbus.assign(topology).items():
            self._assignment[(topology.name, name, index)] = slot
        for spec in topology.specs.values():
            for task_index in range(spec.parallelism):
                self._start_task(run, spec.name, task_index)
        return run.metrics

    def _start_task(self, run: _RunningTopology, name: str, task_index: int):
        spec = run.topology.specs[name]
        instance = spec.factory()
        collector = self._make_collector(run, spec.name, task_index)
        task = _Task(spec.name, task_index, instance, collector)
        run.tasks[(name, task_index)] = task
        context = TopologyContext(
            spec.name, task_index, spec.parallelism, run.topology.name
        )
        instance.prepare(context, collector)

    def _make_collector(
        self, run: _RunningTopology, name: str, task_index: int
    ) -> OutputCollector:
        spec = run.topology.specs[name]

        def emit_fn(tup: StormTuple, message_id: Any):
            if spec.is_spout and message_id is not None:
                root = run.acker.register_root(message_id, name)
                tup.root_ids = frozenset({root})
            elif tup.root_ids:
                run.acker.on_emit(tup.root_ids)
            run.metrics.task(name, task_index).emitted += 1
            self._route(run, tup)

        def ack_fn(tup: StormTuple):
            run.metrics.task(name, task_index).acked += 1
            run.acker.on_ack(tup.root_ids, self._notify(run))

        def fail_fn(tup: StormTuple):
            run.metrics.task(name, task_index).failed += 1
            run.acker.on_fail(tup.root_ids, self._notify(run))

        return OutputCollector(
            name,
            task_index,
            spec.declaration,
            emit_fn,
            ack_fn,
            fail_fn,
            self.clock.now,
        )

    def _notify(self, run: _RunningTopology):
        def notify(spout_name: str, message_id: Any, ok: bool):
            if ok:
                run.metrics.trees_completed += 1
            else:
                run.metrics.trees_failed += 1
            for (name, _), task in run.tasks.items():
                if name == spout_name and isinstance(task.instance, Spout):
                    if ok:
                        task.instance.on_ack(message_id)
                    else:
                        task.instance.on_fail(message_id)
                    break

        return notify

    def _route(self, run: _RunningTopology, tup: StormTuple):
        """Deliver ``tup`` to every subscribed consumer task."""
        per_stream = run.topology.consumers.get(tup.source_component, {})
        for consumer_name, grouping in per_stream.get(tup.stream_id, ()):
            spec = run.topology.specs[consumer_name]
            for target in grouping.select_tasks(tup, spec.parallelism):
                run.tasks[(consumer_name, target)].queue.append(tup)
                run.metrics.tuples_transferred += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run_until_idle(self, max_rounds: int | None = None) -> int:
        """Poll spouts and drain bolts until nothing remains; return rounds."""
        rounds = 0
        while True:
            progressed = self.step()
            rounds += 1
            if not progressed:
                break
            if max_rounds is not None and rounds >= max_rounds:
                break
        self.flush_ticks()
        self.drain()
        return rounds

    def step(self) -> bool:
        """One scheduling round: poll every active spout once, then drain.

        Returns True if any spout still reported pending input or any tuple
        was processed.
        """
        progressed = False
        for run in self._running.values():
            for task in list(run.tasks.values()):
                if isinstance(task.instance, Spout) and not task.spout_done:
                    more = task.instance.next_tuple()
                    if not more:
                        task.spout_done = True
                    else:
                        progressed = True
        if self.drain() > 0:
            progressed = True
        # barrier point: every input queue has drained, so the system state
        # is a pure function of the source positions consumed so far — the
        # consistency point checkpoint and fault-injection hooks rely on
        self._barrier_rounds += 1
        for hook in list(self._barrier_hooks):
            hook(self._barrier_rounds)
        return progressed

    def drain(self) -> int:
        """Process queued tuples to quiescence; returns tuples executed."""
        executed = 0
        while True:
            batch = 0
            for run in self._running.values():
                for key in list(run.tasks):
                    # re-look-up per tuple: an execute hook may kill_task
                    # mid-drain, swapping in a fresh instance that shares
                    # the old queue — the dead instance must not keep
                    # processing it
                    while True:
                        task = run.tasks.get(key)
                        if task is None or not task.queue:
                            break
                        tup = task.queue.popleft()
                        self._execute(run, task, tup)
                        batch += 1
            self._maybe_tick()
            if batch == 0:
                return executed
            executed += batch

    def _execute(self, run: _RunningTopology, task: _Task, tup: StormTuple):
        bolt = task.instance
        if not isinstance(bolt, Bolt):
            raise ClusterStateError(
                f"tuple routed to non-bolt {task.component_name!r}"
            )
        run.metrics.task(task.component_name, task.task_index).executed += 1
        task.collector.set_input_context(tup.root_ids, tup.op_id)
        try:
            bolt.execute(tup)
        except Exception:
            task.collector.fail(tup)
            raise
        finally:
            task.collector.set_input_context(frozenset(), None)
        if not getattr(bolt, "manual_ack", False):
            task.collector.ack(tup)
        for hook in list(self._execute_hooks):
            hook(run.topology.name)

    def _maybe_tick(self):
        if self._next_tick is None:
            return
        now = self.clock.now()
        while now >= self._next_tick:
            self._tick_all(self._next_tick)
            self._next_tick += self.tick_interval

    def flush_ticks(self):
        """Force a tick on every bolt (used at end-of-stream to flush buffers)."""
        self._tick_all(self.clock.now())

    def _tick_all(self, now: float):
        for run in self._running.values():
            for task in run.tasks.values():
                if isinstance(task.instance, Bolt):
                    task.instance.tick(now)

    # ------------------------------------------------------------------
    # checkpoint support (repro.recovery)
    # ------------------------------------------------------------------

    def add_barrier_hook(self, hook: Callable[[int], None]):
        """Register ``hook(round)`` to fire at each quiescent barrier.

        Hooks run at the end of every scheduling round, after all input
        queues have drained — the point where a checkpoint is consistent
        and where the fault injector strikes. A hook may raise
        :class:`~repro.errors.SimulatedCrash` to abort the run loop.
        """
        self._barrier_hooks.append(hook)

    def remove_barrier_hook(self, hook: Callable[[int], None]):
        if hook in self._barrier_hooks:
            self._barrier_hooks.remove(hook)

    def add_execute_hook(self, hook: Callable[[str], None]):
        """Register ``hook(topology_name)`` to fire after every bolt execute.

        Unlike barrier hooks, execute hooks fire mid-drain, while tuple
        trees are still open — the point where a worker crash interrupts
        processing. The fault injector uses this to kill tasks
        mid-tuple-tree (``worker_kill_midtree``).
        """
        self._execute_hooks.append(hook)

    def remove_execute_hook(self, hook: Callable[[str], None]):
        if hook in self._execute_hooks:
            self._execute_hooks.remove(hook)

    def reactivate_spouts(self, topology_name: str):
        """Clear the done flag on every spout of ``topology_name``.

        After a source rewind (e.g. a consumer seeking back for a
        duplicate-delivery fault) spouts that had reported exhaustion
        have input again; without this the run loop would never poll
        them.
        """
        run = self._running.get(topology_name)
        if run is None:
            raise ClusterStateError(f"unknown topology {topology_name!r}")
        for task in run.tasks.values():
            if isinstance(task.instance, Spout):
                task.spout_done = False

    @property
    def barrier_rounds(self) -> int:
        return self._barrier_rounds

    def capture_component_states(
        self, topology_name: str
    ) -> dict[tuple[str, int], dict]:
        """Snapshot the process-local state of every stateful task.

        Tasks whose :meth:`~repro.storm.component.Component.snapshot_state`
        returns ``None`` (state entirely in TDStore) are omitted.
        """
        run = self._running.get(topology_name)
        if run is None:
            raise ClusterStateError(f"unknown topology {topology_name!r}")
        states: dict[tuple[str, int], dict] = {}
        for key, task in run.tasks.items():
            state = task.instance.snapshot_state()
            if state is not None:
                states[key] = state
        return states

    def restore_component_states(
        self, topology_name: str, states: dict[tuple[str, int], dict]
    ):
        """Reinstall captured task states into a freshly submitted topology.

        The topology must have the same component names and task counts
        as at checkpoint time; recovery does not resize topologies.
        """
        run = self._running.get(topology_name)
        if run is None:
            raise ClusterStateError(f"unknown topology {topology_name!r}")
        for key, state in states.items():
            task = run.tasks.get(key)
            if task is None:
                raise ClusterStateError(
                    f"checkpoint names task {key[0]!r}[{key[1]}] which does "
                    f"not exist in {topology_name!r}; recovery requires the "
                    "same topology shape"
                )
            task.instance.restore_state(state)

    @property
    def next_tick(self) -> float | None:
        """The simulated time of the next scheduled tick, if ticking."""
        return self._next_tick

    def set_next_tick(self, when: float | None):
        """Restore the tick schedule from a checkpoint.

        Without this, a recovered cluster would phase-shift its ticks to
        ``recovery_time + interval``, flushing combiner buffers at
        different moments than the original run and breaking exactness.
        """
        if when is not None and self.tick_interval is None:
            raise ClusterStateError(
                "cannot restore a tick schedule on a cluster without a "
                "tick_interval"
            )
        self._next_tick = when

    # ------------------------------------------------------------------
    # failure injection (Section 3.1 / 3.3 failure model)
    # ------------------------------------------------------------------

    def kill_task(self, topology_name: str, component: str, task_index: int):
        """Kill one task and restart it fresh: in-memory state is lost.

        Queued tuples survive (Storm replays pending tuples to the new
        executor); any state the component kept outside TDStore is gone.
        """
        run = self._running.get(topology_name)
        if run is None:
            raise ClusterStateError(f"unknown topology {topology_name!r}")
        old = run.tasks.get((component, task_index))
        if old is None:
            raise ClusterStateError(
                f"unknown task {component!r}[{task_index}] in {topology_name!r}"
            )
        pending = old.queue
        was_done = old.spout_done
        self._start_task(run, component, task_index)
        new_task = run.tasks[(component, task_index)]
        new_task.queue = pending
        new_task.spout_done = was_done
        run.metrics.task_restarts += 1

    def rebalance(self, topology_name: str, component: str, parallelism: int):
        """Change a component's task count at runtime (Storm's rebalance).

        All existing tasks of the component are torn down and replaced;
        their queued tuples are re-routed through the component's
        groupings against the new task count. Components that keep their
        state in TDStore (the TencentRec design, §5.1) survive this
        unchanged — which is what makes the Section 7 auto-parallelism
        future work safe to apply live.
        """
        run = self._running.get(topology_name)
        if run is None:
            raise ClusterStateError(f"unknown topology {topology_name!r}")
        spec = run.topology.specs.get(component)
        if spec is None:
            raise ClusterStateError(
                f"unknown component {component!r} in {topology_name!r}"
            )
        if spec.is_spout:
            raise ClusterStateError(
                "spouts cannot be rebalanced: a fresh instance would "
                "replay its source from the beginning"
            )
        if parallelism <= 0:
            raise ClusterStateError(
                f"parallelism must be positive: {parallelism}"
            )
        pending: list[StormTuple] = []
        was_done = True
        for task_index in range(spec.parallelism):
            task = run.tasks.pop((component, task_index))
            pending.extend(task.queue)
            was_done = was_done and task.spout_done
            task.instance.cleanup()
            self._assignment.pop(
                (topology_name, component, task_index), None
            )
        spec.parallelism = parallelism
        for task_index in range(parallelism):
            slot = self.nimbus.slots[
                self.nimbus._cursor % len(self.nimbus.slots)
            ]
            self.nimbus._cursor += 1
            slot.assigned.append((topology_name, component, task_index))
            self._assignment[(topology_name, component, task_index)] = slot
            self._start_task(run, component, task_index)
            run.tasks[(component, task_index)].spout_done = was_done
        # re-route the tuples that were waiting in the old queues: find
        # the grouping each tuple arrived through and replay the routing
        for tup in pending:
            per_stream = run.topology.consumers.get(tup.source_component, {})
            for consumer_name, grouping in per_stream.get(tup.stream_id, ()):
                if consumer_name != component:
                    continue
                for target in grouping.select_tasks(tup, parallelism):
                    run.tasks[(component, target)].queue.append(tup)

    def kill_worker(self, worker_id: str):
        """Kill every task assigned to one worker slot (machine failure)."""
        victims = [
            key
            for key, slot in self._assignment.items()
            if slot.worker_id == worker_id
        ]
        if not victims:
            raise ClusterStateError(f"no tasks assigned to worker {worker_id!r}")
        for topology_name, component, task_index in victims:
            self.kill_task(topology_name, component, task_index)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def metrics(self, topology_name: str) -> ClusterMetrics:
        return self._running[topology_name].metrics

    def pending_tuples(self, topology_name: str) -> int:
        """Tuples waiting in input queues across the whole topology."""
        run = self._running.get(topology_name)
        if run is None:
            raise ClusterStateError(f"unknown topology {topology_name!r}")
        return run.pending_tuples()

    def queue_depths(self, topology_name: str) -> dict[str, int]:
        """component name -> total queued tuples across its tasks.

        The autoscaler's primary pressure signal: a component whose
        queues keep growing is under-parallelised.
        """
        run = self._running.get(topology_name)
        if run is None:
            raise ClusterStateError(f"unknown topology {topology_name!r}")
        depths: dict[str, int] = {}
        for (name, _), task in run.tasks.items():
            depths[name] = depths.get(name, 0) + len(task.queue)
        return depths

    def parallelism_of(self, topology_name: str, component: str) -> int:
        run = self._running.get(topology_name)
        if run is None:
            raise ClusterStateError(f"unknown topology {topology_name!r}")
        spec = run.topology.specs.get(component)
        if spec is None:
            raise ClusterStateError(
                f"unknown component {component!r} in {topology_name!r}"
            )
        return spec.parallelism

    def exactly_once_stats(self, topology_name: str) -> dict[str, dict]:
        """Per-task dedup-ledger statistics for monitoring.

        Returns ``{"component[task]": ledger_stats_dict}`` for every task
        whose instance exposes ``ledger_stats()`` (i.e. subclasses of
        :class:`~repro.storm.reliability.ExactlyOnceBolt`).
        """
        run = self._running.get(topology_name)
        if run is None:
            raise ClusterStateError(f"unknown topology {topology_name!r}")
        stats: dict[str, dict] = {}
        for (name, index), task in sorted(run.tasks.items()):
            ledger_stats = getattr(task.instance, "ledger_stats", None)
            if callable(ledger_stats):
                stats[f"{name}[{index}]"] = ledger_stats()
        return stats

    def acker_stats(self, topology_name: str) -> dict[str, int]:
        """Tuple-tree accounting for monitoring.

        ``anomalies`` counts over-acked trees (a bolt double-acking, or
        an ack against an already-settled root) the acker absorbed
        instead of raising — a genuine double-ack bug surfaces only
        through this counter, so the monitor alerts on its delta.
        """
        run = self._running.get(topology_name)
        if run is None:
            raise ClusterStateError(f"unknown topology {topology_name!r}")
        acker = run.acker
        return {
            "completed": acker.completed,
            "failed": acker.failed,
            "anomalies": acker.anomalies,
            "pending": acker.pending_trees(),
        }

    def task_instance(
        self, topology_name: str, component: str, task_index: int
    ) -> Component:
        """Expose a running component instance (for tests and result reads)."""
        return self._running[topology_name].tasks[(component, task_index)].instance

    def assignment_of(
        self, topology_name: str, component: str, task_index: int
    ) -> str:
        return self._assignment[(topology_name, component, task_index)].worker_id

    def kill_topology(self, topology_name: str):
        run = self._running.pop(topology_name, None)
        if run is None:
            raise ClusterStateError(f"unknown topology {topology_name!r}")
        for task in run.tasks.values():
            task.instance.cleanup()
        self._assignment = {
            key: slot
            for key, slot in self._assignment.items()
            if key[0] != topology_name
        }
