"""Generate Storm topologies from XML configuration files.

Section 5.1 and Figure 7: to deploy a new application, TencentRec
engineers write an XML file naming the spouts and bolts and how they are
composed; a module turns the XML into a Storm topology. This is that
module. Component classes are looked up in a caller-supplied registry so
applications can mix library bolts with their own.

Supported document shape (matching Figure 7)::

    <topology name="cf-test">
      <spout name="spout" class="Spout" parallelism="2">
        <output_fields>
          <stream_id>user_action</stream_id>
          <fields>user, item, action</fields>
        </output_fields>
      </spout>
      <bolts>
        <bolt name="pretreatment" class="Pretreatment" parallelism="4">
          <grouping type="field">
            <fields>user</fields>
            <stream_id>user_action</stream_id>
            <source>spout</source>
          </grouping>
        </bolt>
      </bolts>
    </topology>

``<source>`` defaults to the previous component in document order, which
reproduces the linear pipeline of the paper's example without verbosity.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Callable, Mapping

from repro.errors import ConfigurationError
from repro.storm.component import Component
from repro.storm.grouping import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    Grouping,
    ShuffleGrouping,
)
from repro.storm.streams import DEFAULT_STREAM
from repro.storm.topology import Topology, TopologyBuilder

ComponentRegistry = Mapping[str, Callable[[], Component]]

_GROUPING_TYPES = ("field", "fields", "shuffle", "global", "all")


def _parse_fields(text: str | None) -> tuple[str, ...]:
    if not text:
        return ()
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _build_grouping(node: ET.Element) -> Grouping:
    gtype = node.get("type", "shuffle").lower()
    if gtype in ("field", "fields"):
        fields = _parse_fields(node.findtext("fields"))
        if not fields:
            raise ConfigurationError("field grouping requires <fields>")
        return FieldsGrouping(fields)
    if gtype == "shuffle":
        return ShuffleGrouping()
    if gtype == "global":
        return GlobalGrouping()
    if gtype == "all":
        return AllGrouping()
    raise ConfigurationError(
        f"unknown grouping type {gtype!r}; expected one of {_GROUPING_TYPES}"
    )


def _resolve_factory(
    class_name: str, registry: ComponentRegistry
) -> Callable[[], Component]:
    try:
        return registry[class_name]
    except KeyError:
        raise ConfigurationError(
            f"component class {class_name!r} not in registry; "
            f"known: {sorted(registry)}"
        ) from None


def _check_declared_outputs(node: ET.Element, factory: Callable[[], Component]):
    """Validate any <output_fields> blocks against the component's declaration."""
    from repro.storm.streams import OutputDeclaration

    declared = OutputDeclaration()
    factory().declare_outputs(declared)
    for out in node.findall("output_fields"):
        stream_id = (out.findtext("stream_id") or DEFAULT_STREAM).strip()
        fields = _parse_fields(out.findtext("fields"))
        stream = declared.streams.get(stream_id)
        if stream is None:
            raise ConfigurationError(
                f"XML declares stream {stream_id!r} but component emits "
                f"{sorted(declared.streams)}"
            )
        if fields and stream.fields != fields:
            raise ConfigurationError(
                f"XML fields {fields} disagree with component's declared "
                f"fields {stream.fields} for stream {stream_id!r}"
            )


def topology_from_xml(xml_text: str, registry: ComponentRegistry) -> Topology:
    """Parse ``xml_text`` and build a validated :class:`Topology`."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise ConfigurationError(f"invalid topology XML: {exc}") from exc
    if root.tag != "topology":
        raise ConfigurationError(f"root element must be <topology>, got <{root.tag}>")
    name = root.get("name")
    if not name:
        raise ConfigurationError("<topology> requires a name attribute")

    builder = TopologyBuilder(name)
    previous: str | None = None

    spouts = root.findall("spout")
    if not spouts:
        raise ConfigurationError("topology XML declares no <spout>")
    for node in spouts:
        sname = node.get("name")
        cls = node.get("class")
        if not sname or not cls:
            raise ConfigurationError("<spout> requires name and class attributes")
        factory = _resolve_factory(cls, registry)
        _check_declared_outputs(node, factory)
        builder.add_spout(sname, factory, int(node.get("parallelism", "1")))
        previous = sname

    bolts_parent = root.find("bolts")
    bolt_nodes = (
        bolts_parent.findall("bolt") if bolts_parent is not None else []
    ) + root.findall("bolt")
    for node in bolt_nodes:
        bname = node.get("name")
        cls = node.get("class")
        if not bname or not cls:
            raise ConfigurationError("<bolt> requires name and class attributes")
        factory = _resolve_factory(cls, registry)
        _check_declared_outputs(node, factory)
        declarer = builder.add_bolt(bname, factory, int(node.get("parallelism", "1")))
        groupings = node.findall("grouping")
        if not groupings:
            if previous is None:
                raise ConfigurationError(
                    f"bolt {bname!r} has no grouping and no predecessor"
                )
            declarer.grouping(previous, ShuffleGrouping())
        for gnode in groupings:
            source = (gnode.findtext("source") or "").strip() or previous
            if source is None:
                raise ConfigurationError(
                    f"bolt {bname!r} grouping needs a <source>"
                )
            stream_id = (gnode.findtext("stream_id") or DEFAULT_STREAM).strip()
            declarer.grouping(source, _build_grouping(gnode), stream_id)
        previous = bname

    return builder.build()


def topology_from_xml_file(path: str, registry: ComponentRegistry) -> Topology:
    """Read ``path`` and delegate to :func:`topology_from_xml`."""
    with open(path, encoding="utf-8") as handle:
        return topology_from_xml(handle.read(), registry)
