"""Stream groupings: how tuples are routed from producers to consumer tasks.

The paper's incremental CF relies on *fields grouping* ("stream grouping"
in Section 5.2): all tuples sharing a key go to the same task, so a single
task owns each item pair's counters and updates are race-free. We implement
the four groupings TencentRec uses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.errors import TopologyError
from repro.storm.tuples import StormTuple
from repro.utils.hashing import stable_hash


class Grouping(ABC):
    """Strategy mapping a tuple onto one or more consumer task indices."""

    @abstractmethod
    def select_tasks(self, tup: StormTuple, num_tasks: int) -> Sequence[int]:
        """Return the task indices (within the consumer) to deliver to."""

    def validate(self, upstream_fields: tuple[str, ...]):
        """Check the grouping is consistent with the upstream stream schema."""


class FieldsGrouping(Grouping):
    """Route by hash of selected field values: same key, same task."""

    def __init__(self, fields: Sequence[str]):
        if not fields:
            raise TopologyError("fields grouping needs at least one field")
        self.fields = tuple(fields)

    def select_tasks(self, tup: StormTuple, num_tasks: int) -> Sequence[int]:
        key = tup.select(self.fields)
        return (stable_hash(key) % num_tasks,)

    def validate(self, upstream_fields: tuple[str, ...]):
        missing = [f for f in self.fields if f not in upstream_fields]
        if missing:
            raise TopologyError(
                f"fields grouping on {missing} not present in upstream "
                f"stream fields {upstream_fields}"
            )

    def __repr__(self) -> str:
        return f"FieldsGrouping({list(self.fields)})"


class ShuffleGrouping(Grouping):
    """Distribute tuples across tasks uniformly (deterministic round-robin).

    Storm shuffles randomly; we use a seeded per-edge round-robin so runs
    are reproducible while preserving the load-balancing behaviour.
    """

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)
        self._next = int(self._rng.integers(0, 2**31))

    def select_tasks(self, tup: StormTuple, num_tasks: int) -> Sequence[int]:
        task = self._next % num_tasks
        self._next += 1
        return (task,)

    def __repr__(self) -> str:
        return "ShuffleGrouping()"


class GlobalGrouping(Grouping):
    """Send every tuple to the lowest-indexed task."""

    def select_tasks(self, tup: StormTuple, num_tasks: int) -> Sequence[int]:
        return (0,)

    def __repr__(self) -> str:
        return "GlobalGrouping()"


class AllGrouping(Grouping):
    """Replicate every tuple to all tasks (used for config/broadcast)."""

    def select_tasks(self, tup: StormTuple, num_tasks: int) -> Sequence[int]:
        return tuple(range(num_tasks))

    def __repr__(self) -> str:
        return "AllGrouping()"
