"""Stream-driven cache invalidation.

A TTL alone makes a result cache trade staleness for hit rate blindly:
too short and the cache stops paying, too long and a user keeps seeing
recommendations computed before their last click. TencentRec's whole
point is that the Eq 6–8 state updates land in real time — so the
serving caches are invalidated by the *stream*: every stateful bolt
publishes a touched-key notification after it commits, and the caches
drop exactly the answers that depended on that key.

The bus is synchronous and in-process (like everything in this
simulation); its unit of delivery is ``(kind, key)`` where ``kind``
names the state family:

``"user"``
    the user's history/recent list changed (UserHistoryBolt committed);
``"item"``
    the item's similar-items list changed (SimListBolt committed);
``"group"``
    the group's hot-item counters changed (GroupCountBolt committed);
``"ctr"``
    the item's CTR value changed (CtrBolt wrote a new value).
"""

from __future__ import annotations

from typing import Callable

Subscriber = Callable[[str, str], None]

KINDS = ("user", "item", "group", "ctr")


class InvalidationBus:
    """Fan-out of touched-key notifications from bolts to caches."""

    def __init__(self):
        self._subscribers: list[Subscriber] = []
        self.published = 0
        self.delivered = 0
        self.by_kind: dict[str, int] = {}

    def subscribe(self, subscriber: Subscriber):
        self._subscribers.append(subscriber)

    def publish(self, kind: str, key: str):
        """Notify every subscriber that ``kind``-state ``key`` changed.

        Bolts call this *after* their commit point (``put_once`` landed),
        so a subscriber acting on the notification re-reads
        post-commit state — never a value the replay could still change.
        """
        self.published += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        for subscriber in self._subscribers:
            subscriber(kind, key)
            self.delivered += 1
