"""Request coalescing for the serving path.

Under heavy traffic the same query shows up many times concurrently —
hot users refreshing, fan-out from a shared page — and the naive path
recomputes each copy. The coalescer does two things the batch-query
architecture (arXiv:2409.00400) treats as one mechanism:

* **dedup**: identical in-flight requests ``(user, n)`` collapse onto
  one computation whose answer every submitter shares;
* **micro-batching**: distinct concurrent requests drain together, up
  to ``max_batch`` at a time, so the executor can fan them out as one
  shared multi-get pipeline instead of per-query store reads.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError


class QueryCoalescer:
    """Collects concurrent requests into deduplicated micro-batches."""

    def __init__(self, max_batch: int = 64):
        if max_batch <= 0:
            raise ConfigurationError(f"max_batch must be positive: {max_batch}")
        self._max_batch = max_batch
        # insertion-ordered set: first submitter fixes batch position
        self._pending: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.submitted = 0
        self.coalesced = 0
        self.batches = 0
        self.batched_requests = 0
        self.batch_sizes: dict[int, int] = {}

    def submit(self, user: str, n: int):
        """Queue one request; an identical pending one absorbs it."""
        self.submitted += 1
        request = (user, n)
        if request in self._pending:
            self.coalesced += 1
        else:
            self._pending[request] = None

    def pending(self) -> int:
        return len(self._pending)

    def drain(self) -> list[tuple[str, int]]:
        """Take the next micro-batch (up to ``max_batch`` unique requests)."""
        batch: list[tuple[str, int]] = []
        while self._pending and len(batch) < self._max_batch:
            batch.append(self._pending.popitem(last=False)[0])
        if batch:
            self.batches += 1
            self.batched_requests += len(batch)
            self.batch_sizes[len(batch)] = (
                self.batch_sizes.get(len(batch), 0) + 1
            )
        return batch

    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def stats(self) -> dict[str, object]:
        return {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "mean_batch_size": self.mean_batch_size(),
            "batch_sizes": dict(self.batch_sizes),
        }
