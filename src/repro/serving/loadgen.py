"""Closed-loop load generation for the serving benchmark.

A closed loop issues the next query only after the previous one
answers, so measured queries/sec is *sustained* throughput — the
server is never allowed to queue its way to a flattering number — and
every latency sample is a real response time, not a submission
timestamp. User choice is Zipf-distributed: real query traffic
concentrates on hot users, which is exactly the regime where the
result cache and the coalescer earn their keep, and a uniform draw
would understate both.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 on no samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


@dataclass
class LoadReport:
    """Result of one closed-loop run."""

    queries: int
    duration: float
    latencies: list[float] = field(repr=False, default_factory=list)
    tier_counts: dict[str, int] = field(default_factory=dict)

    @property
    def qps(self) -> float:
        return self.queries / self.duration if self.duration > 0 else 0.0

    @property
    def p50(self) -> float:
        return percentile(self.latencies, 0.50)

    @property
    def p99(self) -> float:
        return percentile(self.latencies, 0.99)

    def summary(self) -> dict[str, object]:
        return {
            "queries": self.queries,
            "duration_s": round(self.duration, 4),
            "qps": round(self.qps, 1),
            "p50_ms": round(self.p50 * 1e3, 4),
            "p99_ms": round(self.p99 * 1e3, 4),
            "tiers": dict(self.tier_counts),
        }


class ClosedLoopLoadGenerator:
    """Drives a serving callable with a Zipf-skewed user stream.

    ``users`` is the population to draw from; ``zipf_s`` is the Zipf
    exponent over the (shuffled) popularity ranks — ``s≈1.1`` gives the
    classic few-hot-users/long-tail shape.
    """

    def __init__(
        self,
        users: list[str],
        n: int = 10,
        seed: int = 0,
        zipf_s: float = 1.1,
    ):
        self._users = list(users)
        self._n = n
        self._rng = random.Random(seed)
        ranked = list(self._users)
        self._rng.shuffle(ranked)
        weights = [1.0 / (rank + 1) ** zipf_s for rank in range(len(ranked))]
        self._ranked = ranked
        self._weights = weights

    def next_user(self) -> str:
        return self._rng.choices(self._ranked, weights=self._weights, k=1)[0]

    def query_stream(self, num_queries: int) -> list[tuple[str, int]]:
        return [(self.next_user(), self._n) for __ in range(num_queries)]

    def run(self, serve_one, num_queries: int) -> LoadReport:
        """Closed loop, one query at a time.

        ``serve_one(user, n)`` returns ``(results, tier)``; latency is
        its wall time.
        """
        stream = self.query_stream(num_queries)
        latencies: list[float] = []
        tiers: dict[str, int] = {}
        started = time.perf_counter()
        for user, n in stream:
            t0 = time.perf_counter()
            __, tier = serve_one(user, n)
            latencies.append(time.perf_counter() - t0)
            tiers[tier] = tiers.get(tier, 0) + 1
        duration = time.perf_counter() - started
        return LoadReport(
            queries=num_queries,
            duration=duration,
            latencies=latencies,
            tier_counts=tiers,
        )

    def run_batched(
        self, serve_many, num_queries: int, batch_size: int
    ) -> LoadReport:
        """Closed loop over concurrent windows of ``batch_size`` queries.

        Models ``batch_size`` clients whose requests are in flight
        together; the whole window's wall time is charged to *every*
        query in it — honest accounting, since a client in the window
        waits for the shared fan-out to finish.
        """
        stream = self.query_stream(num_queries)
        latencies: list[float] = []
        tiers: dict[str, int] = {}
        started = time.perf_counter()
        for at in range(0, len(stream), batch_size):
            window = stream[at : at + batch_size]
            t0 = time.perf_counter()
            answers = serve_many(window)
            elapsed = time.perf_counter() - t0
            for request in window:
                latencies.append(elapsed)
                __, tier = answers[request]
                tiers[tier] = tiers.get(tier, 0) + 1
        duration = time.perf_counter() - started
        return LoadReport(
            queries=len(stream),
            duration=duration,
            latencies=latencies,
            tier_counts=tiers,
        )
