"""Tiered serving caches with TTL plus stream-driven invalidation.

:class:`ResultCache` holds finished top-N answers keyed by
``(algorithm, user, n)``. Each entry carries the *tags* — ``(kind,
key)`` pairs naming the state it was computed from (the user's own
history, the sim lists of their recent items, the hot groups that fed
the complement) — and an inverted index maps tags to entries, so one
stream notification evicts exactly the answers it staled.

Invalidation does not delete: it marks the entry stale. A stale entry
never serves as fresh, but the degradation ladder's ``cache`` rung may
still serve it when the live rung is down — stale-but-present beats
falling to demographics, and it is the same "last known good" contract
as :class:`~repro.engine.degraded.ServeThroughRecovery`.

:class:`HotListCache` is the hot-item tier: per-group hot lists reused
across the whole batch (they are the most shared read in the CF
complement), invalidated by ``group`` notifications.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.errors import ConfigurationError

Now = Callable[[], float]


@dataclass
class CacheEntry:
    """One cached answer plus the freshness state machine around it."""

    results: list
    stored_at: float
    fresh_until: float
    tags: tuple[tuple[str, str], ...] = ()
    stale: bool = field(default=False)

    def is_fresh(self, now: float) -> bool:
        return not self.stale and now < self.fresh_until


class ResultCache:
    """LRU result cache: TTL freshness, stream invalidation, stale tier."""

    def __init__(
        self,
        clock_now: Now,
        ttl: float = 30.0,
        capacity: int = 10_000,
    ):
        if ttl <= 0:
            raise ConfigurationError(f"ttl must be positive: {ttl}")
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive: {capacity}")
        self._now = clock_now
        self._ttl = ttl
        self._capacity = capacity
        self._entries: OrderedDict[Hashable, CacheEntry] = OrderedDict()
        self._by_tag: dict[tuple[str, str], set[Hashable]] = {}
        self.hits = 0
        self.stale_hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.fills = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, allow_stale: bool = False) -> "list | None":
        """Fresh answer for ``key``, or — with ``allow_stale`` — whatever
        is still present (the ladder's cache rung). None on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.is_fresh(self._now()):
            self.hits += 1
            self._entries.move_to_end(key)
            return list(entry.results)
        if allow_stale:
            self.stale_hits += 1
            self._entries.move_to_end(key)
            return list(entry.results)
        self.misses += 1
        return None

    def put(
        self,
        key: Hashable,
        results: list,
        tags: tuple = (),
        ttl: "float | None" = None,
    ):
        now = self._now()
        self._drop(key)
        entry = CacheEntry(
            results=list(results),
            stored_at=now,
            fresh_until=now + (ttl if ttl is not None else self._ttl),
            tags=tuple(tags),
        )
        self._entries[key] = entry
        self._entries.move_to_end(key)
        for tag in entry.tags:
            self._by_tag.setdefault(tag, set()).add(key)
        self.fills += 1
        while len(self._entries) > self._capacity:
            evicted_key, __ = self._entries.popitem(last=False)
            self._unindex(evicted_key)
            self.evictions += 1

    def on_invalidation(self, kind: str, state_key: str):
        """Stream notification: stale every entry tagged ``(kind, key)``.

        Entries stay present for the stale tier; they stop serving as
        fresh immediately, which is what bounds staleness to one
        invalidation cycle instead of a full TTL.
        """
        for key in self._by_tag.get((kind, state_key), ()):
            entry = self._entries.get(key)
            if entry is not None and not entry.stale:
                entry.stale = True
                self.invalidations += 1

    def hit_rate(self) -> float:
        looked = self.hits + self.stale_hits + self.misses
        return self.hits / looked if looked else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "stale_hits": self.stale_hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "hit_rate": round(self.hit_rate(), 4),
        }

    def _drop(self, key: Hashable):
        if key in self._entries:
            self._entries.pop(key)
            self._unindex(key)

    def _unindex(self, key: Hashable):
        empty = []
        for tag, keys in self._by_tag.items():
            keys.discard(key)
            if not keys:
                empty.append(tag)
        for tag in empty:
            self._by_tag.pop(tag)


class HotListCache:
    """Per-group hot-list tier: TTL + ``group`` stream invalidation."""

    def __init__(self, clock_now: Now, ttl: float = 60.0, capacity: int = 512):
        if ttl <= 0:
            raise ConfigurationError(f"ttl must be positive: {ttl}")
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive: {capacity}")
        self._now = clock_now
        self._ttl = ttl
        self._capacity = capacity
        self._entries: OrderedDict[str, tuple[float, dict]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, group: str) -> "dict | None":
        entry = self._entries.get(group)
        if entry is None or self._now() >= entry[0]:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(group)
        return entry[1]

    def put(self, group: str, hot: dict):
        self._entries[group] = (self._now() + self._ttl, dict(hot))
        self._entries.move_to_end(group)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def on_invalidation(self, kind: str, state_key: str):
        if kind == "group" and self._entries.pop(state_key, None) is not None:
            self.invalidations += 1

    def stats(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "entries": len(self._entries),
        }
