"""The serving layer: coalesced, batched, cached query execution.

``ServingLayer`` is what the front end's ``live`` and ``cache`` rungs
route through:

* a fresh :class:`~repro.serving.cache.ResultCache` hit answers without
  touching the store (tier ``result_cache``);
* misses coalesce through the :class:`~repro.serving.coalescer.QueryCoalescer`
  and execute as one shared fan-out over the engine's batched CF reads
  (tier ``batched_live``), which cost three
  :meth:`~repro.tdstore.client.TDStoreClient.multi_get` calls per
  micro-batch instead of ``2 + R + G`` point reads per query;
* the hot-list tier (:class:`~repro.serving.cache.HotListCache`) feeds
  the demographic complement across batches;
* every answer lands back in the result cache tagged with the state it
  was computed from, and the
  :class:`~repro.serving.invalidation.InvalidationBus` stales those
  entries the moment the stream commits a change to that state.

``serve_stale`` is the ladder's cache rung: stale-but-present answers
for when the live rung (store, breaker, deadline) is failing.
"""

from __future__ import annotations

from typing import Callable

from repro.engine.engine import CFAnswer, RecommenderEngine
from repro.errors import ConfigurationError
from repro.serving.cache import HotListCache, ResultCache
from repro.serving.coalescer import QueryCoalescer
from repro.serving.invalidation import InvalidationBus
from repro.types import Recommendation


class ServingLayer:
    """Batched + cached serving pipeline over a :class:`RecommenderEngine`.

    Parameters
    ----------
    engine:
        The query engine; its store client provides the batched reads.
    clock_now:
        Clock source for cache TTLs (share it with the store's clock).
    algorithm:
        Only ``"cf"`` has a batched path today.
    bus:
        When given, the layer subscribes its caches to the stream's
        invalidation notifications.
    result_ttl / hot_ttl:
        Freshness windows; stream invalidation usually fires first, the
        TTL is the backstop for state with no publisher.
    max_batch:
        Micro-batch bound for the coalescer.
    """

    def __init__(
        self,
        engine: RecommenderEngine,
        clock_now: Callable[[], float],
        *,
        algorithm: str = "cf",
        bus: InvalidationBus | None = None,
        result_ttl: float = 30.0,
        hot_ttl: float = 60.0,
        cache_capacity: int = 10_000,
        max_batch: int = 64,
    ):
        if algorithm != "cf":
            raise ConfigurationError(
                f"serving layer only batches 'cf' today: {algorithm!r}"
            )
        self._engine = engine
        self._now = clock_now
        self._algorithm = algorithm
        self.result_cache = ResultCache(
            clock_now, ttl=result_ttl, capacity=cache_capacity
        )
        self.hot_cache = HotListCache(clock_now, ttl=hot_ttl)
        self.coalescer = QueryCoalescer(max_batch=max_batch)
        self._bus = bus
        if bus is not None:
            bus.subscribe(self._on_invalidation)
        self.tier_serves: dict[str, int] = {
            "result_cache": 0,
            "batched_live": 0,
        }
        self.stale_serves = 0

    @property
    def engine(self) -> RecommenderEngine:
        return self._engine

    def _on_invalidation(self, kind: str, key: str):
        self.result_cache.on_invalidation(kind, key)
        self.hot_cache.on_invalidation(kind, key)

    # -- serving -----------------------------------------------------------

    def serve(
        self, user_id: str, n: int, now: float
    ) -> tuple[list[Recommendation], str]:
        """One query: fresh cache hit or a batch of one.

        Returns ``(results, tier)``; store/resilience failures propagate
        so the front end's ladder can step down a rung.
        """
        answers = self.serve_many([(user_id, n)], now)
        return answers[(user_id, n)]

    def serve_many(
        self, queries, now: float
    ) -> dict[tuple[str, int], tuple[list[Recommendation], str]]:
        """Serve concurrent queries as coalesced, cached micro-batches.

        ``queries`` is an iterable of ``(user_id, n)``; duplicates
        coalesce onto one computation. Returns every requested query
        (deduplicated) mapped to ``(results, tier)``.
        """
        for user_id, n in queries:
            self.coalescer.submit(user_id, n)
        out: dict[tuple[str, int], tuple[list[Recommendation], str]] = {}
        while self.coalescer.pending():
            batch = self.coalescer.drain()
            misses: list[tuple[str, int]] = []
            for request in batch:
                cached = self.result_cache.get(self._cache_key(request))
                if cached is not None:
                    self.tier_serves["result_cache"] += 1
                    out[request] = (cached, "result_cache")
                else:
                    misses.append(request)
            if misses:
                out.update(self._execute_batch(misses, now))
        return out

    def serve_stale(self, user_id: str, n: int) -> "list[Recommendation] | None":
        """The ladder's cache rung: any present answer, fresh or stale."""
        request = (user_id, n)
        cached = self.result_cache.get(self._cache_key(request), allow_stale=True)
        if cached is not None:
            self.stale_serves += 1
        return cached

    # -- execution ---------------------------------------------------------

    def _cache_key(self, request: tuple[str, int]):
        return (self._algorithm, request[0], request[1])

    def _execute_batch(
        self, misses: list[tuple[str, int]], now: float
    ) -> dict[tuple[str, int], tuple[list[Recommendation], str]]:
        """One shared fan-out for every missed request, grouped by n."""
        by_n: dict[int, list[str]] = {}
        for user_id, n in misses:
            by_n.setdefault(n, []).append(user_id)
        out: dict[tuple[str, int], tuple[list[Recommendation], str]] = {}
        for n, users in by_n.items():
            hot_lists = self._known_hot_lists(users)
            known_groups = set(hot_lists)
            answers = self._engine.recommend_cf_batch(
                users, n, now, hot_lists=hot_lists
            )
            for group, hot in hot_lists.items():
                if group not in known_groups:
                    self.hot_cache.put(group, hot)
            for user_id, answer in answers.items():
                self._fill_caches(user_id, n, answer)
                self.tier_serves["batched_live"] += 1
                out[(user_id, n)] = (answer.results, "batched_live")
        return out

    def _known_hot_lists(self, users: list[str]) -> dict[str, dict]:
        known: dict[str, dict] = {}
        for user_id in users:
            for group in self._engine._groups_for(user_id):
                if group not in known:
                    hot = self.hot_cache.get(group)
                    if hot is not None:
                        known[group] = hot
        return known

    def _fill_caches(self, user_id: str, n: int, answer: CFAnswer):
        tags = [("user", user_id)]
        tags += [("item", item) for item in answer.dep_items]
        tags += [("group", group) for group in answer.dep_groups]
        self.result_cache.put(
            (self._algorithm, user_id, n), answer.results, tuple(tags)
        )

    # -- observability -----------------------------------------------------

    def stats(self) -> dict[str, object]:
        """One flat dict for the monitor and the benchmark report."""
        store = self._engine.store
        return {
            "tier_serves": dict(self.tier_serves),
            "stale_serves": self.stale_serves,
            "result_cache": self.result_cache.stats(),
            "hot_cache": self.hot_cache.stats(),
            "coalescer": self.coalescer.stats(),
            "batch_ops": getattr(store, "batch_ops", 0),
            "batched_keys": getattr(store, "batched_keys", 0),
            "hedged_reads": getattr(store, "hedged_reads", 0),
            "degraded_keys": getattr(store, "degraded_keys", 0),
        }
