"""High-throughput serving layer (`repro.serving`).

Turns the one-request-one-key front end into a batched, cached,
admission-aware query pipeline, the shape of the batch-query serving
architectures in arXiv:2409.00400 (coalesce + batch by shard) and
arXiv:1709.05278 (tiered read path with stream-driven freshness):

* :class:`QueryCoalescer` — dedupes identical in-flight queries and
  micro-batches concurrent ones into shared multi-get fan-outs;
* :class:`ResultCache` / :class:`HotListCache` — the tiered result
  caches, TTL-bounded and *invalidated by the stream* through the
  :class:`InvalidationBus` the stateful bolts publish to;
* :class:`ServingLayer` — wires coalescer, caches and the engine's
  batched CF reads behind one ``serve``/``serve_many`` API the front
  end's ``live``/``cache`` rungs route through;
* :class:`ClosedLoopLoadGenerator` — the closed-loop driver the serving
  benchmark uses to measure sustained queries/sec and tail latency.
"""

from repro.serving.cache import HotListCache, ResultCache
from repro.serving.coalescer import QueryCoalescer
from repro.serving.invalidation import InvalidationBus
from repro.serving.layer import ServingLayer
from repro.serving.loadgen import ClosedLoopLoadGenerator, LoadReport

__all__ = [
    "ClosedLoopLoadGenerator",
    "HotListCache",
    "InvalidationBus",
    "LoadReport",
    "QueryCoalescer",
    "ResultCache",
    "ServingLayer",
]
