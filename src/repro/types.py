"""Core value types shared across the library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class UserAction:
    """One implicit-feedback event: a user acted on an item.

    ``action`` is a behaviour type like ``"browse"``, ``"click"``,
    ``"share"``, ``"comment"`` or ``"purchase"``; its weight is resolved
    by an :class:`~repro.algorithms.ratings.ActionWeights` table (Section
    4.1.2). ``context`` carries situational attributes (page, position,
    ad slot) used by the situational CTR algorithm.
    """

    user_id: str
    item_id: str
    action: str
    timestamp: float
    context: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Recommendation:
    """One recommended item with its predicted score and producing source."""

    item_id: str
    score: float
    source: str = "cf"


@dataclass(frozen=True)
class UserProfile:
    """Demographic attributes of a user (Section 4.2).

    ``gender``/``age``/``region`` may be None for users whose information
    is unknown; the demographic algorithms then fall back to the global
    group, as Section 6.4 describes.
    """

    user_id: str
    gender: str | None = None
    age: int | None = None
    region: str | None = None
    education: str | None = None


@dataclass(frozen=True)
class ItemMeta:
    """Content metadata of an item, used by CB and the filter layer."""

    item_id: str
    category: str | None = None
    tags: tuple[str, ...] = ()
    price: float | None = None
    publish_time: float = 0.0
    lifetime: float | None = None

    def is_active(self, now: float) -> bool:
        """Whether the item is still alive (news items expire quickly)."""
        if self.lifetime is None:
            return True
        return now < self.publish_time + self.lifetime
