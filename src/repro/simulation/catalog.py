"""Item catalogs with churn.

Items belong to topics; news items are born continuously and die within
hours ("the life span of items is short", Section 5.1), videos and
commodities persist. E-commerce items carry prices so the similar-price
recommendation position of Figure 12 can be simulated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.types import ItemMeta
from repro.utils.rng import SeedSequenceFactory


@dataclass
class CatalogConfig:
    """Shape of an application's item catalog.

    ``initial_items`` exist at time zero; ``arrivals_per_day`` fresh items
    appear uniformly through each day. ``item_lifetime`` of None means
    items never expire. ``price_range`` enables price metadata.
    """

    num_topics: int = 12
    initial_items: int = 200
    arrivals_per_day: int = 0
    item_lifetime: float | None = None
    tags_per_item: int = 2
    price_range: tuple[float, float] | None = None
    zipf_exponent: float = 1.1

    def __post_init__(self):
        if self.num_topics <= 0:
            raise SimulationError(f"num_topics must be positive: {self.num_topics}")
        if self.initial_items <= 0:
            raise SimulationError(
                f"initial_items must be positive: {self.initial_items}"
            )


@dataclass
class SimItem:
    """A catalog item plus its generative attributes."""

    meta: ItemMeta
    topic: int
    quality: float  # in (0, 1]: scales how clickable the item is

    @property
    def item_id(self) -> str:
        return self.meta.item_id


class ItemCatalog:
    """Generates and tracks an application's items over simulated time."""

    def __init__(self, config: CatalogConfig, seeds: SeedSequenceFactory):
        self.config = config
        self._rng = seeds.generator("catalog")
        self._items: dict[str, SimItem] = {}
        self._by_topic: dict[int, list[str]] = {t: [] for t in range(config.num_topics)}
        self._next_id = 0
        self._arrival_cursor = 0.0
        self._topic_price_centers: np.ndarray | None = None
        if config.price_range is not None:
            # real catalogs have topic-price structure: electronics cost
            # more than snacks; each topic gets a price niche
            low, high = config.price_range
            self._topic_price_centers = np.exp(
                self._rng.uniform(np.log(low * 2), np.log(high / 2),
                                  size=config.num_topics)
            )
        for __ in range(config.initial_items):
            self._spawn(publish_time=0.0)

    def _spawn(self, publish_time: float) -> SimItem:
        config = self.config
        topic = int(self._rng.integers(config.num_topics))
        item_id = f"item-{self._next_id:06d}"
        self._next_id += 1
        tags = [f"topic-{topic}"]
        extra = min(config.tags_per_item - 1, config.num_topics - 1)
        if extra > 0:
            others = [t for t in range(config.num_topics) if t != topic]
            picks = self._rng.choice(others, size=extra, replace=False)
            tags.extend(f"topic-{int(t)}" for t in picks)
        price = None
        if config.price_range is not None:
            low, high = config.price_range
            center = float(self._topic_price_centers[topic])
            price = float(
                np.clip(center * self._rng.lognormal(0.0, 0.35), low, high)
            )
        meta = ItemMeta(
            item_id=item_id,
            category=f"topic-{topic}",
            tags=tuple(tags),
            price=price,
            publish_time=publish_time,
            lifetime=config.item_lifetime,
        )
        quality = float(self._rng.beta(4.0, 2.0))
        item = SimItem(meta, topic, quality)
        self._items[item_id] = item
        self._by_topic[topic].append(item_id)
        return item

    def advance_to(self, now: float) -> list[SimItem]:
        """Spawn the arrivals scheduled between the last call and ``now``."""
        if self.config.arrivals_per_day <= 0:
            return []
        spacing = 86400.0 / self.config.arrivals_per_day
        born: list[SimItem] = []
        while self._arrival_cursor + spacing <= now:
            self._arrival_cursor += spacing
            born.append(self._spawn(publish_time=self._arrival_cursor))
        return born

    def get(self, item_id: str) -> SimItem:
        try:
            return self._items[item_id]
        except KeyError:
            raise SimulationError(f"unknown item {item_id!r}") from None

    def active_items(self, now: float) -> list[SimItem]:
        return [
            item for item in self._items.values() if item.meta.is_active(now)
        ]

    def active_in_topic(self, topic: int, now: float) -> list[SimItem]:
        return [
            self._items[item_id]
            for item_id in self._by_topic.get(topic, ())
            if self._items[item_id].meta.is_active(now)
        ]

    def all_items(self) -> list[SimItem]:
        return list(self._items.values())

    def __len__(self) -> int:
        return len(self._items)
