"""Synthetic workload generation.

The paper evaluates on Tencent production traffic we cannot have, so we
build a generative stand-in whose *mechanisms* mirror the phenomena the
paper's arguments rest on: users with demographic-correlated tastes whose
short-term focus drifts within a day; item catalogs with churn (news
lives hours, videos weeks); temporal bursts (a breaking story); implicit
multi-level feedback (browse < click < share < purchase); and
position-discounted clicking on recommendation lists. See DESIGN.md §2
for the substitution argument.
"""

from repro.simulation.catalog import CatalogConfig, ItemCatalog
from repro.simulation.population import Population, PopulationConfig
from repro.simulation.behavior import (
    BehaviorModel,
    BehaviorConfig,
    ClickModel,
    ClickConfig,
)
from repro.simulation.applications import (
    ApplicationScenario,
    news_scenario,
    video_scenario,
    ecommerce_scenario,
    ads_scenario,
)

__all__ = [
    "CatalogConfig",
    "ItemCatalog",
    "Population",
    "PopulationConfig",
    "BehaviorModel",
    "BehaviorConfig",
    "ClickModel",
    "ClickConfig",
    "ApplicationScenario",
    "news_scenario",
    "video_scenario",
    "ecommerce_scenario",
    "ads_scenario",
]
