"""Synthetic user populations with demographic-correlated tastes.

Each user has a demographic profile and a base preference distribution
over topics drawn from their demographic group's prior — that correlation
is what makes the demographic clustering of Section 4.2 useful rather
than decorative. Activity levels are skewed so a long tail of
near-inactive users reproduces the data-sparsity problem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.types import UserProfile
from repro.utils.rng import SeedSequenceFactory

GENDERS = ("male", "female")
REGIONS = ("beijing", "shanghai", "guangzhou", "chengdu")


@dataclass
class PopulationConfig:
    """Shape of the user population."""

    num_users: int = 500
    num_topics: int = 12
    # fraction of users whose demographics are unknown (cold-profile users)
    anonymous_fraction: float = 0.05
    # concentration of per-user preferences around the group prior; lower
    # values mean users follow their demographic group more tightly
    preference_concentration: float = 3.0
    # Pareto-ish activity skew: most users are quiet, a few are heavy
    activity_shape: float = 1.5

    def __post_init__(self):
        if self.num_users <= 0:
            raise SimulationError(f"num_users must be positive: {self.num_users}")
        if not 0.0 <= self.anonymous_fraction < 1.0:
            raise SimulationError(
                f"anonymous_fraction must be in [0,1): {self.anonymous_fraction}"
            )


@dataclass
class SimUser:
    """A user plus their generative attributes."""

    profile: UserProfile
    base_preferences: np.ndarray  # distribution over topics
    activity: float  # relative visit rate, mean 1.0

    @property
    def user_id(self) -> str:
        return self.profile.user_id


class Population:
    """Generates and indexes the users of one application."""

    def __init__(self, config: PopulationConfig, seeds: SeedSequenceFactory):
        self.config = config
        rng = seeds.generator("population")
        self._users: dict[str, SimUser] = {}
        group_priors = self._group_priors(rng, config.num_topics)
        activities = rng.pareto(config.activity_shape, size=config.num_users) + 0.2
        activities = activities / activities.mean()
        for index in range(config.num_users):
            user_id = f"user-{index:05d}"
            anonymous = rng.random() < config.anonymous_fraction
            if anonymous:
                profile = UserProfile(user_id)
                prior = np.full(config.num_topics, 1.0 / config.num_topics)
            else:
                gender = GENDERS[int(rng.integers(len(GENDERS)))]
                age = int(rng.integers(14, 70))
                region = REGIONS[int(rng.integers(len(REGIONS)))]
                profile = UserProfile(user_id, gender=gender, age=age, region=region)
                prior = group_priors[self._group_index(gender, age)]
            preferences = rng.dirichlet(prior * config.preference_concentration
                                        * config.num_topics)
            self._users[user_id] = SimUser(
                profile, preferences, float(activities[index])
            )

    @staticmethod
    def _group_index(gender: str, age: int) -> int:
        band = min(age // 15, 3)
        return (0 if gender == "male" else 4) + band

    @staticmethod
    def _group_priors(rng: np.random.Generator, num_topics: int) -> np.ndarray:
        """Eight demographic groups, each with a distinct topic prior."""
        priors = rng.dirichlet(np.ones(num_topics) * 0.5, size=8)
        # floor to keep every topic reachable from every group
        priors = priors + 0.02
        return priors / priors.sum(axis=1, keepdims=True)

    def get(self, user_id: str) -> SimUser:
        try:
            return self._users[user_id]
        except KeyError:
            raise SimulationError(f"unknown user {user_id!r}") from None

    def profile(self, user_id: str) -> UserProfile | None:
        user = self._users.get(user_id)
        return user.profile if user is not None else None

    def users(self) -> list[SimUser]:
        return list(self._users.values())

    def user_ids(self) -> list[str]:
        return list(self._users.keys())

    def __len__(self) -> int:
        return len(self._users)
