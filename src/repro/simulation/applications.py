"""Application scenarios (Section 6: News, Videos, YiXun, QQ ads).

Each scenario bundles a catalog, population, behaviour and click model
tuned to the application's character:

* **news** — items live hours, fresh items arrive all day, breaking-news
  bursts, strong drift (you read what is happening *now*).
* **video** — persistent items with strong topical co-watch clusters;
  the best case for item-based CF (Table 1's biggest gain).
* **ecommerce** — persistent priced commodities, purchases as the strong
  action, two recommendation positions (similar price / similar
  purchase, Figures 13–14).
* **ads** — a small ad inventory, impression/click feedback, CTR driven
  by demographic match (the situational CTR algorithm's home turf).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.behavior import (
    BehaviorConfig,
    BehaviorModel,
    ClickConfig,
    ClickModel,
)
from repro.simulation.catalog import CatalogConfig, ItemCatalog
from repro.simulation.population import Population, PopulationConfig
from repro.utils.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.utils.rng import SeedSequenceFactory


@dataclass
class ApplicationScenario:
    """Everything the evaluation harness needs to run one application."""

    name: str
    catalog: ItemCatalog
    population: Population
    behavior: BehaviorModel
    clicks: ClickModel
    # average recommendation-serving visits per user per day
    visits_per_user_per_day: float
    # organic (non-recommendation) sessions per user per day
    organic_sessions_per_user_per_day: float
    # list length the front end serves
    slate_size: int = 5

    @property
    def seeds(self) -> SeedSequenceFactory:
        return self._seeds

    def attach_seeds(self, seeds: SeedSequenceFactory):
        self._seeds = seeds


def _build(
    name: str,
    seed: int,
    catalog_config: CatalogConfig,
    population_config: PopulationConfig,
    behavior_config: BehaviorConfig,
    click_config: ClickConfig,
    visits: float,
    organic: float,
    slate_size: int,
) -> ApplicationScenario:
    seeds = SeedSequenceFactory(seed).spawn(name)
    catalog = ItemCatalog(catalog_config, seeds)
    population = Population(population_config, seeds)
    behavior = BehaviorModel(population, catalog, behavior_config, seeds)
    clicks = ClickModel(behavior, click_config, seeds)
    scenario = ApplicationScenario(
        name, catalog, population, behavior, clicks, visits, organic,
        slate_size,
    )
    scenario.attach_seeds(seeds)
    return scenario


def news_scenario(
    seed: int = 0,
    num_users: int = 300,
    initial_items: int = 120,
    arrivals_per_day: int = 240,
) -> ApplicationScenario:
    """Tencent News: hours-long item lifetimes, heavy churn, fast drift."""
    return _build(
        "news",
        seed,
        CatalogConfig(
            num_topics=10,
            initial_items=initial_items,
            arrivals_per_day=arrivals_per_day,
            item_lifetime=12 * SECONDS_PER_HOUR,
            tags_per_item=2,
        ),
        PopulationConfig(num_users=num_users, num_topics=10),
        BehaviorConfig(
            drift_rate_per_hour=0.2,
            focus_weight=0.7,
            items_per_session=3.0,
            strong_action="share",
            freshness_tau=4 * SECONDS_PER_HOUR,
        ),
        ClickConfig(base_click_probability=0.4),
        visits=6.0,
        organic=4.0,
        slate_size=5,
    )


def video_scenario(
    seed: int = 0, num_users: int = 300, initial_items: int = 250
) -> ApplicationScenario:
    """Tencent Videos: persistent catalog, strong co-watch clustering."""
    return _build(
        "video",
        seed,
        CatalogConfig(
            num_topics=12,
            initial_items=initial_items,
            arrivals_per_day=6,
            item_lifetime=None,
            tags_per_item=2,
        ),
        PopulationConfig(
            num_users=num_users,
            num_topics=12,
            preference_concentration=2.0,  # tighter clusters: CF's best case
        ),
        BehaviorConfig(
            drift_rate_per_hour=0.12,  # a focus phase lasts ~8 hours
            focus_weight=0.75,  # binge-watching: sessions lean topical
            items_per_session=3.0,
            strong_action="share",
            freshness_tau=None,
        ),
        ClickConfig(base_click_probability=0.45),
        visits=5.0,
        organic=1.5,
        slate_size=5,
    )


def ecommerce_scenario(
    seed: int = 0, num_users: int = 300, initial_items: int = 300
) -> ApplicationScenario:
    """YiXun: priced commodities, purchase feedback, modest drift."""
    return _build(
        "ecommerce",
        seed,
        CatalogConfig(
            num_topics=12,
            initial_items=initial_items,
            arrivals_per_day=10,
            item_lifetime=None,
            tags_per_item=2,
            price_range=(5.0, 2000.0),
        ),
        PopulationConfig(num_users=num_users, num_topics=12),
        BehaviorConfig(
            drift_rate_per_hour=0.12,  # a shopping mission spans hours
            focus_weight=0.8,
            items_per_session=3.0,
            escalate_strong=0.2,
            strong_action="purchase",
            freshness_tau=None,
        ),
        ClickConfig(base_click_probability=0.35),
        visits=4.0,
        organic=2.0,
        slate_size=5,
    )


def ads_scenario(
    seed: int = 0, num_users: int = 400, num_ads: int = 40
) -> ApplicationScenario:
    """QQ advertisements: small inventory, demographic-driven CTR."""
    return _build(
        "ads",
        seed,
        CatalogConfig(
            num_topics=8,
            initial_items=num_ads,
            # campaigns churn: fresh ads replace expiring ones, keeping
            # the live inventory roughly constant
            arrivals_per_day=max(2, num_ads // 3),
            item_lifetime=3 * SECONDS_PER_DAY,
            tags_per_item=1,
        ),
        PopulationConfig(
            num_users=num_users,
            num_topics=8,
            preference_concentration=1.5,  # CTR differs sharply by group
        ),
        BehaviorConfig(
            drift_rate_per_hour=0.15,
            focus_weight=0.4,
            items_per_session=1.0,
            strong_action="share",
            freshness_tau=SECONDS_PER_DAY,
        ),
        ClickConfig(base_click_probability=0.25, position_discount=0.8),
        visits=8.0,
        organic=0.5,
        slate_size=3,
    )
