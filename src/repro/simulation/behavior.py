"""User behaviour: drifting interests, organic sessions, click model.

The central mechanism is *interest drift*: besides a stable base taste,
each user has a current focus topic that switches stochastically over
hours. A recommender that reacts within seconds keeps up with the focus;
one rebuilt hourly or daily keeps serving the previous focus — that gap
is the entire reason TencentRec beats the Originals in Section 6, so it
must exist in the generator for the comparison to be honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.simulation.catalog import ItemCatalog, SimItem
from repro.simulation.population import Population, SimUser
from repro.types import Recommendation, UserAction
from repro.utils.rng import SeedSequenceFactory


@dataclass
class BehaviorConfig:
    """Knobs of the behaviour generator."""

    # probability per hour that a user's focus topic switches
    drift_rate_per_hour: float = 0.25
    # weight of the current focus vs. the stable base taste, in [0, 1]
    focus_weight: float = 0.6
    # organic items browsed per session
    items_per_session: float = 3.0
    # probability a browse escalates (click -> share/purchase chain)
    escalate_click: float = 0.6
    escalate_strong: float = 0.15
    # strong action type for this application ("share" or "purchase")
    strong_action: str = "share"
    # freshness: e-folding time of the novelty boost; None disables it
    freshness_tau: float | None = None

    def __post_init__(self):
        if not 0.0 <= self.focus_weight <= 1.0:
            raise SimulationError(
                f"focus_weight must be in [0,1]: {self.focus_weight}"
            )
        if self.drift_rate_per_hour < 0:
            raise SimulationError(
                f"drift_rate_per_hour must be >= 0: {self.drift_rate_per_hour}"
            )


@dataclass
class Burst:
    """A temporal burst (Section 5.2): one item soaks up attention."""

    item_id: str
    start: float
    end: float
    intensity: float  # probability an organic pick is redirected to it

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass
class _FocusState:
    topic: int
    last_update: float


class BehaviorModel:
    """Drift, affinity and organic-session generation."""

    def __init__(
        self,
        population: Population,
        catalog: ItemCatalog,
        config: BehaviorConfig,
        seeds: SeedSequenceFactory,
    ):
        self.population = population
        self.catalog = catalog
        self.config = config
        self._rng = seeds.generator("behavior")
        self._focus: dict[str, _FocusState] = {}
        self._consumed: dict[str, set[str]] = {}
        self.bursts: list[Burst] = []

    # -- consumption memory ---------------------------------------------------

    def mark_consumed(self, user_id: str, item_id: str):
        self._consumed.setdefault(user_id, set()).add(item_id)

    def already_consumed(self, user_id: str, item_id: str) -> bool:
        consumed = self._consumed.get(user_id)
        return consumed is not None and item_id in consumed

    # -- interest drift -------------------------------------------------------

    def focus_of(self, user: SimUser, now: float) -> int:
        """The user's current focus topic, advancing the drift process."""
        state = self._focus.get(user.user_id)
        if state is None:
            topic = self._sample_topic(user)
            state = _FocusState(topic, now)
            self._focus[user.user_id] = state
            return state.topic
        elapsed_hours = max(0.0, now - state.last_update) / 3600.0
        switch_probability = 1.0 - math.exp(
            -self.config.drift_rate_per_hour * elapsed_hours
        )
        if self._rng.random() < switch_probability:
            state.topic = self._sample_topic(user)
        state.last_update = now
        return state.topic

    def _sample_topic(self, user: SimUser) -> int:
        return int(
            self._rng.choice(
                len(user.base_preferences), p=user.base_preferences
            )
        )

    # -- affinity ---------------------------------------------------------------

    def affinity(self, user: SimUser, item: SimItem, now: float) -> float:
        """How much ``user`` wants ``item`` right now, in [0, 1]."""
        preferences = user.base_preferences
        base = min(1.0, float(preferences[item.topic]) * len(preferences))
        focus = self._focus.get(user.user_id)
        focus_match = 1.0 if focus is not None and focus.topic == item.topic else 0.0
        w = self.config.focus_weight
        topic_match = (1.0 - w) * base + w * focus_match
        return item.quality * topic_match * self._freshness(item, now)

    def _freshness(self, item: SimItem, now: float) -> float:
        tau = self.config.freshness_tau
        if tau is None:
            return 1.0
        age = max(0.0, now - item.meta.publish_time)
        return 0.25 + 0.75 * math.exp(-age / tau)

    # -- bursts -----------------------------------------------------------------

    def add_burst(self, item_id: str, start: float, end: float, intensity: float):
        if not 0.0 <= intensity <= 1.0:
            raise SimulationError(f"burst intensity must be in [0,1]: {intensity}")
        self.bursts.append(Burst(item_id, start, end, intensity))

    def _burst_redirect(self, now: float) -> str | None:
        for burst in self.bursts:
            if burst.active(now) and self._rng.random() < burst.intensity:
                return burst.item_id
        return None

    # -- organic sessions ---------------------------------------------------------

    def organic_session(self, user: SimUser, now: float) -> list[UserAction]:
        """Actions a user takes browsing on their own (not via recs).

        Items are picked topic-first from the drifted interest, then by
        quality-weighted sampling among the topic's live items; active
        bursts hijack picks with their intensity.
        """
        focus_topic = self.focus_of(user, now)
        count = 1 + self._rng.poisson(max(0.0, self.config.items_per_session - 1))
        actions: list[UserAction] = []
        for __ in range(count):
            item = self._pick_item(user, focus_topic, now)
            if item is None:
                continue
            actions.extend(self._action_chain(user, item, now))
        return actions

    def pick_browsing_item(self, user: SimUser, now: float) -> SimItem | None:
        """The item a user lands on by themselves (an anchored-query page)."""
        return self._pick_item(user, self.focus_of(user, now), now)

    def _pick_item(
        self, user: SimUser, focus_topic: int, now: float
    ) -> SimItem | None:
        redirected = self._burst_redirect(now)
        if redirected is not None:
            return self.catalog.get(redirected)
        if self._rng.random() < self.config.focus_weight:
            topic = focus_topic
        else:
            topic = self._sample_topic(user)
        candidates = self.catalog.active_in_topic(topic, now)
        if not candidates:
            candidates = self.catalog.active_items(now)
            if not candidates:
                return None
        weights = np.array(
            [c.quality * self._freshness(c, now) for c in candidates]
        )
        total = weights.sum()
        if total <= 0:
            return None
        return candidates[int(self._rng.choice(len(candidates), p=weights / total))]

    def _action_chain(
        self, user: SimUser, item: SimItem, now: float
    ) -> list[UserAction]:
        """browse, maybe click, maybe a strong action — implicit feedback."""
        actions = [UserAction(user.user_id, item.item_id, "browse", now)]
        self.mark_consumed(user.user_id, item.item_id)
        if self._rng.random() < self.config.escalate_click * self.affinity(
            user, item, now
        ) + 0.05:
            actions.append(UserAction(user.user_id, item.item_id, "click", now))
            if self._rng.random() < self.config.escalate_strong:
                actions.append(
                    UserAction(
                        user.user_id, item.item_id, self.config.strong_action, now
                    )
                )
        return actions


@dataclass
class ClickConfig:
    """The position-aware click model used to score recommendations."""

    base_click_probability: float = 0.35
    position_discount: float = 0.85
    # floor so even poor recommendations get occasional clicks (noise)
    noise_click_probability: float = 0.005
    # multiplier for items the user has already consumed: re-showing a
    # just-read story or a just-bought commodity earns much less
    repeat_click_penalty: float = 0.5

    def __post_init__(self):
        if not 0.0 < self.base_click_probability <= 1.0:
            raise SimulationError(
                "base_click_probability must be in (0,1]: "
                f"{self.base_click_probability}"
            )


@dataclass
class ClickOutcome:
    """What a user did with one served recommendation list."""

    impressions: int = 0
    clicks: list[str] = field(default_factory=list)
    actions: list[UserAction] = field(default_factory=list)


class ClickModel:
    """Turns recommendation lists into clicks via current affinity."""

    def __init__(
        self,
        behavior: BehaviorModel,
        config: ClickConfig,
        seeds: SeedSequenceFactory,
    ):
        self._behavior = behavior
        self.config = config
        self._rng = seeds.generator("clicks")

    def draw_uniforms(self, count: int) -> list[float]:
        """Position-level randomness, shareable across paired slates.

        Using the same draws for every engine's slate at one visit is a
        common-random-numbers variance reduction: engines that recommend
        the same item at the same position get the same outcome.
        """
        return [float(u) for u in self._rng.random(count)]

    def simulate(
        self,
        user: SimUser,
        recommendations: list[Recommendation],
        now: float,
        uniforms: list[float] | None = None,
        advance_focus: bool = True,
    ) -> ClickOutcome:
        outcome = ClickOutcome()
        if advance_focus:
            # the user arrives with their *current* focus: advance the drift
            self._behavior.focus_of(user, now)
        for position, rec in enumerate(recommendations):
            outcome.impressions += 1
            try:
                item = self._behavior.catalog.get(rec.item_id)
            except SimulationError:
                continue
            if not item.meta.is_active(now):
                continue  # a stale model recommended a dead item: no click
            affinity = self._behavior.affinity(user, item, now)
            probability = (
                self.config.base_click_probability
                * affinity
                * (self.config.position_discount**position)
            )
            probability = max(probability, self.config.noise_click_probability)
            if self._behavior.already_consumed(user.user_id, rec.item_id):
                probability *= self.config.repeat_click_penalty
            if uniforms is not None and position < len(uniforms):
                draw = uniforms[position]
            else:
                draw = self._rng.random()
            if draw < probability:
                outcome.clicks.append(rec.item_id)
                outcome.actions.append(
                    UserAction(user.user_id, rec.item_id, "click", now)
                )
                if self._rng.random() < self._behavior.config.escalate_strong:
                    outcome.actions.append(
                        UserAction(
                            user.user_id,
                            rec.item_id,
                            self._behavior.config.strong_action,
                            now,
                        )
                    )
        return outcome
