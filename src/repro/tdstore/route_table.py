"""The TDStore route table.

Keys are hashed onto a fixed set of *data instances* (buckets). Each
instance has a host data server and a slave data server; the backup is
done "in the granularity of data instance ... a data server may be the
host server of some data instances but the backup server of others", so
almost every server serves reads and writes simultaneously (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RouteError
from repro.utils.hashing import partition_for_key


@dataclass(frozen=True)
class InstanceRoute:
    """Placement of one data instance: its host and slave server ids."""

    instance: int
    host: int
    slave: int


class RouteTable:
    """Immutable map of instance -> (host, slave).

    The ``version`` is the cluster's route epoch: every derivation
    (:meth:`promote_slave`, :meth:`with_host`, :meth:`with_slave`)
    returns a *new* table constructed with a bumped version, so clients
    comparing epochs can never observe a half-updated table — a table
    object's routes and version are fixed for its whole lifetime.
    """

    def __init__(
        self,
        routes: dict[int, InstanceRoute],
        num_instances: int,
        version: int = 0,
    ):
        if num_instances <= 0:
            raise RouteError(f"num_instances must be positive: {num_instances}")
        if version < 0:
            raise RouteError(f"version must be >= 0: {version}")
        missing = [i for i in range(num_instances) if i not in routes]
        if missing:
            raise RouteError(f"route table missing instances {missing}")
        self._routes = dict(routes)
        self.num_instances = num_instances
        self.version = version

    @classmethod
    def balanced(cls, num_instances: int, server_ids: list[int]) -> "RouteTable":
        """Spread host/slave roles round-robin so every server hosts some
        instances and backs up others."""
        if len(server_ids) < 2:
            raise RouteError(
                f"replication needs at least two servers, got {len(server_ids)}"
            )
        routes = {}
        count = len(server_ids)
        for instance in range(num_instances):
            host = server_ids[instance % count]
            slave = server_ids[(instance + 1) % count]
            routes[instance] = InstanceRoute(instance, host, slave)
        return cls(routes, num_instances)

    def instance_for_key(self, key: str) -> int:
        return partition_for_key(key, self.num_instances)

    def route(self, instance: int) -> InstanceRoute:
        try:
            return self._routes[instance]
        except KeyError:
            raise RouteError(f"unknown data instance {instance}") from None

    def route_for_key(self, key: str) -> InstanceRoute:
        return self.route(self.instance_for_key(key))

    def instances_hosted_by(self, server_id: int) -> list[int]:
        return sorted(
            r.instance for r in self._routes.values() if r.host == server_id
        )

    def instances_backed_by(self, server_id: int) -> list[int]:
        return sorted(
            r.instance for r in self._routes.values() if r.slave == server_id
        )

    def promote_slave(self, instance: int, new_slave: int) -> "RouteTable":
        """Return a new table where ``instance``'s slave becomes host.

        ``new_slave`` is the server that will back up the promoted host.
        """
        old = self.route(instance)
        if new_slave == old.slave:
            raise RouteError(
                f"instance {instance}: new slave must differ from promoted "
                f"host {old.slave}"
            )
        return self._derive(InstanceRoute(instance, old.slave, new_slave))

    def with_host(
        self, instance: int, new_host: int, new_slave: int | None = None
    ) -> "RouteTable":
        """Return a new table where ``instance`` is hosted by ``new_host``.

        The slave stays unless ``new_slave`` is given; the migration
        cutover uses this to move the host role to the catch-up target
        in one epoch bump.
        """
        old = self.route(instance)
        slave = old.slave if new_slave is None else new_slave
        if new_host == slave:
            raise RouteError(
                f"instance {instance}: host and slave must differ, both "
                f"{new_host}"
            )
        return self._derive(InstanceRoute(instance, new_host, slave))

    def with_slave(self, instance: int, new_slave: int) -> "RouteTable":
        """Return a new table where ``instance`` is backed by ``new_slave``."""
        old = self.route(instance)
        if new_slave == old.host:
            raise RouteError(
                f"instance {instance}: new slave must differ from host "
                f"{old.host}"
            )
        return self._derive(InstanceRoute(instance, old.host, new_slave))

    def _derive(self, route: InstanceRoute) -> "RouteTable":
        routes = dict(self._routes)
        routes[route.instance] = route
        return RouteTable(routes, self.num_instances, version=self.version + 1)

    def host_load(self) -> dict[int, int]:
        """server id -> number of instances it hosts."""
        load: dict[int, int] = {}
        for route in self._routes.values():
            load[route.host] = load.get(route.host, 0) + 1
        return load
