"""TDStore storage engines.

Figure 3 lists four engines behind a common interface: the Memory
DataBase (MDB), Level DataBase (LDB), Redis DataBase (RDB) and File
DataBase (FDB). We implement all four against one abstract API:

* :class:`MDBEngine` — a plain in-memory hash table (the default; the
  paper calls TDStore "memory-based").
* :class:`LDBEngine` — a LevelDB-style log-structured engine: writes go
  to a memtable which is flushed to immutable sorted runs; reads check
  the memtable then newest-to-oldest runs; compaction merges runs. It
  additionally supports sorted prefix scans.
* :class:`RDBEngine` — an in-memory engine with Redis-style per-key TTL
  expiry against a simulated clock.
* :class:`FDBEngine` — a file-backed engine persisting every bucket of
  keys to disk, surviving process restarts.
"""

from __future__ import annotations

import os
import pickle
from abc import ABC, abstractmethod
from bisect import bisect_left
from typing import Any, Callable, Iterator

from repro.errors import EngineError, VersionConflictError
from repro.utils.clock import SimClock
from repro.utils.hashing import stable_hash

_MISSING = object()

# Reserved key prefixes for the transactional layer (Section 3.3 meets
# exactly-once): a per-key write version and a per-key journal of applied
# operation ids. Implemented as ordinary keys so every engine inherits
# them and replication/snapshots carry them without special cases.
VERSION_PREFIX = "__ver__:"
JOURNAL_PREFIX = "__ops__:"

# Ids remembered per key. Must exceed the number of distinct operations
# that can target one key within any replay window (a rewound source
# re-delivers at most a few batches); older ids can no longer reappear.
JOURNAL_LIMIT = 128


class StorageEngine(ABC):
    """Uniform key-value engine API used by TDStore data servers.

    Keys must be strings; values may be any picklable object.
    """

    @abstractmethod
    def get(self, key: str, default: Any = None) -> Any:
        """Return ``key``'s value, or ``default`` when absent."""

    @abstractmethod
    def put(self, key: str, value: Any):
        """Store ``value`` under ``key``, overwriting silently."""

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key``; returns True if it existed."""

    @abstractmethod
    def keys(self) -> Iterator[str]:
        """Iterate all live keys (order engine-specific)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of live keys."""

    def contains(self, key: str) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def multi_get(self, keys: "list[str]", default: Any = None) -> dict[str, Any]:
        """Batched point lookup: one engine call for many keys.

        The base implementation loops over :meth:`get`; engines with a
        cheaper bulk path (e.g. one bucket load serving several keys)
        may override it. Every requested key appears in the result.
        """
        return {key: self.get(key, default) for key in keys}

    def items(self) -> Iterator[tuple[str, Any]]:
        for key in list(self.keys()):
            value = self.get(key, _MISSING)
            if value is not _MISSING:
                yield key, value

    def snapshot(self) -> dict[str, Any]:
        """A copy of all live data (used for replication catch-up)."""
        return dict(self.items())

    def restore(self, data: dict[str, Any]):
        """Replace contents with ``data``."""
        for key in list(self.keys()):
            self.delete(key)
        for key, value in data.items():
            self.put(key, value)

    # -- transactional layer (versions + op journal) -----------------------
    #
    # Implemented on the base class in terms of get/put so all four
    # engines share one behaviour. A plain ``put`` stays version-neutral:
    # only the conditional/idempotent operations below maintain versions,
    # so components that never use them pay nothing.

    # ids trimmed out of per-key journals so far; a nonzero delta means a
    # rewind re-delivering one of them would double-apply (class default;
    # incrementing creates the instance counter)
    journal_evictions = 0

    def _trim_journal(self, journal: list, journal_limit: int) -> list:
        if len(journal) > journal_limit:
            self.journal_evictions += len(journal) - journal_limit
            journal = journal[-journal_limit:]
        return journal

    def version(self, key: str) -> int:
        """Current write version of ``key`` (0 until first versioned write)."""
        return self.get(VERSION_PREFIX + key, 0)

    def check_and_set(self, key: str, value: Any, expected_version: int) -> int:
        """Write ``value`` only if ``key`` is still at ``expected_version``.

        Returns the new version; raises
        :class:`~repro.errors.VersionConflictError` (carrying the current
        version) when the key moved on — the caller re-reads and retries.
        """
        current = self.version(key)
        if current != expected_version:
            raise VersionConflictError(
                f"key {key!r} is at version {current}, "
                f"caller expected {expected_version}",
                current=current,
            )
        self.put(key, value)
        self.put(VERSION_PREFIX + key, current + 1)
        return current + 1

    def apply_op(
        self, key: str, op_id: str, delta: float,
        journal_limit: int = JOURNAL_LIMIT,
    ) -> tuple[float, bool]:
        """Idempotent increment: ``op_id`` is applied to ``key`` at most once.

        Returns ``(value, applied)``; a replayed ``op_id`` leaves the
        value untouched and reports ``applied=False``. The journal is
        bounded to ``journal_limit`` ids per key.
        """
        journal = list(self.get(JOURNAL_PREFIX + key, ()))
        if op_id in journal:
            return self.get(key, 0.0), False
        value = self.get(key, 0.0) + delta
        self.put(key, value)
        journal.append(op_id)
        journal = self._trim_journal(journal, journal_limit)
        self.put(JOURNAL_PREFIX + key, journal)
        self.put(VERSION_PREFIX + key, self.version(key) + 1)
        return value, True

    def put_once(
        self, key: str, op_id: str, value: Any,
        journal_limit: int = JOURNAL_LIMIT,
    ) -> bool:
        """Idempotent full-value write: ``op_id`` lands on ``key`` at most once.

        The value write, journal append and version bump happen in one
        engine call with no observable intermediate state, so this is the
        atomic commit point for read-modify-write updates: callers
        compute the new value first (from copies, emitting any derived
        work), then commit it here last. A replayed ``op_id`` leaves the
        stored value untouched and returns False.
        """
        journal = list(self.get(JOURNAL_PREFIX + key, ()))
        if op_id in journal:
            return False
        self.put(key, value)
        journal.append(op_id)
        journal = self._trim_journal(journal, journal_limit)
        self.put(JOURNAL_PREFIX + key, journal)
        self.put(VERSION_PREFIX + key, self.version(key) + 1)
        return True

    def op_seen(self, key: str, op_id: str) -> bool:
        """True when ``op_id`` is already journaled against ``key``.

        A pure read — the replay probe callers run *before* an update, so
        the journal itself is only written by the commit
        (:meth:`put_once` / :meth:`apply_op`) after the update succeeds.
        """
        return op_id in self.get(JOURNAL_PREFIX + key, ())

    def record_once(
        self, key: str, op_id: str, journal_limit: int = JOURNAL_LIMIT,
    ) -> bool:
        """Journal ``op_id`` against ``key`` without touching the value.

        Returns True the first time, False on a replay. Note the hazard
        for read-modify-write callers: journaling *before* mutating means
        a failure in between makes the replay skip the lost update. RMW
        updates should probe with :meth:`op_seen` and commit the computed
        value with :meth:`put_once` instead.
        """
        journal = list(self.get(JOURNAL_PREFIX + key, ()))
        if op_id in journal:
            return False
        journal.append(op_id)
        journal = self._trim_journal(journal, journal_limit)
        self.put(JOURNAL_PREFIX + key, journal)
        return True


class MDBEngine(StorageEngine):
    """Memory DataBase: a straightforward hash-table engine."""

    def __init__(self):
        self._data: dict[str, Any] = {}

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def put(self, key: str, value: Any):
        self._data[key] = value

    def delete(self, key: str) -> bool:
        return self._data.pop(key, _MISSING) is not _MISSING

    def keys(self) -> Iterator[str]:
        return iter(list(self._data.keys()))

    def __len__(self) -> int:
        return len(self._data)


class _SortedRun:
    """An immutable sorted run of (key, value) pairs; tombstones are values."""

    def __init__(self, items: list[tuple[str, Any]]):
        self.keys = [k for k, __ in items]
        self.values = [v for __, v in items]

    def get(self, key: str, default: Any = None) -> Any:
        index = bisect_left(self.keys, key)
        if index < len(self.keys) and self.keys[index] == key:
            return self.values[index]
        return default

    def __len__(self) -> int:
        return len(self.keys)


_TOMBSTONE = ("__tdstore_tombstone__",)


class LDBEngine(StorageEngine):
    """Level DataBase: memtable + sorted immutable runs with compaction."""

    def __init__(self, memtable_limit: int = 256, max_runs: int = 4):
        if memtable_limit <= 0:
            raise EngineError(f"memtable_limit must be positive: {memtable_limit}")
        if max_runs < 1:
            raise EngineError(f"max_runs must be >= 1: {max_runs}")
        self._memtable: dict[str, Any] = {}
        self._memtable_limit = memtable_limit
        self._max_runs = max_runs
        self._runs: list[_SortedRun] = []  # newest first
        self.flushes = 0
        self.compactions = 0

    def get(self, key: str, default: Any = None) -> Any:
        value = self._memtable.get(key, _MISSING)
        if value is _MISSING:
            for run in self._runs:
                value = run.get(key, _MISSING)
                if value is not _MISSING:
                    break
        if value is _MISSING or value == _TOMBSTONE:
            return default
        return value

    def put(self, key: str, value: Any):
        self._memtable[key] = value
        if len(self._memtable) >= self._memtable_limit:
            self._flush_memtable()

    def delete(self, key: str) -> bool:
        existed = self.contains(key)
        self._memtable[key] = _TOMBSTONE
        if len(self._memtable) >= self._memtable_limit:
            self._flush_memtable()
        return existed

    def _flush_memtable(self):
        if not self._memtable:
            return
        items = sorted(self._memtable.items())
        self._runs.insert(0, _SortedRun(items))
        self._memtable = {}
        self.flushes += 1
        if len(self._runs) > self._max_runs:
            self._compact()

    def _compact(self):
        """Merge all runs into one, dropping shadowed entries and tombstones."""
        merged: dict[str, Any] = {}
        for run in reversed(self._runs):  # oldest first, newest overwrite
            for key, value in zip(run.keys, run.values):
                merged[key] = value
        live = sorted(
            (k, v) for k, v in merged.items() if v != _TOMBSTONE
        )
        self._runs = [_SortedRun(live)] if live else []
        self.compactions += 1

    def keys(self) -> Iterator[str]:
        seen: dict[str, Any] = {}
        for run in reversed(self._runs):
            for key, value in zip(run.keys, run.values):
                seen[key] = value
        seen.update(self._memtable)
        return iter(sorted(k for k, v in seen.items() if v != _TOMBSTONE))

    def scan_prefix(self, prefix: str) -> Iterator[tuple[str, Any]]:
        """Yield live (key, value) pairs whose key starts with ``prefix``."""
        for key in self.keys():
            if key.startswith(prefix):
                yield key, self.get(key)
            elif key > prefix:
                return

    def __len__(self) -> int:
        return sum(1 for __ in self.keys())

    def run_count(self) -> int:
        return len(self._runs)


class RDBEngine(StorageEngine):
    """Redis DataBase: in-memory engine with per-key TTL expiry."""

    def __init__(self, clock: SimClock | None = None):
        self._clock = clock if clock is not None else SimClock()
        self._data: dict[str, Any] = {}
        self._expiry: dict[str, float] = {}

    def _expired(self, key: str) -> bool:
        deadline = self._expiry.get(key)
        return deadline is not None and self._clock.now() >= deadline

    def get(self, key: str, default: Any = None) -> Any:
        if self._expired(key):
            self._data.pop(key, None)
            self._expiry.pop(key, None)
            return default
        return self._data.get(key, default)

    def put(self, key: str, value: Any, ttl: float | None = None):
        self._data[key] = value
        if ttl is not None:
            if ttl <= 0:
                raise EngineError(f"ttl must be positive: {ttl}")
            self._expiry[key] = self._clock.now() + ttl
        else:
            self._expiry.pop(key, None)

    def delete(self, key: str) -> bool:
        self._expiry.pop(key, None)
        return self._data.pop(key, _MISSING) is not _MISSING

    def keys(self) -> Iterator[str]:
        return iter([k for k in list(self._data.keys()) if not self._expired(k)])

    def ttl(self, key: str) -> float | None:
        """Remaining seconds before expiry, or None if no TTL / missing."""
        deadline = self._expiry.get(key)
        if deadline is None or self._expired(key):
            return None
        return deadline - self._clock.now()

    def __len__(self) -> int:
        return sum(1 for __ in self.keys())


class FDBEngine(StorageEngine):
    """File DataBase: keys hashed into bucket files under a directory.

    Each bucket is a pickled dict; writes rewrite only the touched bucket.
    A new engine pointed at the same directory sees the previous data,
    which is how TDStore survives a data-server process restart.
    """

    def __init__(self, directory: str, num_buckets: int = 16):
        if num_buckets <= 0:
            raise EngineError(f"num_buckets must be positive: {num_buckets}")
        self._directory = directory
        self._num_buckets = num_buckets
        os.makedirs(directory, exist_ok=True)

    def _bucket_path(self, key: str) -> str:
        bucket = stable_hash(key) % self._num_buckets
        return os.path.join(self._directory, f"bucket-{bucket:04d}.pkl")

    def _load_bucket(self, path: str) -> dict[str, Any]:
        if not os.path.exists(path):
            return {}
        with open(path, "rb") as handle:
            return pickle.load(handle)

    def _store_bucket(self, path: str, data: dict[str, Any]):
        with open(path, "wb") as handle:
            pickle.dump(data, handle)

    def get(self, key: str, default: Any = None) -> Any:
        return self._load_bucket(self._bucket_path(key)).get(key, default)

    def multi_get(self, keys: "list[str]", default: Any = None) -> dict[str, Any]:
        # loading each bucket once serves every key hashed into it
        by_bucket: dict[str, list[str]] = {}
        for key in keys:
            by_bucket.setdefault(self._bucket_path(key), []).append(key)
        out: dict[str, Any] = {}
        for path, bucket_keys in by_bucket.items():
            data = self._load_bucket(path)
            for key in bucket_keys:
                out[key] = data.get(key, default)
        return out

    def put(self, key: str, value: Any):
        path = self._bucket_path(key)
        data = self._load_bucket(path)
        data[key] = value
        self._store_bucket(path, data)

    def delete(self, key: str) -> bool:
        path = self._bucket_path(key)
        data = self._load_bucket(path)
        existed = data.pop(key, _MISSING) is not _MISSING
        if existed:
            self._store_bucket(path, data)
        return existed

    def keys(self) -> Iterator[str]:
        names = sorted(os.listdir(self._directory))
        for name in names:
            if not name.startswith("bucket-"):
                continue
            data = self._load_bucket(os.path.join(self._directory, name))
            yield from sorted(data.keys())

    def __len__(self) -> int:
        return sum(1 for __ in self.keys())


EngineFactory = Callable[[], StorageEngine]


def make_engine(kind: str, clock: SimClock | None = None, **kwargs) -> StorageEngine:
    """Build an engine by its paper name: 'mdb', 'ldb', 'rdb' or 'fdb'."""
    kind = kind.lower()
    if kind == "mdb":
        return MDBEngine()
    if kind == "ldb":
        return LDBEngine(**kwargs)
    if kind == "rdb":
        return RDBEngine(clock=clock)
    if kind == "fdb":
        return FDBEngine(**kwargs)
    raise EngineError(f"unknown engine kind {kind!r}; expected mdb/ldb/rdb/fdb")
