"""TDStore: Tencent Data Store (Section 3.3, Figure 3).

A distributed, memory-based key-value store holding the status data the
recommendation algorithms need (user histories, itemCounts, pairCounts,
similar-item lists, CTR statistics). Config servers (host + backup)
manage a route table over data instances; data servers host the
instances with several storage engines (MDB/LDB/RDB/FDB); each instance
is replicated host -> slave at instance granularity, so nearly every
server serves traffic while still being a backup for others.
"""

from repro.tdstore.engines import (
    StorageEngine,
    MDBEngine,
    LDBEngine,
    RDBEngine,
    FDBEngine,
    make_engine,
)
from repro.tdstore.route_table import RouteTable, InstanceRoute
from repro.tdstore.data_server import TDStoreDataServer
from repro.tdstore.config_server import ConfigServerPair
from repro.tdstore.client import TDStoreClient
from repro.tdstore.cluster import TDStoreCluster

__all__ = [
    "StorageEngine",
    "MDBEngine",
    "LDBEngine",
    "RDBEngine",
    "FDBEngine",
    "make_engine",
    "RouteTable",
    "InstanceRoute",
    "TDStoreDataServer",
    "ConfigServerPair",
    "TDStoreClient",
    "TDStoreCluster",
]
