"""TDStore client API.

A client first queries the config server for the route table, then talks
directly to data servers (Section 3.3). Mutations are applied at the
host and queued to the slave. On a data-server failure the client asks
the config pair to fail over, refreshes its route table, and retries —
invisible to the caller.

The client is also where the resilience layer meets storage: every
operation can run under a propagated :class:`~repro.resilience.Deadline`
(ambient scopes nest, so an engine query's budget bounds every store
read it fans out into), behind a :class:`~repro.resilience.CircuitBreaker`
shared by all operations of this client, and through a
:class:`~repro.resilience.RetryPolicy` that absorbs transient injected
errors. Degraded servers advertise per-op latency which the client
charges against its clock, so latency spikes consume real (simulated)
time that deadlines observe.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable

from repro.errors import (
    CircuitOpenError,
    DataServerDownError,
    DeadlineExceededError,
    MigrationInProgressError,
    RetryBudgetExhaustedError,
    StaleRouteError,
    TDStoreError,
)
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import Deadline
from repro.resilience.retry import RetryBudget, RetryPolicy
from repro.tdstore.config_server import ConfigServerPair
from repro.utils.clock import SimClock

# failures the breaker counts against the dependency's health
_DEPENDENCY_FAILURES = (
    DataServerDownError,
    StaleRouteError,
    RetryBudgetExhaustedError,
)


class TDStoreClient:
    """Application-facing handle to a TDStore cluster.

    Parameters
    ----------
    config:
        The config-server pair to route through.
    clock:
        When given, server-advertised degradation latency is charged
        here per operation, which is what makes latency spikes visible
        to deadlines.
    breaker:
        Optional circuit breaker guarding every operation of this
        client; open means :class:`~repro.errors.CircuitOpenError`
        without touching a server.
    retry:
        Optional policy retrying transient per-op failures (injected
        error rates, crash/failover races) beyond the single built-in
        failover attempt.
    retry_budget:
        Optional per-client cap on the retry ratio.
    deadline_budget:
        When set, every operation outside an explicit
        :meth:`deadline_scope` gets a fresh deadline of this many
        seconds.
    """

    def __init__(
        self,
        config: ConfigServerPair,
        *,
        clock: SimClock | None = None,
        breaker: CircuitBreaker | None = None,
        retry: RetryPolicy | None = None,
        retry_budget: RetryBudget | None = None,
        deadline_budget: float | None = None,
    ):
        self._config = config
        self._table = config.route_table()
        self._clock = clock
        self._breaker = breaker
        self._retry = retry
        self._retry_budget = retry_budget
        self._deadline_budget = deadline_budget
        self._deadline_stack: list[Deadline] = []
        self.route_refreshes = 0
        self.breaker_rejections = 0
        self.deadline_misses = 0
        self.latency_absorbed = 0.0
        self.ops_applied = 0
        self.ops_deduped = 0
        # batched read path (serving layer)
        self.batch_ops = 0
        self.batched_keys = 0
        self.hedged_reads = 0
        self.degraded_keys = 0
        self.last_failed_keys: frozenset[str] = frozenset()
        # elastic scaling: cutover fences this client waited out
        self.migration_stalls = 0
        self.migration_stall_seconds = 0.0

    # -- deadline propagation ----------------------------------------------

    @contextmanager
    def deadline_scope(self, deadline: Deadline):
        """Make ``deadline`` ambient for every nested operation.

        Scopes nest: an inner scope created with
        :meth:`Deadline.child` cannot outlive the outer one.
        """
        self._deadline_stack.append(deadline)
        try:
            yield deadline
        finally:
            self._deadline_stack.pop()

    def _current_deadline(self) -> Deadline | None:
        if self._deadline_stack:
            return self._deadline_stack[-1]
        if self._deadline_budget is not None and self._clock is not None:
            return Deadline(self._clock.now, self._deadline_budget)
        return None

    @contextmanager
    def _op_scope(self):
        """One deadline shared by a compound op (incr/update = get+put)."""
        deadline = self._current_deadline()
        if deadline is None or self._deadline_stack:
            yield  # ambient scope (or none) already covers the compound op
        else:
            with self.deadline_scope(deadline):
                yield

    # -- core operation path -----------------------------------------------

    def _refresh_table(self):
        self._table = self._config.route_table()
        self.route_refreshes += 1

    def _maybe_refresh(self):
        """Re-download the route table only when its epoch moved.

        Route tables are immutable — every failover installs a *new*
        table with a bumped version — so an equal epoch guarantees the
        cached copy is byte-identical to the authoritative one. The
        per-op cost collapses to one integer compare; the full fetch
        happens only on an epoch change or a ``StaleRouteError`` fence.
        """
        if self._config.route_epoch != self._table.version:
            self._refresh_table()

    def _charge_latency(self, server_id: int, deadline: Deadline | None):
        """Spend the degraded server's advertised per-op latency."""
        latency = self._config.server(server_id).latency
        if latency > 0.0:
            self.latency_absorbed += latency
            if self._clock is not None:
                self._clock.advance(latency)
        if deadline is not None:
            deadline.check(f"tdstore op on server {server_id}")

    def _await_migration(self, instance: int, deadline: Deadline | None):
        """Wait out a cutover fence for one instance, then refresh routes.

        The stall (catch-up drain + route install at the config pair) is
        charged to the clock so deadlines — and the bench's cutover-stall
        p99 — observe it.
        """
        stall = self._config.await_migration(instance)
        self.migration_stalls += 1
        self.migration_stall_seconds += stall
        if stall > 0.0 and self._clock is not None:
            self._clock.advance(stall)
        if deadline is not None:
            deadline.check(f"awaiting cutover of instance {instance}")
        self._refresh_table()

    def _attempt(
        self, key: str, operation: Callable[[int, int], Any],
        deadline: Deadline | None,
    ) -> Any:
        """Run ``operation(host, instance)`` with one failover retry."""
        self._maybe_refresh()
        route = self._table.route_for_key(key)
        self._charge_latency(route.host, deadline)
        try:
            return operation(route.host, route.instance)
        except MigrationInProgressError as exc:
            # the instance is mid-cutover to a new host: wait it out and
            # retry against the post-cutover route — no failover, and no
            # table-refresh loop (our table was already current)
            self._await_migration(exc.instance, deadline)
            route = self._table.route_for_key(key)
            self._charge_latency(route.host, deadline)
            return operation(route.host, route.instance)
        except StaleRouteError:
            # fenced: another client already failed this instance over
            # (or the server restarted and lost the host role) — the
            # route table moved on without us
            self._refresh_table()
            route = self._table.route_for_key(key)
            self._charge_latency(route.host, deadline)
            return operation(route.host, route.instance)
        except DataServerDownError:
            if self._config.server(route.host).alive:
                # the server answered with an error but is not down (an
                # injected error rate, or it recovered under us): there
                # is nothing to fail over, so retry in place
                self._charge_latency(route.host, deadline)
                return operation(route.host, route.instance)
            self._config.handle_server_failure(route.host)
            self._refresh_table()
            route = self._table.route_for_key(key)
            self._charge_latency(route.host, deadline)
            return operation(route.host, route.instance)

    def _with_failover(self, key: str, operation: Callable[[int, int], Any]) -> Any:
        """Run ``operation(host_server_id, instance)`` under the full
        resilience stack: breaker gate, deadline, retry, failover."""
        if self._breaker is not None and not self._breaker.allow():
            self.breaker_rejections += 1
            raise CircuitOpenError(
                f"circuit breaker {self._breaker.name!r} is open; "
                f"tdstore op for key {key!r} rejected"
            )
        deadline = self._current_deadline()
        try:
            if deadline is not None:
                deadline.check(f"tdstore op for key {key!r}")
            if self._retry is not None:
                result = self._retry.run(
                    lambda: self._attempt(key, operation, deadline),
                    retryable=(DataServerDownError, StaleRouteError),
                    deadline=deadline,
                    budget=self._retry_budget,
                )
            else:
                result = self._attempt(key, operation, deadline)
        except DeadlineExceededError:
            self.deadline_misses += 1
            if self._breaker is not None:
                self._breaker.record_failure()
            raise
        except _DEPENDENCY_FAILURES:
            if self._breaker is not None:
                self._breaker.record_failure()
            raise
        if self._breaker is not None:
            self._breaker.record_success()
        return result

    # -- public API ------------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        def op(server_id: int, instance: int):
            return self._config.server(server_id).get(instance, key, default)

        return self._with_failover(key, op)

    def multi_get(self, keys, default: Any = None) -> dict[str, Any]:
        """Batched read: every key answered in one pass over the shards.

        Keys are grouped by host server from **one** route-table snapshot
        (one epoch check) and each server gets **one** batch op covering
        all of its instances — the per-key route lookup, breaker gate and
        failover bookkeeping of :meth:`get` are paid once per server
        instead of once per key.

        Failure semantics differ from the per-key path on purpose: a
        shard that stays unreachable after one failover/re-route attempt
        **degrades only its own keys** — first hedging to any live
        replica (stale-but-served), then falling back to ``default`` —
        rather than failing the whole query. The degraded keys are
        reported in :attr:`last_failed_keys`; the breaker records a
        failure for the batch when any key degraded to ``default``. A
        blown :class:`~repro.resilience.Deadline` still aborts the whole
        batch — time is a query-level budget, not a shard-level one.
        """
        keys = list(keys)
        self.last_failed_keys = frozenset()
        if not keys:
            return {}
        if self._breaker is not None and not self._breaker.allow():
            self.breaker_rejections += 1
            raise CircuitOpenError(
                f"circuit breaker {self._breaker.name!r} is open; "
                f"tdstore multi_get of {len(keys)} keys rejected"
            )
        deadline = self._current_deadline()
        try:
            if deadline is not None:
                deadline.check(f"tdstore multi_get of {len(keys)} keys")
            self._maybe_refresh()  # the one route snapshot for this batch
            by_host: dict[int, dict[int, list[str]]] = {}
            for key in keys:
                route = self._table.route_for_key(key)
                by_host.setdefault(route.host, {}).setdefault(
                    route.instance, []
                ).append(key)
            results: dict[str, Any] = {}
            failed: list[str] = []
            for host in sorted(by_host):
                got, bad = self._serve_batch(
                    host, by_host[host], default, deadline
                )
                results.update(got)
                failed.extend(bad)
        except DeadlineExceededError:
            self.deadline_misses += 1
            if self._breaker is not None:
                self._breaker.record_failure()
            raise
        self.batched_keys += len(keys)
        if failed:
            self.degraded_keys += len(failed)
            self.last_failed_keys = frozenset(failed)
            for key in failed:
                results[key] = default
            if self._breaker is not None:
                self._breaker.record_failure()
        elif self._breaker is not None:
            self._breaker.record_success()
        return results

    def _batch_op(
        self,
        host: int,
        batches: dict[int, list[str]],
        default: Any,
        deadline: Deadline | None,
    ) -> dict[str, Any]:
        """One per-server batch op; degraded latency charged once."""
        self._charge_latency(host, deadline)
        self.batch_ops += 1
        return self._config.server(host).multi_get(batches, default)

    def _serve_batch(
        self,
        host: int,
        batches: dict[int, list[str]],
        default: Any,
        deadline: Deadline | None,
    ) -> tuple[dict[str, Any], list[str]]:
        """Serve one server's batch with one failover/re-route attempt.

        Returns ``(results, degraded_keys)`` — shard failures degrade to
        hedged replica reads and then to the caller's default instead of
        propagating (Deadline misses excepted).
        """
        try:
            return self._batch_op(host, batches, default, deadline), []
        except MigrationInProgressError as exc:
            # only this server's shard is moving: wait out the cutover
            # (which refreshes the table) and retry just these batches —
            # results from the other servers in the query already stand
            self._await_migration(exc.instance, deadline)
        except StaleRouteError:
            # fenced: a failover moved routes under us — epoch check
            # below picks up the new table
            pass
        except DataServerDownError:
            server = self._config.server(host)
            if server.alive:
                # injected error rate or recovered under us: one retry in
                # place, mirroring the per-key path
                try:
                    return self._batch_op(host, batches, default, deadline), []
                except MigrationInProgressError as exc:
                    self._await_migration(exc.instance, deadline)
                except (DataServerDownError, StaleRouteError):
                    pass
            else:
                try:
                    self._config.handle_server_failure(host)
                except TDStoreError:
                    # failover impossible right now (not enough live
                    # servers); hedged replica reads below still answer
                    pass
        self._maybe_refresh()
        # regroup this server's instances onto their current hosts
        regrouped: dict[int, dict[int, list[str]]] = {}
        for instance, instance_keys in batches.items():
            route = self._table.route(instance)
            regrouped.setdefault(route.host, {})[instance] = instance_keys
        results: dict[str, Any] = {}
        failed: list[str] = []
        for new_host in sorted(regrouped):
            got, bad = self._serve_regrouped(
                new_host, regrouped[new_host], default, deadline
            )
            results.update(got)
            failed.extend(bad)
        return results, failed

    def _serve_regrouped(
        self,
        host: int,
        batches: dict[int, list[str]],
        default: Any,
        deadline: Deadline | None,
    ) -> tuple[dict[str, Any], list[str]]:
        """Second-chance batch against current routes, then degrade."""
        try:
            return self._batch_op(host, batches, default, deadline), []
        except MigrationInProgressError as exc:
            # a cutover raced the re-route: wait it out, then one final
            # per-instance pass on post-cutover routes before degrading
            self._await_migration(exc.instance, deadline)
            results: dict[str, Any] = {}
            failed: list[str] = []
            for instance, instance_keys in batches.items():
                route = self._table.route(instance)
                try:
                    results.update(
                        self._batch_op(
                            route.host, {instance: instance_keys},
                            default, deadline,
                        )
                    )
                except (
                    DataServerDownError,
                    StaleRouteError,
                    MigrationInProgressError,
                ):
                    got, bad = self._hedge_batches(
                        {instance: instance_keys}, default, deadline,
                        route.host,
                    )
                    results.update(got)
                    failed.extend(bad)
            return results, failed
        except (DataServerDownError, StaleRouteError):
            # this shard stays degraded: hedge each instance to any
            # live replica; keys with no replica fall to the default
            return self._hedge_batches(batches, default, deadline, host)

    def _hedge_batches(
        self,
        batches: dict[int, list[str]],
        default: Any,
        deadline: Deadline | None,
        exclude: int,
    ) -> tuple[dict[str, Any], list[str]]:
        results: dict[str, Any] = {}
        failed: list[str] = []
        for instance, instance_keys in batches.items():
            got = self._hedge(instance, instance_keys, default, deadline, exclude)
            if got is None:
                failed.extend(instance_keys)
            else:
                results.update(got)
        return results, failed

    def _hedge(
        self,
        instance: int,
        keys: list[str],
        default: Any,
        deadline: Deadline | None,
        exclude: int,
    ) -> "dict[str, Any] | None":
        """Read ``instance`` from any live replica other than ``exclude``."""
        route = self._table.route(instance)
        for candidate in (route.slave, route.host):
            if candidate == exclude:
                continue
            server = self._config.server(candidate)
            if not server.alive:
                continue
            try:
                self._charge_latency(candidate, deadline)
                got = server.read_replica(instance, keys, default)
            except DeadlineExceededError:
                raise
            except TDStoreError:
                continue
            self.hedged_reads += 1
            return got
        return None

    def put(self, key: str, value: Any):
        def op(server_id: int, instance: int):
            record = self._config.server(server_id).put(instance, key, value)
            self._sync_to_slave(instance, record)
            return None

        return self._with_failover(key, op)

    def delete(self, key: str):
        def op(server_id: int, instance: int):
            record = self._config.server(server_id).delete(instance, key)
            self._sync_to_slave(instance, record)
            return None

        return self._with_failover(key, op)

    def _sync_to_slave(self, instance: int, record: Any):
        # the host forwards the record to its slave; it always knows the
        # *current* slave. The epoch-checked cached table is identical to
        # the authoritative one whenever the epochs match, so this stays
        # a local lookup instead of a per-mutation table download.
        self._maybe_refresh()
        route = self._table.route(instance)
        try:
            # a downed slave rejects the record; skipping it is the same
            # decision a liveness pre-check would make, without spending
            # a round trip on remote replicas to find out
            self._config.server(route.slave).enqueue_sync(instance, record)
        except DataServerDownError:
            pass
        # dual-write window of a live migration: the catch-up target
        # receives every record written after its snapshot copy, so the
        # cutover only has to drain this queue — journals and versions
        # ride along in the same records that replicate them to slaves
        target_id = self._config.migration_target(instance)
        if target_id is not None and target_id != route.slave:
            try:
                self._config.server(target_id).enqueue_sync(instance, record)
            except DataServerDownError:
                pass

    # -- transactional API (exactly-once support) ---------------------------

    def get_versioned(self, key: str, default: Any = None) -> tuple[Any, int]:
        """Return ``(value, version)``; version 0 means never CAS-written."""
        def op(server_id: int, instance: int):
            return self._config.server(server_id).get_versioned(
                instance, key, default
            )

        return self._with_failover(key, op)

    def check_and_set(self, key: str, value: Any, expected_version: int) -> int:
        """Conditional write: succeed only at ``expected_version``.

        Returns the new version. On a lost race
        :class:`~repro.errors.VersionConflictError` propagates (it is not
        a transport failure, so no failover/retry is spent on it); the
        caller re-reads with :meth:`get_versioned` and retries.
        """
        def op(server_id: int, instance: int):
            new_version, records = self._config.server(server_id).check_and_set(
                instance, key, value, expected_version
            )
            for record in records:
                self._sync_to_slave(instance, record)
            return new_version

        return self._with_failover(key, op)

    def apply(self, key: str, op_id: str, delta: float = 1.0) -> tuple[float, bool]:
        """Idempotent increment: ``op_id`` lands on ``key`` at most once.

        Returns ``(value, applied)``. Safe to replay — including across a
        host→slave failover, because the op journal replicates with the
        value — and safe to retry after an ambiguous transport failure.
        """
        def op(server_id: int, instance: int):
            value, applied, records = self._config.server(server_id).apply_op(
                instance, key, op_id, delta
            )
            for record in records:
                self._sync_to_slave(instance, record)
            return value, applied

        value, applied = self._with_failover(key, op)
        if applied:
            self.ops_applied += 1
        else:
            self.ops_deduped += 1
        return value, applied

    def put_once(self, key: str, op_id: str, value: Any) -> bool:
        """Idempotent full-value write: ``op_id`` lands on ``key`` at most once.

        The commit point for read-modify-write updates: compute the new
        value (and emit any derived work) first, then call this *last* —
        the value and the journal entry commit atomically at the host, so
        a failure anywhere earlier leaves no journal entry and the
        replayed op re-executes the whole update. Returns False on a
        replay, leaving the stored value untouched.
        """
        def op(server_id: int, instance: int):
            applied, records = self._config.server(server_id).put_once(
                instance, key, op_id, value
            )
            for record in records:
                self._sync_to_slave(instance, record)
            return applied

        applied = self._with_failover(key, op)
        if applied:
            self.ops_applied += 1
        else:
            self.ops_deduped += 1
        return applied

    def op_seen(self, key: str, op_id: str) -> bool:
        """True when ``op_id`` was already committed against ``key``.

        The replay probe paired with :meth:`put_once`: a pure read, so
        probing never creates the journal entry — only a successful
        commit does.
        """
        def op(server_id: int, instance: int):
            return self._config.server(server_id).op_seen(instance, key, op_id)

        return self._with_failover(key, op)

    def run_once(self, key: str, op_id: str) -> bool:
        """Journal ``op_id`` against ``key``; True the first time only.

        Durably journals *before* the caller mutates anything, so a
        failure mid-update makes the replay skip the lost work —
        read-modify-write callers should use :meth:`op_seen` +
        :meth:`put_once` instead and commit last.
        """
        def op(server_id: int, instance: int):
            recorded, records = self._config.server(server_id).record_once(
                instance, key, op_id
            )
            for record in records:
                self._sync_to_slave(instance, record)
            return recorded

        recorded = self._with_failover(key, op)
        if recorded:
            self.ops_applied += 1
        else:
            self.ops_deduped += 1
        return recorded

    def incr(self, key: str, delta: float = 1.0) -> float:
        """Atomic-within-the-simulation numeric increment; returns new value."""
        with self._op_scope():
            value = self.get(key, 0.0) + delta
            self.put(key, value)
            return value

    def update(self, key: str, fn: Callable[[Any], Any], default: Any = None) -> Any:
        """Read-modify-write helper; returns the stored result."""
        with self._op_scope():
            value = fn(self.get(key, default))
            self.put(key, value)
            return value

    def contains(self, key: str) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel
