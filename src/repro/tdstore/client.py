"""TDStore client API.

A client first queries the config server for the route table, then talks
directly to data servers (Section 3.3). Mutations are applied at the
host and queued to the slave. On a data-server failure the client asks
the config pair to fail over, refreshes its route table, and retries —
invisible to the caller.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import DataServerDownError, StaleRouteError
from repro.tdstore.config_server import ConfigServerPair


class TDStoreClient:
    """Application-facing handle to a TDStore cluster."""

    def __init__(self, config: ConfigServerPair):
        self._config = config
        self._table = config.route_table()
        self.route_refreshes = 0

    def _refresh_table(self):
        self._table = self._config.route_table()
        self.route_refreshes += 1

    def _with_failover(self, key: str, operation: Callable[[int, int], Any]) -> Any:
        """Run ``operation(host_server_id, instance)``, failing over once."""
        route = self._table.route_for_key(key)
        try:
            return operation(route.host, route.instance)
        except StaleRouteError:
            # fenced: another client already failed this instance over
            # (or the server restarted and lost the host role) — the
            # route table moved on without us
            self._refresh_table()
            route = self._table.route_for_key(key)
            return operation(route.host, route.instance)
        except DataServerDownError:
            self._config.handle_server_failure(route.host)
            self._refresh_table()
            route = self._table.route_for_key(key)
            return operation(route.host, route.instance)

    # -- public API ------------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        def op(server_id: int, instance: int):
            return self._config.server(server_id).get(instance, key, default)

        return self._with_failover(key, op)

    def put(self, key: str, value: Any):
        def op(server_id: int, instance: int):
            record = self._config.server(server_id).put(instance, key, value)
            self._sync_to_slave(instance, record)
            return None

        return self._with_failover(key, op)

    def delete(self, key: str):
        def op(server_id: int, instance: int):
            record = self._config.server(server_id).delete(instance, key)
            self._sync_to_slave(instance, record)
            return None

        return self._with_failover(key, op)

    def _sync_to_slave(self, instance: int, record: Any):
        # the host forwards the record to its slave; it always knows the
        # *current* slave, so consult the authoritative table rather than
        # this client's cached copy (which may predate a failover)
        route = self._config.route_table().route(instance)
        slave = self._config.server(route.slave)
        if slave.alive:
            slave.enqueue_sync(instance, record)

    def incr(self, key: str, delta: float = 1.0) -> float:
        """Atomic-within-the-simulation numeric increment; returns new value."""
        value = self.get(key, 0.0) + delta
        self.put(key, value)
        return value

    def update(self, key: str, fn: Callable[[Any], Any], default: Any = None) -> Any:
        """Read-modify-write helper; returns the stored result."""
        value = fn(self.get(key, default))
        self.put(key, value)
        return value

    def contains(self, key: str) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel
