"""TDStore config servers.

A host config server and a backup config server manage the route table
and track data-server liveness (Figure 3). Clients fetch the route table
once and refresh it when the version changes; synchronization between
data servers happens without much config-server involvement — the config
pair only rewrites routes on failover.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import MigrationError, RouteError, TDStoreError
from repro.tdstore.data_server import TDStoreDataServer
from repro.tdstore.route_table import RouteTable

if TYPE_CHECKING:
    from repro.elastic.migration import Migration


class ConfigServerPair:
    """Host + backup config servers, kept trivially in sync."""

    def __init__(self, servers: list[TDStoreDataServer], num_instances: int):
        if len(servers) < 2:
            raise TDStoreError("TDStore needs at least two data servers")
        self._servers = {s.server_id: s for s in servers}
        self._table = RouteTable.balanced(
            num_instances, sorted(self._servers)
        )
        self.host_alive = True
        self.failovers = 0
        # elastic scaling: live migrations registered by their Migration
        # object while in flight (dual-write routing + cutover handoff)
        self._migrations: dict[int, "Migration"] = {}
        self.migrations_completed = 0
        self.migrations_aborted = 0
        self._provision_instances()

    def _provision_instances(self):
        for instance in range(self._table.num_instances):
            route = self._table.route(instance)
            self._servers[route.host].set_host_role(instance, True)
            self._servers[route.slave].ensure_instance(instance)

    # -- queries -------------------------------------------------------------

    def route_table(self) -> RouteTable:
        """What a client downloads before talking to data servers."""
        return self._table

    @property
    def route_epoch(self) -> int:
        """Monotonic version of the current route table.

        Clients poll this cheap scalar per operation and re-download the
        full table only when it moved (a failover bumped it) — the
        route-table fetch is off the per-op hot path.
        """
        return self._table.version

    def server(self, server_id: int) -> TDStoreDataServer:
        try:
            return self._servers[server_id]
        except KeyError:
            raise TDStoreError(f"unknown data server {server_id}") from None

    def servers(self) -> list[TDStoreDataServer]:
        return [self._servers[sid] for sid in sorted(self._servers)]

    # -- elastic scaling ------------------------------------------------------

    def add_server(self, server: TDStoreDataServer):
        """Register a new (empty) data server with the pool.

        The new server hosts nothing until the
        :class:`~repro.elastic.migration.InstanceMigrator` moves data
        instances onto it — expansion is routing-neutral by itself, so
        clients holding the old table stay correct.
        """
        if server.server_id in self._servers:
            raise TDStoreError(
                f"data server id {server.server_id} already registered"
            )
        if not server.alive:
            raise TDStoreError(
                f"refusing to register dead data server {server.server_id}"
            )
        self._servers[server.server_id] = server

    def drain_server(self, server_id: int, exclude: tuple = ()) -> list:
        """Move every role off ``server_id`` so it can be decommissioned.

        Hosted instances are live-migrated to the least-loaded remaining
        servers (full snapshot-copy → dual-write → cutover protocol);
        backed-up instances get a new slave seeded from their host.
        ``exclude`` bars further servers from receiving the load (for
        multi-server decommissions). Returns the completed
        :class:`MigrationRecord` list.
        """
        from repro.elastic.migration import InstanceMigrator

        return InstanceMigrator(self).drain(server_id, exclude=exclude)

    def install_table(self, table: RouteTable):
        """Install a derived route table (epoch must move forward)."""
        if table.version <= self._table.version:
            raise RouteError(
                f"route table version must advance: {table.version} <= "
                f"{self._table.version}"
            )
        if table.num_instances != self._table.num_instances:
            raise RouteError(
                "route table must cover the same instances: "
                f"{table.num_instances} != {self._table.num_instances}"
            )
        self._table = table

    # -- live migration registry ---------------------------------------------

    def register_migration(self, migration: "Migration"):
        """A migration entered its dual-write window for one instance."""
        if migration.instance in self._migrations:
            raise MigrationError(
                f"instance {migration.instance} already has a migration "
                "in flight"
            )
        self._migrations[migration.instance] = migration

    def register_remote_migration(self, instance: int, target_id: int):
        """Register a dual-write window driven from another process.

        A :class:`~repro.elastic.migration.Migration` holds live server
        handles (socket-backed proxies on the process substrate), so the
        object itself cannot cross an RPC boundary. The remote migrator
        ships just ``(instance, target_id)`` and this config pair builds
        its own surrogate against the hosted cluster — fence-waiters
        (:meth:`await_migration`) and failover aborts then act on local
        server handles with full fidelity, while the remote driver keeps
        stepping its copy of the protocol over RPC.
        """
        from repro.elastic.migration import Migration

        migration = Migration(self, instance, target_id)
        # the remote driver already ran begin(): snapshot copied, window open
        migration.record.state = "catching_up"
        self.register_migration(migration)

    def unregister_migration(self, instance: int, completed: bool = True):
        if self._migrations.pop(instance, None) is not None:
            if completed:
                self.migrations_completed += 1
            else:
                self.migrations_aborted += 1

    def migration_target(self, instance: int) -> int | None:
        """Dual-write destination for ``instance``, if one is in flight."""
        migration = self._migrations.get(instance)
        return migration.target_id if migration is not None else None

    def migration_targets(self) -> "dict[int, int]":
        """Every in-flight dual-write destination, keyed by instance.

        Remote clients download this next to the route table so the
        common case — no migration anywhere — costs them a dictionary
        lookup per mutation instead of a control-plane round trip.
        """
        return {
            instance: migration.target_id
            for instance, migration in self._migrations.items()
        }

    def await_migration(self, instance: int) -> float:
        """Block (simulated) until ``instance``'s cutover completes.

        A client that hit the :class:`~repro.errors.MigrationInProgressError`
        fence calls this; completing the migration is what "waiting for
        the new host" collapses to in a discrete-event world. Returns the
        stall the client must charge to its clock.
        """
        migration = self._migrations.get(instance)
        if migration is None:
            return 0.0  # cutover finished between the fence and the wait
        try:
            migration.finish()
        except MigrationError:
            # the move aborted (target died / failover raced); the fence
            # is down and the current table is authoritative — retry
            return 0.0
        return migration.stall_seconds

    def in_flight_migrations(self) -> list[dict]:
        """Manifest/monitoring view of every migration in flight."""
        return [
            self._migrations[instance].record.as_dict()
            for instance in sorted(self._migrations)
        ]

    # -- failover -------------------------------------------------------------

    def handle_server_failure(self, failed_id: int):
        """Promote slaves for every instance the failed server hosted.

        The promoted slave applies its pending sync queue first so no
        acknowledged write is lost; a new slave is chosen among the
        remaining live servers and bootstrapped with a snapshot.
        """
        failed = self.server(failed_id)
        if failed.alive:
            raise TDStoreError(
                f"server {failed_id} is alive; refusing failover"
            )
        live = [s for s in self.servers() if s.alive]
        if len(live) < 2:
            raise TDStoreError("not enough live servers to re-replicate")
        # migrations whose source or target just died cannot complete;
        # abort them so failover sees a clean (fence-free) route state
        for instance in sorted(self._migrations):
            migration = self._migrations[instance]
            if failed_id in (migration.source_id, migration.target_id):
                migration.abort()
        table = self._table
        for instance in table.instances_hosted_by(failed_id):
            route = table.route(instance)
            promoted = self.server(route.slave)
            if not promoted.alive:
                raise TDStoreError(
                    f"instance {instance}: host and slave both down; data lost"
                )
            promoted.apply_pending(instance)
            new_slave = self._pick_new_slave(route.slave, live)
            snapshot = promoted.snapshot_instance(instance)
            self.server(new_slave).adopt_snapshot(instance, snapshot)
            table = table.promote_slave(instance, new_slave)
            # fencing handoff: the promoted slave now owns the instance;
            # the crashed server must not serve it if it ever revives
            promoted.set_host_role(instance, True)
            failed.set_host_role(instance, False)
        # instances where the failed server was the *slave* need a new slave
        for instance in table.instances_backed_by(failed_id):
            route = table.route(instance)
            if route.host == failed_id:
                continue
            host = self.server(route.host)
            if not host.alive:
                continue
            new_slave = self._pick_new_slave(route.host, live)
            snapshot = host.snapshot_instance(instance)
            self.server(new_slave).adopt_snapshot(instance, snapshot)
            table = table.with_slave(instance, new_slave)
        self._table = table
        self.failovers += 1

    def handle_server_recovery(self, server_id: int):
        """Resynchronize a restarted server's replicas.

        TDStore is memory-based: a restarted process has empty engines,
        but the route table may still name it host or slave for some
        instances. Each such instance is re-seeded from its other
        (live) participant before the server serves traffic again.
        """
        server = self.server(server_id)
        if not server.alive:
            raise TDStoreError(
                f"server {server_id} is down; recover it first"
            )
        table = self._table
        for instance in range(table.num_instances):
            route = table.route(instance)
            if server_id == route.host:
                peer = self.server(route.slave)
                # restart cleared the roles; re-grant what the current
                # table still assigns to this server
                server.set_host_role(instance, True)
            elif server_id == route.slave:
                peer = self.server(route.host)
            else:
                continue
            if not peer.alive:
                continue  # both copies were lost; nothing to restore from
            peer.apply_pending(instance)
            server.adopt_snapshot(instance, peer.snapshot_instance(instance))

    def _pick_new_slave(self, host_id: int, live: list[TDStoreDataServer]) -> int:
        candidates = [s for s in live if s.server_id != host_id]
        if not candidates:
            raise RouteError("no live server available as new slave")
        # least-loaded (fewest hosted instances) keeps the balance property
        load = self._table.host_load()
        return min(
            candidates, key=lambda s: (load.get(s.server_id, 0), s.server_id)
        ).server_id

    def kill_host_config(self):
        """Host config server dies; the backup answers queries seamlessly."""
        if not self.host_alive:
            raise TDStoreError("host config server already down")
        self.host_alive = False

    def revive_host_config(self):
        self.host_alive = True
