"""Replica anti-entropy: background scrub with read-repair.

Checksummed WAL records and RPC frames catch corruption *in flight*;
this module catches what they cannot — a replica whose in-memory state
silently diverged from its host (a bit flip in resident memory, a bug
in a repair path, a partially-applied snapshot). The scrubber walks
every instance's host/slave pair, compares Merkle-style per-bucket
content digests, and repairs divergent buckets from the authoritative
host copy.

Design points:

- **Buckets, not keys.** Keys hash into :data:`SCRUB_BUCKETS` buckets
  (same ``stable_hash`` the engines use) and each bucket is digested
  as a unit. Matching digests prove bucket equality without shipping
  values; only divergent buckets pay for key-level transfer — the
  standard Merkle-tree trade, one level deep, which is plenty at
  instance granularity.
- **Lag is not divergence.** The slave applies its pending sync queue
  before snapshots are taken, and any instance whose queue is non-empty
  *after* the snapshots raced a concurrent write and is skipped — a
  scrub may only report divergence it would also repair.
- **Fences are respected.** Instances mid-migration, instances whose
  route-table host does not actually hold the host role yet
  (mid-promotion), and pairs with a dead participant are skipped and
  counted, never "repaired" across a fence.
- **Meta rides along.** Engine snapshots carry the ``__ver__:`` and
  ``__ops__:`` keys like any other key, so a repaired replica keeps the
  op-journal dedup state a later promotion depends on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.utils.hashing import stable_hash

# buckets per instance; instances hold at most a few hundred keys in
# this deployment, so 16 buckets keep repair transfers near key-sized
# while digests stay cheap
SCRUB_BUCKETS = 16


def canonical_bytes(value: Any) -> bytes:
    """Deterministic byte rendering of a stored value.

    Dicts are rendered with sorted keys recursively, so two logically
    equal values digest identically regardless of insertion order —
    engine snapshots of independently-built replicas must not diverge
    on dict ordering alone.
    """

    def _canon(v: Any):
        if isinstance(v, dict):
            return ("d", tuple((k, _canon(v[k])) for k in sorted(v, key=repr)))
        if isinstance(v, (list, tuple)):
            return ("l", tuple(_canon(x) for x in v))
        if isinstance(v, set):
            return ("s", tuple(sorted((repr(x) for x in v))))
        return ("v", repr(v))

    return repr(_canon(value)).encode("utf-8")


def bucket_of(key: str, buckets: int = SCRUB_BUCKETS) -> int:
    return stable_hash(key) % buckets


def bucket_digests(
    snapshot: "dict[str, Any]", buckets: int = SCRUB_BUCKETS
) -> "list[str]":
    """Per-bucket sha256 content digests of one instance snapshot.

    Each bucket digest covers its keys in sorted order, key and value
    both, so digest equality means bucket-content equality (up to hash
    collisions, which sha256 makes irrelevant in practice).
    """
    grouped: "list[list[str]]" = [[] for _ in range(buckets)]
    for key in snapshot:
        grouped[bucket_of(key, buckets)].append(key)
    digests = []
    for keys in grouped:
        hasher = hashlib.sha256()
        for key in sorted(keys):
            hasher.update(key.encode("utf-8"))
            hasher.update(b"\x00")
            hasher.update(canonical_bytes(snapshot[key]))
            hasher.update(b"\x01")
        digests.append(hasher.hexdigest())
    return digests


@dataclass
class ScrubReport:
    """What one scrub pass saw and did."""

    instances_scanned: int = 0
    skipped_migrating: int = 0
    skipped_unhosted: int = 0
    skipped_down: int = 0
    skipped_racing: int = 0
    buckets_compared: int = 0
    divergent_buckets: int = 0
    keys_repaired: int = 0
    keys_deleted: int = 0
    corruptions_detected: int = 0
    divergent_instances: "list[int]" = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.divergent_buckets == 0

    def to_dict(self) -> dict:
        return {
            "instances_scanned": self.instances_scanned,
            "skipped_migrating": self.skipped_migrating,
            "skipped_unhosted": self.skipped_unhosted,
            "skipped_down": self.skipped_down,
            "skipped_racing": self.skipped_racing,
            "buckets_compared": self.buckets_compared,
            "divergent_buckets": self.divergent_buckets,
            "keys_repaired": self.keys_repaired,
            "keys_deleted": self.keys_deleted,
            "corruptions_detected": self.corruptions_detected,
            "divergent_instances": list(self.divergent_instances),
            "clean": self.clean,
        }


class ReplicaScrubber:
    """One scrub pass over a ``TDStoreCluster`` (or hosted facade).

    The cluster is duck-typed: ``config.route_table()`` /
    ``config.server(id)`` / ``config.migration_target(instance)`` is
    all the scrubber touches, so it runs unchanged over in-process
    servers and :class:`~repro.runtime.proxies.RemoteDataServer`
    proxies (which is how the process substrate scrubs: the pass runs
    inside host 0's control plane, reaching sibling hosts over RPC).
    """

    def __init__(self, cluster, *, buckets: int = SCRUB_BUCKETS):
        self._cluster = cluster
        self._buckets = buckets

    def scrub(self) -> ScrubReport:
        report = ScrubReport()
        config = self._cluster.config
        table = config.route_table()
        for instance in range(table.num_instances):
            self._scrub_instance(config, table, instance, report)
        return report

    def _scrub_instance(self, config, table, instance: int, report) -> None:
        if config.migration_target(instance) is not None:
            # a dual-write is in flight: the pair is *expected* to be in
            # motion, and repairing across the cutover fence could undo
            # the migrator's catch-up. The next pass sees the settled pair.
            report.skipped_migrating += 1
            return
        route = table.route(instance)
        host = config.server(route.host)
        slave = config.server(route.slave)
        if not host.alive or not slave.alive:
            report.skipped_down += 1
            return
        if not host.hosts(instance):
            # route table and granted roles disagree — mid-promotion or
            # mid-recovery. There is no authoritative copy to repair
            # from until the control plane settles.
            report.skipped_unhosted += 1
            return
        # replication lag is not divergence: let the slave catch up first
        slave.apply_pending(instance)
        host_snap = host.snapshot_instance(instance)
        slave_snap = slave.snapshot_instance(instance)
        if slave.pending_syncs(instance) > 0:
            # a write landed between the two snapshots; comparing them
            # would report phantom divergence. Skip — scrub is a loop,
            # not a one-shot.
            report.skipped_racing += 1
            return
        report.instances_scanned += 1
        host_digests = bucket_digests(host_snap, self._buckets)
        slave_digests = bucket_digests(slave_snap, self._buckets)
        report.buckets_compared += self._buckets
        divergent = [
            b for b in range(self._buckets)
            if host_digests[b] != slave_digests[b]
        ]
        if not divergent:
            return
        report.divergent_buckets += len(divergent)
        report.divergent_instances.append(instance)
        self._repair(
            instance, set(divergent), host_snap, slave_snap, slave, report
        )

    def _repair(
        self, instance, divergent, host_snap, slave_snap, slave, report
    ) -> None:
        puts: "dict[str, Any]" = {}
        deletes: "list[str]" = []
        for key, value in host_snap.items():
            if bucket_of(key, self._buckets) not in divergent:
                continue
            if key not in slave_snap:
                puts[key] = value  # slave lost it
            elif canonical_bytes(slave_snap[key]) != canonical_bytes(value):
                # present on both sides with different content: this is
                # the silent-corruption signature, not mere lag
                report.corruptions_detected += 1
                puts[key] = value
        for key in slave_snap:
            if (
                bucket_of(key, self._buckets) in divergent
                and key not in host_snap
            ):
                deletes.append(key)  # slave grew a phantom key
        slave.apply_repair(instance, puts, sorted(deletes))
        report.keys_repaired += len(puts)
        report.keys_deleted += len(deletes)


__all__ = [
    "ReplicaScrubber",
    "ScrubReport",
    "SCRUB_BUCKETS",
    "bucket_digests",
    "bucket_of",
    "canonical_bytes",
]
