"""TDStore data servers.

A data server holds one engine per data instance it participates in
(whether as host or slave). Host writes are applied locally and queued
for the slave; the slave applies queued records "when idle" — we expose
that as an explicit :meth:`apply_pending` the cluster calls during idle
periods and, crucially, before a slave is promoted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import (
    DataServerDownError,
    MigrationInProgressError,
    StaleRouteError,
    TDStoreError,
)
from repro.tdstore.engines import JOURNAL_PREFIX, VERSION_PREFIX, StorageEngine

_DELETE = "__delete__"
_PUT = "__put__"


@dataclass
class SyncRecord:
    """One replicated mutation: operation, key, and value (for puts)."""

    op: str
    key: str
    value: Any = None


class TDStoreDataServer:
    """One TDStore data-server process."""

    def __init__(self, server_id: int, engine_factory: Callable[[], StorageEngine]):
        self.server_id = server_id
        self.alive = True
        self._engine_factory = engine_factory
        self._engines: dict[int, StorageEngine] = {}
        # replication inbox per instance this server backs up
        self._sync_inbox: dict[int, deque[SyncRecord]] = {}
        # instances this server currently *hosts* (fencing: client traffic
        # for any other instance means the client's route table is stale)
        self._hosted: set[int] = set()
        # instances mid-cutover to a new host: still owned here, but the
        # migration fence bounces traffic so no write can land after the
        # catch-up queue was drained at the target
        self._migrating_out: set[int] = set()
        self.reads = 0
        self.writes = 0
        self.batch_ops = 0
        self.replica_reads = 0
        self.syncs_applied = 0
        self.repairs_applied = 0
        # degradation state (chaos injection): extra seconds a client
        # should charge per operation, and a deterministic error cadence
        self.latency = 0.0
        self.error_every = 0
        self._degraded_ops = 0
        self.injected_errors = 0

    # -- instance management ------------------------------------------------

    def ensure_instance(self, instance: int) -> StorageEngine:
        engine = self._engines.get(instance)
        if engine is None:
            engine = self._engine_factory()
            self._engines[instance] = engine
            self._sync_inbox.setdefault(instance, deque())
        return engine

    def engine(self, instance: int) -> StorageEngine:
        self._check_alive()
        try:
            return self._engines[instance]
        except KeyError:
            raise TDStoreError(
                f"server {self.server_id} has no instance {instance}"
            ) from None

    def instances(self) -> list[int]:
        return sorted(self._engines)

    def set_host_role(self, instance: int, hosting: bool):
        """Config server grants/revokes the host role for ``instance``."""
        self.ensure_instance(instance)
        if hosting:
            self._hosted.add(instance)
        else:
            self._hosted.discard(instance)

    def hosts(self, instance: int) -> bool:
        return instance in self._hosted

    def _check_alive(self):
        if not self.alive:
            raise DataServerDownError(f"data server {self.server_id} is down")

    def _check_host(self, instance: int):
        if instance in self._migrating_out:
            raise MigrationInProgressError(
                f"instance {instance} is mid-cutover off server "
                f"{self.server_id}; await the migration and retry",
                instance=instance,
            )
        if instance not in self._hosted:
            raise StaleRouteError(
                f"server {self.server_id} no longer hosts instance "
                f"{instance}; refresh the route table"
            )

    def set_migration_fence(self, instance: int, fenced: bool):
        """Raise/lower the cutover fence for one migrating instance."""
        if fenced:
            self._migrating_out.add(instance)
        else:
            self._migrating_out.discard(instance)

    # -- degradation (latency spikes, error rates, brownouts) -----------------

    def set_degradation(
        self, latency: float | None = None, error_every: int | None = None
    ):
        """Enter a degraded mode: per-op added latency and/or a
        deterministic failure cadence (every ``error_every``-th op)."""
        if latency is not None:
            if latency < 0:
                raise TDStoreError(f"latency must be >= 0: {latency}")
            self.latency = float(latency)
        if error_every is not None:
            if error_every < 0:
                raise TDStoreError(f"error_every must be >= 0: {error_every}")
            self.error_every = int(error_every)

    def clear_degradation(self):
        self.latency = 0.0
        self.error_every = 0

    @property
    def degraded(self) -> bool:
        return self.latency > 0.0 or self.error_every > 0

    def _check_degraded(self):
        if self.error_every:
            self._degraded_ops += 1
            if self._degraded_ops % self.error_every == 0:
                self.injected_errors += 1
                raise DataServerDownError(
                    f"data server {self.server_id} dropped the request "
                    f"(injected error rate 1/{self.error_every})"
                )

    # -- host-side operations -----------------------------------------------

    def get(self, instance: int, key: str, default: Any = None) -> Any:
        engine = self.engine(instance)
        self._check_host(instance)
        self._check_degraded()
        value = engine.get(key, default)
        self.reads += 1
        return value

    def multi_get(
        self, batches: dict[int, list[str]], default: Any = None
    ) -> dict[str, Any]:
        """One batch read covering every ``instance -> keys`` group.

        This is one request on the wire: liveness and the degradation
        cadence are checked once for the whole op (which is the batching
        win — a 100-key batch is one error opportunity, not 100), while
        host fencing is still enforced per instance so a stale route on
        any shard fails the batch before data from a non-owned instance
        can leak into the result.
        """
        self._check_alive()
        engines = {}
        for instance in batches:
            engines[instance] = self.engine(instance)
            self._check_host(instance)
        self._check_degraded()
        results: dict[str, Any] = {}
        for instance, keys in batches.items():
            results.update(engines[instance].multi_get(keys, default))
            self.reads += len(keys)
        self.batch_ops += 1
        return results

    def read_replica(
        self, instance: int, keys: list[str], default: Any = None
    ) -> dict[str, Any]:
        """Hedged read from whatever copy of ``instance`` this server holds.

        No host-fencing check: the caller knowingly accepts a replica
        that may lag the host by its un-applied sync queue. Used by the
        client when the host shard is unreachable and failover cannot
        run — stale-but-served beats failing the whole query.
        """
        self._check_alive()
        engine = self._engines.get(instance)
        if engine is None:
            raise TDStoreError(
                f"server {self.server_id} holds no replica of instance "
                f"{instance}"
            )
        self._check_degraded()
        self.reads += len(keys)
        self.replica_reads += 1
        return engine.multi_get(keys, default)

    def put(self, instance: int, key: str, value: Any) -> SyncRecord:
        engine = self.engine(instance)
        self._check_host(instance)
        self._check_degraded()
        engine.put(key, value)
        self.writes += 1
        return SyncRecord(_PUT, key, value)

    def delete(self, instance: int, key: str) -> SyncRecord:
        engine = self.engine(instance)
        self._check_host(instance)
        self._check_degraded()
        engine.delete(key)
        self.writes += 1
        return SyncRecord(_DELETE, key)

    # -- transactional host operations --------------------------------------
    #
    # These return the *list* of sync records that reproduce the mutation
    # (value plus version/journal meta keys) so the slave converges to
    # the same transactional state — which is what makes a replayed
    # ``apply`` a no-op even after a host→slave failover.

    def get_versioned(
        self, instance: int, key: str, default: Any = None
    ) -> tuple[Any, int]:
        engine = self.engine(instance)
        self._check_host(instance)
        self._check_degraded()
        self.reads += 1
        return engine.get(key, default), engine.version(key)

    def check_and_set(
        self, instance: int, key: str, value: Any, expected_version: int
    ) -> tuple[int, list[SyncRecord]]:
        engine = self.engine(instance)
        self._check_host(instance)
        self._check_degraded()
        new_version = engine.check_and_set(key, value, expected_version)
        self.writes += 1
        return new_version, [
            SyncRecord(_PUT, key, value),
            SyncRecord(_PUT, VERSION_PREFIX + key, new_version),
        ]

    def apply_op(
        self, instance: int, key: str, op_id: str, delta: float
    ) -> tuple[float, bool, list[SyncRecord]]:
        engine = self.engine(instance)
        self._check_host(instance)
        self._check_degraded()
        value, applied = engine.apply_op(key, op_id, delta)
        self.writes += 1
        if not applied:
            return value, False, []
        return value, True, [
            SyncRecord(_PUT, key, value),
            SyncRecord(_PUT, JOURNAL_PREFIX + key,
                       engine.get(JOURNAL_PREFIX + key)),
            SyncRecord(_PUT, VERSION_PREFIX + key, engine.version(key)),
        ]

    def put_once(
        self, instance: int, key: str, op_id: str, value: Any
    ) -> tuple[bool, list[SyncRecord]]:
        """Atomic journaled write: value, journal and version land together.

        The degradation/liveness checks run before the engine is touched,
        so a failed request mutates nothing — the caller can replay the
        whole update and this commit stays all-or-nothing.
        """
        engine = self.engine(instance)
        self._check_host(instance)
        self._check_degraded()
        applied = engine.put_once(key, op_id, value)
        self.writes += 1
        if not applied:
            return False, []
        return True, [
            SyncRecord(_PUT, key, value),
            SyncRecord(_PUT, JOURNAL_PREFIX + key,
                       engine.get(JOURNAL_PREFIX + key)),
            SyncRecord(_PUT, VERSION_PREFIX + key, engine.version(key)),
        ]

    def op_seen(self, instance: int, key: str, op_id: str) -> bool:
        engine = self.engine(instance)
        self._check_host(instance)
        self._check_degraded()
        self.reads += 1
        return engine.op_seen(key, op_id)

    def journal_evictions(self) -> int:
        """Op-journal ids trimmed across this server's engines (monitoring)."""
        return sum(e.journal_evictions for e in self._engines.values())

    def record_once(
        self, instance: int, key: str, op_id: str
    ) -> tuple[bool, list[SyncRecord]]:
        engine = self.engine(instance)
        self._check_host(instance)
        self._check_degraded()
        recorded = engine.record_once(key, op_id)
        self.writes += 1
        if not recorded:
            return False, []
        return True, [
            SyncRecord(_PUT, JOURNAL_PREFIX + key,
                       engine.get(JOURNAL_PREFIX + key)),
        ]

    # -- slave-side replication ----------------------------------------------

    def enqueue_sync(self, instance: int, record: SyncRecord):
        """Host notified us of an update; apply later, when idle.

        A downed replica rejects records — the replicator treats the
        rejection as "skip this replica", the same outcome as checking
        liveness first but without a separate round trip.
        """
        self._check_alive()
        self.ensure_instance(instance)
        self._sync_inbox[instance].append(record)

    def pending_syncs(self, instance: int | None = None) -> int:
        if instance is not None:
            return len(self._sync_inbox.get(instance, ()))
        return sum(len(q) for q in self._sync_inbox.values())

    def apply_pending(self, instance: int | None = None):
        """Apply queued sync records (the slave updating "when idle")."""
        self._check_alive()
        targets = [instance] if instance is not None else list(self._sync_inbox)
        for target in targets:
            queue = self._sync_inbox.get(target)
            if not queue:
                continue
            engine = self.ensure_instance(target)
            while queue:
                record = queue.popleft()
                if record.op == _PUT:
                    engine.put(record.key, record.value)
                elif record.op == _DELETE:
                    engine.delete(record.key)
                else:
                    raise TDStoreError(f"unknown sync op {record.op!r}")
                self.syncs_applied += 1

    def snapshot_instance(self, instance: int) -> dict[str, Any]:
        """Full contents of one instance (checkpoint / replica bootstrap)."""
        self._check_alive()
        return self.engine(instance).snapshot()

    def adopt_snapshot(self, instance: int, data: dict[str, Any]):
        """Bootstrap a fresh replica of ``instance`` from a full snapshot."""
        engine = self.ensure_instance(instance)
        engine.restore(data)
        self._sync_inbox[instance] = deque()

    def apply_repair(
        self, instance: int, puts: dict[str, Any], deletes: "list[str]"
    ) -> dict:
        """Anti-entropy read-repair: overwrite divergent keys with the
        authoritative host copy.

        Alive-guarded but *not* host-fenced — repair targets the
        replica, which by definition does not host the instance.
        Values arrive from the host's engine snapshot, so the
        ``__ver__:``/``__ops__:`` meta keys ride along with their data
        keys and ``put_once``/``apply_op`` dedup survives the repair.
        """
        self._check_alive()
        engine = self.ensure_instance(instance)
        for key, value in puts.items():
            engine.put(key, value)
        removed = 0
        for key in deletes:
            removed += 1 if engine.delete(key) else 0
        self.repairs_applied += len(puts) + len(deletes)
        return {"puts": len(puts), "deletes": len(deletes), "removed": removed}

    # -- failure model --------------------------------------------------------

    def crash(self):
        self.alive = False

    def recover(self):
        """Process restarts: in-memory engines are empty again.

        (Engines with real persistence, like FDB, keep their data because
        the factory points at the same directory.)

        Host roles are forgotten too — the config server re-grants them
        from the current route table, which may have moved every instance
        elsewhere while this server was down. Until then the fencing
        check bounces any client still routing traffic here.
        """
        self.alive = True
        self._engines = {
            instance: self._engine_factory() for instance in self._engines
        }
        self._sync_inbox = {instance: deque() for instance in self._sync_inbox}
        self._hosted = set()
        self._migrating_out = set()  # any fence died with the old process
        self.clear_degradation()  # a restarted process is healthy again

    def __repr__(self) -> str:
        state = "up" if self.alive else "DOWN"
        return (
            f"TDStoreDataServer({self.server_id}, {state}, "
            f"{len(self._engines)} instances)"
        )
