"""TDStore cluster facade."""

from __future__ import annotations

import copy
from typing import Any, Callable

from repro.errors import TDStoreError
from repro.tdstore.client import TDStoreClient
from repro.tdstore.config_server import ConfigServerPair
from repro.tdstore.data_server import TDStoreDataServer
from repro.tdstore.engines import MDBEngine, StorageEngine


class TDStoreCluster:
    """A complete TDStore deployment: config pair + data servers.

    Parameters
    ----------
    num_data_servers:
        Size of the data-server pool (>= 2, replication needs a slave).
    num_instances:
        Number of data instances (key buckets) spread over the pool.
    engine_factory:
        Builds the per-instance storage engine; defaults to MDB, the
        memory engine the paper leads with.
    """

    def __init__(
        self,
        num_data_servers: int = 4,
        num_instances: int = 64,
        engine_factory: Callable[[], StorageEngine] = MDBEngine,
    ):
        self._engine_factory = engine_factory
        self.data_servers = [
            TDStoreDataServer(i, engine_factory) for i in range(num_data_servers)
        ]
        self.config = ConfigServerPair(self.data_servers, num_instances)

    # -- elastic scaling ---------------------------------------------------

    def add_data_server(self) -> int:
        """Expand the pool by one empty server; returns its id.

        The new server serves nothing until an
        :class:`~repro.elastic.migration.InstanceMigrator` moves
        instances onto it (or a failover picks it as a slave).
        """
        server_id = max(s.server_id for s in self.data_servers) + 1
        server = TDStoreDataServer(server_id, self._engine_factory)
        self.config.add_server(server)
        self.data_servers.append(server)
        return server_id

    def drain_data_server(self, server_id: int, exclude: tuple = ()) -> list:
        """Live-migrate every role off ``server_id`` (decommission prep)."""
        return self.config.drain_server(server_id, exclude=exclude)

    def migration_stats(self) -> dict[str, Any]:
        return {
            "completed": self.config.migrations_completed,
            "aborted": self.config.migrations_aborted,
            "in_flight": self.config.in_flight_migrations(),
            "route_epoch": self.config.route_epoch,
        }

    def client(self, **resilience: Any) -> TDStoreClient:
        """A new client; keyword args (clock, breaker, retry,
        retry_budget, deadline_budget) are forwarded to it."""
        return TDStoreClient(self.config, **resilience)

    def crash_data_server(self, server_id: int):
        self.config.server(server_id).crash()

    def recover_data_server(self, server_id: int):
        """Restart a server and resync its replicas from live peers."""
        self.config.server(server_id).recover()
        self.config.handle_server_recovery(server_id)

    # -- degradation (chaos: latency spikes, error rates, brownouts) ------

    def set_degradation(
        self,
        server_id: int,
        latency: float | None = None,
        error_every: int | None = None,
    ):
        self.config.server(server_id).set_degradation(latency, error_every)

    def clear_degradation(self, server_id: int):
        self.config.server(server_id).clear_degradation()

    def degraded_servers(self) -> list[int]:
        return [s.server_id for s in self.data_servers if s.degraded]

    def sync_replicas(self):
        """Let every slave apply its pending queue (the idle-time sync)."""
        for server in self.data_servers:
            if server.alive:
                server.apply_pending()

    # -- anti-entropy (repro.tdstore.scrub) -------------------------------

    # lazy: subclasses building their server list without this __init__
    # (the hosted control plane) still get working scrub accounting
    _scrub_totals: "dict[str, int] | None" = None

    def scrub_replicas(self, buckets: "int | None" = None) -> dict[str, Any]:
        """Run one anti-entropy pass: compare every instance's host and
        slave by per-bucket content digest and repair divergent buckets
        from the authoritative host copy. Returns the pass report dict
        (picklable, so the hosted control plane serves it over RPC)."""
        from repro.tdstore.scrub import SCRUB_BUCKETS, ReplicaScrubber

        scrubber = ReplicaScrubber(
            self, buckets=buckets if buckets else SCRUB_BUCKETS
        )
        report = scrubber.scrub().to_dict()
        totals = self._scrub_totals
        if totals is None:
            totals = self._scrub_totals = {"scrub_passes": 0}
        totals["scrub_passes"] += 1
        for field in (
            "instances_scanned",
            "divergent_buckets",
            "keys_repaired",
            "keys_deleted",
            "corruptions_detected",
        ):
            totals[field] = totals.get(field, 0) + report[field]
        return report

    def scrub_stats(self) -> dict[str, int]:
        """Accumulated scrub counters across every pass on this facade."""
        totals = self._scrub_totals
        if totals is None:
            return {
                "scrub_passes": 0,
                "instances_scanned": 0,
                "divergent_buckets": 0,
                "keys_repaired": 0,
                "keys_deleted": 0,
                "corruptions_detected": 0,
            }
        return dict(totals)

    # -- checkpoint integration (repro.recovery) -------------------------

    def snapshot_contents(self) -> dict[int, dict[str, Any]]:
        """Capture every data instance's full contents.

        The host copy of each instance is authoritative (slaves lag by
        their sync queue); when the host is down and failover has not run
        yet, the slave catches up its pending queue first so no
        acknowledged write is missing from the checkpoint.
        """
        table = self.config.route_table()
        contents: dict[int, dict[str, Any]] = {}
        for instance in range(table.num_instances):
            route = table.route(instance)
            source = self.config.server(route.host)
            if not source.alive:
                source = self.config.server(route.slave)
                if not source.alive:
                    raise TDStoreError(
                        f"instance {instance}: host and slave both down; "
                        "cannot checkpoint"
                    )
                source.apply_pending(instance)
            contents[instance] = source.snapshot_instance(instance)
        return contents

    def restore_contents(self, contents: dict[int, dict[str, Any]]):
        """Adopt checkpointed instance contents onto host and slave.

        Each live replica adopts its own deep copy so the restored pair
        does not share mutable values — replication divergence stays
        observable after recovery exactly as it was before.

        Roles are reasserted to match the table the restore is advertised
        under: a control-plane rebirth (config host respawned after a
        crash) resets the route table while surviving data servers keep
        their evolved ``_hosted`` sets, so the restore is the point where
        routing and acceptance re-converge. Servers no longer named by an
        instance's route are fenced so stale-routed clients cannot write
        into an orphaned replica.
        """
        table = self.config.route_table()
        for instance, data in contents.items():
            route = table.route(instance)
            for server in self.data_servers:
                if not server.alive:
                    continue
                if server.server_id == route.host:
                    server.set_host_role(instance, True)
                    server.adopt_snapshot(instance, copy.deepcopy(data))
                elif server.server_id == route.slave:
                    server.set_host_role(instance, False)
                    server.adopt_snapshot(instance, copy.deepcopy(data))
                elif server.hosts(instance):
                    server.set_host_role(instance, False)

    def journal_evictions(self) -> int:
        """Total op-journal ids trimmed out across the pool.

        Each trimmed id is a dedup decision forgotten: a rewind deep
        enough to re-deliver it would double-apply. The monitor alerts on
        a positive delta.
        """
        return sum(s.journal_evictions() for s in self.data_servers)

    def read_stats(self) -> dict[int, int]:
        """server id -> reads served; shows load spread across the pool."""
        return {s.server_id: s.reads for s in self.data_servers}

    def write_stats(self) -> dict[int, int]:
        return {s.server_id: s.writes for s in self.data_servers}
