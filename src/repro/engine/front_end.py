"""The recommender front end (Figure 9).

Interacts with "users": accepts queries, delegates to the engine,
applies application display filters, and records what was shown so the
feedback loop (impressions back into TDAccess) closes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.engine.engine import RecommenderEngine
from repro.errors import EvaluationError
from repro.tdaccess.producer import Producer
from repro.types import Recommendation


@dataclass
class QueryLog:
    """What the front end served, for monitoring and evaluation."""

    queries: int = 0
    served: int = 0
    empty: int = 0
    displayed: list[tuple[str, tuple[str, ...]]] = field(default_factory=list)


class RecommenderFrontEnd:
    """Query preprocessing + result display + feedback capture."""

    def __init__(
        self,
        engine: RecommenderEngine,
        algorithm: str = "cf",
        display_filter: Callable[[Recommendation], bool] | None = None,
        feedback_producer: Producer | None = None,
        feedback_topic: str = "user_actions",
    ):
        known = ("cf", "cb")
        if algorithm not in known:
            raise EvaluationError(
                f"front end algorithm must be one of {known}: {algorithm!r}"
            )
        self._engine = engine
        self._algorithm = algorithm
        self._display_filter = display_filter
        self._producer = feedback_producer
        self._topic = feedback_topic
        self.log = QueryLog()

    def query(self, user_id: str, n: int, now: float) -> list[Recommendation]:
        """Serve a top-N query, filtered for display."""
        self.log.queries += 1
        if self._algorithm == "cf":
            results = self._engine.recommend_cf(user_id, n * 2, now)
        else:
            results = self._engine.recommend_cb(user_id, n * 2, now)
        if self._display_filter is not None:
            results = [r for r in results if self._display_filter(r)]
        results = results[:n]
        if results:
            self.log.served += 1
            self.log.displayed.append(
                (user_id, tuple(r.item_id for r in results))
            )
            self._record_impressions(user_id, results, now)
        else:
            self.log.empty += 1
        return results

    def _record_impressions(
        self, user_id: str, results: list[Recommendation], now: float
    ):
        if self._producer is None:
            return
        for rec in results:
            self._producer.send(
                self._topic,
                {
                    "user": user_id,
                    "item": rec.item_id,
                    "action": "impression",
                    "timestamp": now,
                },
                key=user_id,
            )
