"""The recommender front end (Figure 9), with a degradation ladder.

Interacts with "users": accepts queries, delegates to the engine,
applies application display filters, and records what was shown so the
feedback loop (impressions back into TDAccess) closes.

Serving under failure follows a **degradation ladder** instead of
failing hard. Each query steps down until a rung answers:

1. **live** — the engine's CF/CB answer from live TDStore state, under
   the query's deadline and the store client's circuit breaker;
2. **cache** — the :class:`~repro.engine.degraded.ServeThroughRecovery`
   last-known-good answer for this user (also used while a recovery
   replay is in progress);
3. **demographic** — the §4.2 hot-items complement for the user's
   group, falling back to the front end's own last fetched hot list
   when the store is unreachable;
4. **static** — a configured static top-N that needs no dependency at
   all, so the ladder always terminates with an answer.

Overload is handled before the ladder: a
:class:`~repro.resilience.LoadShedder` can shed low-priority queries,
which are answered straight from the static rung. The rung that served
every query is recorded in :class:`QueryLog` — the rung histogram is a
first-class health signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.engine.degraded import ServeThroughRecovery
from repro.engine.engine import RecommenderEngine
from repro.errors import (
    ColdIndexError,
    EvaluationError,
    ResilienceError,
    TDAccessError,
    TDStoreError,
)
from repro.resilience.deadline import Deadline
from repro.resilience.shedder import LoadShedder
from repro.tdaccess.producer import Producer
from repro.types import Recommendation
from repro.utils.clock import SimClock

if TYPE_CHECKING:
    from repro.serving.layer import ServingLayer

RUNGS = ("live", "cache", "demographic", "static")

# failures that push a query down one rung instead of surfacing
_RUNG_FAILURES = (ResilienceError, TDStoreError)


@dataclass
class QueryLog:
    """What the front end served, for monitoring and evaluation."""

    queries: int = 0
    served: int = 0
    empty: int = 0
    shed: int = 0
    feedback_failures: int = 0
    # vq queries answered by CF inside the live rung (cold index or
    # browned-out store) — the retrieval cold-start health signal
    vq_fallbacks: int = 0
    rungs: dict[str, int] = field(default_factory=dict)
    displayed: list[tuple[str, tuple[str, ...]]] = field(default_factory=list)
    rung_history: list[str] = field(default_factory=list)

    def record_rung(self, rung: str):
        self.rungs[rung] = self.rungs.get(rung, 0) + 1
        self.rung_history.append(rung)

    def degraded_fraction(self) -> float:
        """Fraction of queries served below the live rung."""
        total = sum(self.rungs.values())
        if total == 0:
            return 0.0
        return 1.0 - self.rungs.get("live", 0) / total


class RecommenderFrontEnd:
    """Query preprocessing + result display + feedback capture.

    Resilience parameters are all optional; without them the front end
    serves exactly as before (live engine only). With them, every query
    runs under the ladder.

    Parameters
    ----------
    degraded:
        Last-known-good cache wrapper; when given, live serves refresh
        it and the cache rung reads from it.
    static_items:
        Ordered static top-N fallback (e.g. yesterday's offline global
        top list). Non-empty static items guarantee every query is
        answered.
    shedder:
        Admission control; shed queries are answered from the static
        rung without touching any dependency.
    deadline_budget:
        Per-query time budget in seconds (requires ``clock``); the
        budget is scoped onto the engine's store client so every nested
        state read observes it.
    clock:
        Clock shared with the store client charging degraded-server
        latency.
    serving:
        A :class:`~repro.serving.layer.ServingLayer` (CF only). When
        given, the live rung serves through its result cache and
        batched reads instead of per-key engine reads, the cache rung
        prefers its stale-but-present answers over the last-known-good
        cache, and :meth:`query_batch` serves concurrent queries as one
        coalesced fan-out.
    """

    def __init__(
        self,
        engine: RecommenderEngine,
        algorithm: str = "cf",
        display_filter: Callable[[Recommendation], bool] | None = None,
        feedback_producer: Producer | None = None,
        feedback_topic: str = "user_actions",
        *,
        degraded: ServeThroughRecovery | None = None,
        static_items: Sequence[str] = (),
        shedder: LoadShedder | None = None,
        deadline_budget: float | None = None,
        clock: SimClock | None = None,
        serving: "ServingLayer | None" = None,
    ):
        known = ("cf", "cb", "vq")
        if algorithm not in known:
            raise EvaluationError(
                f"front end algorithm must be one of {known}: {algorithm!r}"
            )
        if deadline_budget is not None and clock is None:
            raise EvaluationError(
                "deadline_budget needs a clock to measure against"
            )
        if serving is not None and algorithm != "cf":
            raise EvaluationError(
                f"the serving layer only batches 'cf': {algorithm!r}"
            )
        self._engine = engine
        self._algorithm = algorithm
        self._display_filter = display_filter
        self._producer = feedback_producer
        self._topic = feedback_topic
        self._degraded = degraded
        self._static_items = tuple(static_items)
        self._shedder = shedder
        self._deadline_budget = deadline_budget
        self._clock = clock
        self._serving = serving
        # last successfully fetched hot list: the demographic rung's own
        # fallback when the store cannot even serve hot items
        self._hot_fallback: list[tuple[str, float]] = []
        self.log = QueryLog()

    # -- the ladder --------------------------------------------------------

    def query(
        self, user_id: str, n: int, now: float, priority: str = "normal"
    ) -> list[Recommendation]:
        """Serve a top-N query, filtered for display, degrading by rungs."""
        self.log.queries += 1
        if self._shedder is not None and not self._shedder.try_admit(priority):
            self.log.shed += 1
            results = self._static(n)
            return self._finish(user_id, results, "static", now)
        deadline = self._make_deadline()
        results, rung = self._climb(user_id, n, now, deadline)
        return self._finish(user_id, results, rung, now)

    def query_batch(
        self,
        queries: Sequence[tuple[str, int]],
        now: float,
        priority: str = "normal",
    ) -> dict[tuple[str, int], list[Recommendation]]:
        """Serve concurrent queries as one coalesced fan-out.

        ``queries`` is a sequence of ``(user_id, n)``; duplicates
        coalesce onto one answer. Requires a serving layer. Admission
        control still applies per query; admitted queries share one
        deadline and one batched store fan-out, and if the live rung
        fails for the batch, each query walks the lower rungs
        individually — one slow shard degrades its keys, not every
        query.
        """
        if self._serving is None:
            raise EvaluationError("query_batch needs a serving layer")
        requests = list(dict.fromkeys(queries))
        out: dict[tuple[str, int], list[Recommendation]] = {}
        admitted: list[tuple[str, int]] = []
        for user_id, n in requests:
            self.log.queries += 1
            if self._shedder is not None and not self._shedder.try_admit(
                priority
            ):
                self.log.shed += 1
                out[(user_id, n)] = self._finish(
                    user_id, self._static(n), "static", now
                )
            else:
                admitted.append((user_id, n))
        if not admitted:
            return out
        deadline = self._make_deadline()
        if self._degraded is not None and self._degraded.in_recovery():
            # same contract as query(): never batch-read half-replayed
            # state — each query takes the ladder's recovery path
            for user_id, n in admitted:
                results, rung = self._climb(user_id, n, now, deadline)
                out[(user_id, n)] = self._finish(user_id, results, rung, now)
            return out
        try:
            answers = self._scoped(
                lambda: self._serving.serve_many(
                    [(user_id, n * 2) for user_id, n in admitted], now
                ),
                deadline,
            )
        except _RUNG_FAILURES:
            answers = None
        for user_id, n in admitted:
            if answers is not None:
                served, __tier = answers[(user_id, n * 2)]
                if self._degraded is not None:
                    self._degraded.remember(self._algorithm, user_id, served)
                results = self._filtered(served, n)
                if results:
                    out[(user_id, n)] = self._finish(
                        user_id, results, "live", now
                    )
                    continue
            results, rung = self._descend(user_id, n, now, deadline)
            out[(user_id, n)] = self._finish(user_id, results, rung, now)
        return out

    def _descend(
        self, user_id: str, n: int, now: float, deadline: Deadline | None
    ) -> tuple[list[Recommendation], str]:
        """Rungs 2–4 for one query whose live rung already failed."""
        results = self._filtered(self._stale_cached(user_id, n), n)
        if results:
            return results, "cache"
        hot = self._hot_items(user_id, n, now, deadline)
        results = self._filtered(
            [Recommendation(item, score, source="db") for item, score in hot], n
        )
        if results:
            return results, "demographic"
        return self._static(n), "static"

    def _make_deadline(self) -> Deadline | None:
        if self._deadline_budget is None or self._clock is None:
            return None
        return Deadline(self._clock.now, self._deadline_budget)

    def _scoped(self, fn: Callable[[], list], deadline: Deadline | None) -> list:
        """Run ``fn`` with the query deadline ambient on the store client."""
        store = getattr(self._engine, "store", None)
        if deadline is None or store is None or not hasattr(
            store, "deadline_scope"
        ):
            return fn()
        with store.deadline_scope(deadline):
            return fn()

    def _climb(
        self, user_id: str, n: int, now: float, deadline: Deadline | None
    ) -> tuple[list[Recommendation], str]:
        # rung 1: live engine state (through the cache wrapper so the
        # last-known-good answer stays fresh)
        if self._degraded is not None and self._degraded.in_recovery():
            results = self._degraded.cached(self._algorithm, user_id) or []
            results = self._filtered(results, n)
            if results:
                return results, "cache"
        else:
            try:
                results = self._filtered(
                    self._scoped(lambda: self._live(user_id, n * 2, now), deadline),
                    n,
                )
                if results:
                    return results, "live"
            except _RUNG_FAILURES:
                # rung 2: stale-but-present serving cache, then the
                # last-known-good cache
                results = self._filtered(self._stale_cached(user_id, n), n)
                if results:
                    return results, "cache"
        # rung 3: demographic hot items (§4.2), at worst from the front
        # end's own last fetched copy
        hot = self._hot_items(user_id, n, now, deadline)
        results = self._filtered(
            [Recommendation(item, score, source="db") for item, score in hot], n
        )
        if results:
            return results, "demographic"
        # rung 4: static top-N — no dependencies, cannot fail
        return self._static(n), "static"

    def _live(self, user_id: str, n: int, now: float) -> list[Recommendation]:
        if self._serving is not None:
            results, __tier = self._serving.serve(user_id, n, now)
            if self._degraded is not None:
                # the batched path bypasses the wrapper; keep the
                # last-known-good cache fresh by hand
                self._degraded.remember(self._algorithm, user_id, results)
            return results
        target = self._degraded if self._degraded is not None else self._engine
        if self._algorithm == "cf":
            return target.recommend_cf(user_id, n, now)
        if self._algorithm == "vq":
            # retrieval's own degradation step, still inside the live
            # rung: a cold index (or a store failure on the VQ read
            # path) answers from CF instead of dropping a rung — the
            # ladder below only engages if CF fails too
            try:
                return target.recommend_vq(user_id, n, now)
            except (ColdIndexError, *_RUNG_FAILURES):
                self.log.vq_fallbacks += 1
                return target.recommend_cf(user_id, n, now)
        return target.recommend_cb(user_id, n, now)

    def _stale_cached(self, user_id: str, n: int) -> list[Recommendation]:
        """The cache rung's sources, in preference order: the serving
        layer's stale-but-present result, then the last-known-good
        answer."""
        if self._serving is not None:
            cached = self._serving.serve_stale(user_id, n * 2)
            if cached:
                return cached
        if self._degraded is not None:
            cached = self._degraded.cached(self._algorithm, user_id)
            if cached:
                return cached
        return []

    def _hot_items(
        self, user_id: str, n: int, now: float, deadline: Deadline | None
    ) -> list[tuple[str, float]]:
        try:
            hot = self._scoped(
                lambda: self._engine.hot_items_for(user_id, n, now), deadline
            )
        except _RUNG_FAILURES:
            return self._hot_fallback[:n]
        if hot:
            self._hot_fallback = list(hot)
        return hot

    def _static(self, n: int) -> list[Recommendation]:
        return [
            Recommendation(item, 0.0, source="static")
            for item in self._static_items[:n]
        ]

    def _filtered(
        self, results: list[Recommendation], n: int
    ) -> list[Recommendation]:
        if self._display_filter is not None:
            results = [r for r in results if self._display_filter(r)]
        return results[:n]

    def _finish(
        self,
        user_id: str,
        results: list[Recommendation],
        rung: str,
        now: float,
    ) -> list[Recommendation]:
        self.log.record_rung(rung)
        if results:
            self.log.served += 1
            self.log.displayed.append(
                (user_id, tuple(r.item_id for r in results))
            )
            self._record_impressions(user_id, results, now)
        else:
            self.log.empty += 1
        return results

    def _record_impressions(
        self, user_id: str, results: list[Recommendation], now: float
    ):
        if self._producer is None:
            return
        for rec in results:
            try:
                self._producer.send(
                    self._topic,
                    {
                        "user": user_id,
                        "item": rec.item_id,
                        "action": "impression",
                        "timestamp": now,
                    },
                    key=user_id,
                )
            except TDAccessError:
                # feedback is best-effort: losing an impression must not
                # fail the serve
                self.log.feedback_failures += 1
