"""Serve-through-recovery degradation for the recommender engine.

While recovery replays the log, TDStore holds checkpoint-old state that
is converging but not yet caught up. Rather than serve those half-replayed
answers (or nothing), :class:`ServeThroughRecovery` keeps a bounded cache
of the last answer served to each user and falls back to it for the
duration of the recovery window — the classic "stale but sane"
degradation mode of serving systems. Queries outside a recovery window
pass straight through to the live engine and refresh the cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.engine.engine import RecommenderEngine
from repro.errors import ConfigurationError
from repro.types import Recommendation

InRecovery = Callable[[], bool]


class ServeThroughRecovery:
    """Wraps a :class:`RecommenderEngine` with a last-known-good cache.

    Parameters
    ----------
    engine:
        The live engine; swap in the rebuilt one after recovery with
        :meth:`attach_engine`.
    in_recovery:
        Predicate consulted per query — typically
        ``lambda: manager.in_progress`` for a
        :class:`~repro.recovery.RecoveryManager`.
    cache_size:
        Maximum number of (algorithm, user) answers retained, evicted
        least-recently-used.
    """

    def __init__(
        self,
        engine: RecommenderEngine,
        in_recovery: InRecovery,
        cache_size: int = 10_000,
    ):
        if cache_size <= 0:
            raise ConfigurationError(f"cache_size must be positive: {cache_size}")
        self._engine = engine
        self._in_recovery = in_recovery
        self._cache_size = cache_size
        self._cache: OrderedDict[tuple[str, str], list[Recommendation]] = (
            OrderedDict()
        )
        self.live_serves = 0
        self.degraded_serves = 0
        self.degraded_misses = 0

    def attach_engine(self, engine: RecommenderEngine):
        """Point at the engine of a rebuilt deployment (cache survives)."""
        self._engine = engine

    @property
    def engine(self) -> RecommenderEngine:
        return self._engine

    def in_recovery(self) -> bool:
        """Is the wrapped engine currently serving through a recovery?"""
        return self._in_recovery()

    def cached(self, algorithm: str, user_id: str) -> "list[Recommendation] | None":
        """Last-known-good answer for ``(algorithm, user)``, or None.

        The degradation ladder peeks here directly when the live rung
        fails for reasons other than recovery (deadline blown, breaker
        open, store down)."""
        key = (algorithm, user_id)
        cached = self._cache.get(key)
        if cached is None:
            return None
        self._cache.move_to_end(key)
        return list(cached)

    def remember(self, algorithm: str, user_id: str, results: list[Recommendation]):
        """Refresh the last-known-good answer from an external live serve
        (the serving layer's batched path answers without going through
        :meth:`recommend_cf`, but its answers are just as good here)."""
        key = (algorithm, user_id)
        self._cache[key] = list(results)
        self._cache.move_to_end(key)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def recommend_cf(
        self, user_id: str, n: int, now: float
    ) -> list[Recommendation]:
        return self._serve("cf", self._engine.recommend_cf, user_id, n, now)

    def recommend_cb(
        self, user_id: str, n: int, now: float
    ) -> list[Recommendation]:
        return self._serve("cb", self._engine.recommend_cb, user_id, n, now)

    def recommend_vq(
        self, user_id: str, n: int, now: float
    ) -> list[Recommendation]:
        return self._serve("vq", self._engine.recommend_vq, user_id, n, now)

    def _serve(self, algorithm, live, user_id, n, now) -> list[Recommendation]:
        key = (algorithm, user_id)
        if self._in_recovery():
            self.degraded_serves += 1
            cached = self._cache.get(key)
            if cached is None:
                # no last-known-good answer: empty beats half-replayed
                self.degraded_misses += 1
                return []
            self._cache.move_to_end(key)
            return cached[:n]
        results = live(user_id, n, now)
        self.live_serves += 1
        self._cache[key] = list(results)
        self._cache.move_to_end(key)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return results
