"""The recommender engine and front end (Figure 9).

The engine answers recommendation queries from the computation results
TencentRec keeps in TDStore; the front end preprocesses user queries,
applies application-level filters, and feeds impression/click events
back into the data stream.
"""

from repro.engine.engine import RecommenderEngine, EngineConfig
from repro.engine.degraded import ServeThroughRecovery
from repro.engine.front_end import RecommenderFrontEnd, QueryLog

__all__ = [
    "RecommenderEngine",
    "EngineConfig",
    "RecommenderFrontEnd",
    "QueryLog",
    "ServeThroughRecovery",
]
