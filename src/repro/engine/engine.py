"""Query-time recommendation from TDStore state (Figure 9).

The engine owns no model: it reads the state the topologies maintain —
similar-items lists, recent-item filters, demographic hot lists, CB
profiles, AR rules, CTR values — and assembles answers per query. This
is exactly the paper's split: TDProcess computes, TDStore holds, the
engine serves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.algorithms.ctr import BACKOFF_LEVELS, situation_key
from repro.algorithms.demographic import GLOBAL_GROUP
from repro.retrieval.retriever import RetrieverConfig, VQRetriever
from repro.tdstore.client import TDStoreClient
from repro.topology.bolts_cb import item_tags
from repro.topology.bolts_ctr import profile_attributes
from repro.topology.state import StateKeys
from repro.types import Recommendation, UserProfile

ProfileLookup = Callable[[str], "UserProfile | None"]


@dataclass
class EngineConfig:
    """Per-application query configuration."""

    group_of: Callable[[str], str] | None = None
    min_similarity: float = 0.0
    complement_with_db: bool = True
    prior_ctr: float = 0.02
    vq: RetrieverConfig | None = None


@dataclass
class CFAnswer:
    """One user's answer from the batched CF path, with the state keys it
    was computed from — the serving layer registers those as cache tags
    so stream updates touching them invalidate the cached result."""

    results: list[Recommendation]
    dep_items: tuple[str, ...]
    dep_groups: tuple[str, ...]


class RecommenderEngine:
    """Answers top-N queries from TDStore state."""

    def __init__(
        self,
        client: TDStoreClient,
        config: EngineConfig | None = None,
    ):
        self._store = client
        self._config = config if config is not None else EngineConfig()
        self._vq: VQRetriever | None = None

    @property
    def store(self) -> TDStoreClient:
        """The TDStore client queries read through (the serving front end
        scopes per-query deadlines onto it)."""
        return self._store

    # -- item-based CF (Eq 2 + Section 4.3) ---------------------------------

    def recommend_cf(self, user_id: str, n: int, now: float) -> list[Recommendation]:
        recent = self._store.get(StateKeys.recent(user_id), None) or []
        history = self._store.get(StateKeys.history(user_id), None) or {}
        consumed = set(history)
        results = self._score_cf(
            recent,
            consumed,
            lambda item: self._store.get(StateKeys.sim_list(item), None),
            n,
        )
        if len(results) < n and self._config.complement_with_db:
            results = self._complement(
                user_id, n, results, consumed,
                lambda count: self.hot_items_for(user_id, count, now),
            )
        return results

    def _score_cf(
        self,
        recent,
        consumed: set[str],
        sim_lookup: Callable[[str], "dict | None"],
        n: int,
    ) -> list[Recommendation]:
        """Equation 2 scoring, shared by the per-key and batched paths so
        the two can never diverge."""
        numerator: dict[str, float] = {}
        denominator: dict[str, float] = {}
        for item, rating, __ in recent:
            sim_list = sim_lookup(item) or {}
            for candidate, similarity in sim_list.items():
                if candidate in consumed:
                    continue
                if similarity <= self._config.min_similarity:
                    continue
                numerator[candidate] = (
                    numerator.get(candidate, 0.0) + similarity * rating
                )
                denominator[candidate] = (
                    denominator.get(candidate, 0.0) + similarity
                )
        scored = sorted(
            (
                (numerator[c] / denominator[c], denominator[c], c)
                for c in numerator
                if denominator[c] > 0.0
            ),
            key=lambda row: (-row[0], -row[1], row[2]),
        )
        return [
            Recommendation(item, score, source="cf")
            for score, __, item in scored[:n]
        ]

    def _complement(
        self,
        user_id: str,
        n: int,
        results: list[Recommendation],
        consumed: set[str],
        hot_items: Callable[[int], "list[tuple[str, float]]"],
    ) -> list[Recommendation]:
        have = {r.item_id for r in results} | consumed
        for item, score in hot_items(n * 2 + len(have)):
            if item in have:
                continue
            results.append(Recommendation(item, score, source="db"))
            have.add(item)
            if len(results) >= n:
                break
        return results

    # -- batched CF (serving layer) ----------------------------------------

    def recommend_cf_batch(
        self,
        user_ids,
        n: int,
        now: float,
        hot_lists: "dict[str, dict] | None" = None,
    ) -> dict[str, CFAnswer]:
        """Answer many CF queries from three batched reads.

        One :meth:`~repro.tdstore.client.TDStoreClient.multi_get` fetches
        every user's recent/history pair, a second fetches the sim lists
        of every recent item across the whole batch, and (when the
        complement is on) a third fetches the hot lists of every group
        the batch touches — instead of the per-key path's
        ``2 + R + G`` store round-trips *per user*.

        ``hot_lists`` is in/out: groups already present are not fetched
        (the serving layer's hot tier injects them), and groups this
        call does fetch are added to the dict so the caller can cache
        them. Scoring is shared with :meth:`recommend_cf`, so a batched
        answer is identical to the per-key answer over the same state.
        """
        user_ids = list(dict.fromkeys(user_ids))
        user_keys = [StateKeys.recent(u) for u in user_ids]
        user_keys += [StateKeys.history(u) for u in user_ids]
        snapshot = self._store.multi_get(user_keys)
        recents = {
            u: snapshot.get(StateKeys.recent(u)) or [] for u in user_ids
        }
        consumed = {
            u: set(snapshot.get(StateKeys.history(u)) or {}) for u in user_ids
        }
        batch_items: list[str] = []
        seen_items: set[str] = set()
        for u in user_ids:
            for item, __, __unused in recents[u]:
                if item not in seen_items:
                    seen_items.add(item)
                    batch_items.append(item)
        sim_lists = (
            self._store.multi_get(
                [StateKeys.sim_list(item) for item in batch_items]
            )
            if batch_items
            else {}
        )
        hot_by_group: dict[str, dict] = (
            hot_lists if hot_lists is not None else {}
        )
        if self._config.complement_with_db:
            groups_needed: list[str] = []
            for u in user_ids:
                for group in self._groups_for(u):
                    if group not in hot_by_group and group not in groups_needed:
                        groups_needed.append(group)
            if groups_needed:
                fetched = self._store.multi_get(
                    [StateKeys.hot(g) for g in groups_needed]
                )
                for group in groups_needed:
                    hot_by_group[group] = fetched.get(StateKeys.hot(group)) or {}
        answers: dict[str, CFAnswer] = {}
        for u in user_ids:
            results = self._score_cf(
                recents[u],
                consumed[u],
                lambda item: sim_lists.get(StateKeys.sim_list(item)),
                n,
            )
            dep_groups: tuple[str, ...] = ()
            if len(results) < n and self._config.complement_with_db:
                groups = self._groups_for(u)
                results = self._complement(
                    u, n, results, consumed[u],
                    lambda count, groups=groups: self._merge_hot(
                        groups, lambda g: hot_by_group.get(g) or {}, count
                    ),
                )
                dep_groups = tuple(groups)
            answers[u] = CFAnswer(
                results=results,
                dep_items=tuple(item for item, __, __u in recents[u]),
                dep_groups=dep_groups,
            )
        return answers

    # -- demographic hot items ------------------------------------------------

    def _groups_for(self, user_id: str) -> list[str]:
        groups = [GLOBAL_GROUP]
        if self._config.group_of is not None:
            group = self._config.group_of(user_id)
            if group != GLOBAL_GROUP:
                groups.insert(0, group)
        return groups

    @staticmethod
    def _merge_hot(
        groups: list[str],
        lookup: Callable[[str], dict],
        n: int,
    ) -> list[tuple[str, float]]:
        out: list[tuple[str, float]] = []
        seen: set[str] = set()
        for group in groups:
            hot = lookup(group) or {}
            ranked = sorted(hot.items(), key=lambda kv: (-kv[1], kv[0]))
            for item, score in ranked:
                if item not in seen:
                    out.append((item, score))
                    seen.add(item)
                if len(out) >= n:
                    return out
        return out

    def hot_items_for(
        self, user_id: str, n: int, now: float
    ) -> list[tuple[str, float]]:
        return self._merge_hot(
            self._groups_for(user_id),
            lambda group: self._store.get(StateKeys.hot(group), None) or {},
            n,
        )

    # -- embedding retrieval (streaming VQ) ---------------------------------

    @property
    def vq_retriever(self) -> VQRetriever:
        """The lazily-built VQ candidate source (shares the engine's
        client, so query deadlines scope onto its reads too)."""
        if self._vq is None:
            self._vq = VQRetriever(self._store, self._config.vq)
        return self._vq

    def recommend_vq(
        self, user_id: str, n: int, now: float
    ) -> list[Recommendation]:
        """ANN-style candidates from the streaming VQ index.

        Raises :class:`~repro.errors.ColdIndexError` when the index (or
        this user's embedding view of it) cannot answer — the front
        end's cue to degrade to CF. No DB complement here: cold is a
        signal, not a gap to paper over.
        """
        return self.vq_retriever.recommend(user_id, n, now)

    # -- content-based ------------------------------------------------------------

    def recommend_cb(self, user_id: str, n: int, now: float) -> list[Recommendation]:
        profile = self._store.get(StateKeys.profile(user_id), None) or {}
        if not profile:
            return []
        live_weights = {tag: weight for tag, (weight, __) in profile.items()}
        norm = math.sqrt(sum(w * w for w in live_weights.values()))
        if norm <= 0.0:
            return []
        consumed = self._store.get(StateKeys.consumed(user_id), None) or set()
        scores: dict[str, float] = {}
        for tag, weight in live_weights.items():
            for item in self._store.get(StateKeys.tag_index(tag), None) or ():
                if item in consumed:
                    continue
                scores[item] = scores.get(item, 0.0) + weight
        ranked: list[tuple[float, str]] = []
        for item, dot in scores.items():
            meta = self._store.get(StateKeys.item_meta(item), None)
            if meta is None:
                continue
            lifetime = meta.get("lifetime")
            if lifetime is not None and now >= meta.get("publish_time", 0.0) + lifetime:
                continue
            item_norm = math.sqrt(max(1, len(item_tags(meta))))
            ranked.append((dot / (norm * item_norm), item))
        ranked.sort(key=lambda row: (-row[0], row[1]))
        return [
            Recommendation(item, score, source="cb")
            for score, item in ranked[:n]
        ]

    # -- association rules ------------------------------------------------------

    def recommend_ar(
        self,
        user_id: str,
        n: int,
        now: float,
        session_items: list[str],
        min_support: int = 2,
        min_confidence: float = 0.05,
    ) -> list[Recommendation]:
        best: dict[str, float] = {}
        in_session = set(session_items)
        for item in session_items:
            base = self._store.get(StateKeys.ar_item(item), 0.0)
            if base <= 0.0:
                continue
            partners = self._store.get(StateKeys.ar_partners(item), None) or ()
            for partner in partners:
                if partner in in_session:
                    continue
                joint = self._store.get(StateKeys.ar_pair(item, partner), 0.0)
                if joint < min_support:
                    continue
                confidence = joint / base
                if confidence >= min_confidence:
                    best[partner] = max(best.get(partner, 0.0), confidence)
        ranked = sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            Recommendation(item, conf, source="ar")
            for item, conf in ranked[:n]
        ]

    # -- situational CTR ------------------------------------------------------------

    def rank_by_ctr(
        self,
        user_id: str,
        candidates: list[str],
        n: int,
        profiles: ProfileLookup,
    ) -> list[Recommendation]:
        attributes = profile_attributes(profiles(user_id))
        scored = []
        for item in candidates:
            value = self._config.prior_ctr
            for level in BACKOFF_LEVELS:
                situation = situation_key(attributes, level)
                if situation is None:
                    continue
                stored = self._store.get(StateKeys.ctr(item, situation), None)
                if stored is not None:
                    value = stored
                    break
            scored.append((value, item))
        scored.sort(key=lambda row: (-row[0], row[1]))
        return [
            Recommendation(item, score, source="ctr")
            for score, item in scored[:n]
        ]
