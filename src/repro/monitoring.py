"""System monitoring (the "Monitor" box of Figure 9).

Aggregates health and load signals from every layer — TDAccess consumer
lag and server liveness, TDStore read/write balance and replication
backlog, Storm task metrics — into one snapshot, and evaluates alert
rules against it. The deployment section's operational story (hundreds
of machines, failures are routine) is only credible with this kind of
overview.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Callable

from repro.storm.cluster import LocalCluster
from repro.tdaccess.cluster import TDAccessCluster
from repro.tdaccess.consumer import Consumer
from repro.tdstore.cluster import TDStoreCluster

if TYPE_CHECKING:
    from repro.elastic.autoscaler import Autoscaler
    from repro.engine.front_end import RecommenderFrontEnd
    from repro.recovery.coordinator import CheckpointCoordinator
    from repro.recovery.recovery import RecoveryManager
    from repro.resilience.breaker import CircuitBreaker
    from repro.resilience.shedder import LoadShedder
    from repro.serving.layer import ServingLayer


@dataclass
class Alert:
    """One fired alert rule."""

    severity: str  # "warning" | "critical"
    component: str
    message: str


# bump when a snapshot field is added/renamed; from_dict refuses other
# versions rather than silently dropping signals
SNAPSHOT_SCHEMA_VERSION = 4


@dataclass
class SystemSnapshot:
    """Point-in-time view of the whole deployment."""

    timestamp: float
    tdaccess_servers_up: int = 0
    tdaccess_servers_total: int = 0
    consumer_lag: dict[str, int] = field(default_factory=dict)
    tdstore_servers_up: int = 0
    tdstore_servers_total: int = 0
    tdstore_reads: dict[int, int] = field(default_factory=dict)
    tdstore_writes: dict[int, int] = field(default_factory=dict)
    replication_backlog: int = 0
    topology_executed: dict[str, int] = field(default_factory=dict)
    topology_restarts: dict[str, int] = field(default_factory=dict)
    checkpoints_taken: int = 0
    checkpoint_age: float | None = None
    recoveries: int = 0
    recovery_in_progress: bool = False
    last_recovery_duration: float | None = None
    # resilience layer
    breaker_states: dict[str, str] = field(default_factory=dict)
    breaker_rejections: dict[str, int] = field(default_factory=dict)
    shed_counts: dict[str, int] = field(default_factory=dict)
    shed_rate: float = 0.0
    serving_rungs: dict[str, int] = field(default_factory=dict)
    queries_shed: int = 0
    degraded_tdstore_servers: list[int] = field(default_factory=list)
    degraded_tdaccess_servers: list[int] = field(default_factory=list)
    # exactly-once layer: per "task" (e.g. "itemCount[0]") ledger stats
    ledger_entries: dict[str, int] = field(default_factory=dict)
    dedup_hits: dict[str, int] = field(default_factory=dict)
    ledgers_over_bound: list[str] = field(default_factory=list)
    # drops decided solely by the ledger watermark: a late *first*
    # delivery below the watermark is lost indistinguishably from a
    # replay, so these are tracked apart from ordinary dedup hits
    watermark_rejections: dict[str, int] = field(default_factory=dict)
    # over-acked tuple trees absorbed per topology (possible double-ack bug)
    acker_anomalies: dict[str, int] = field(default_factory=dict)
    # op-journal ids trimmed out across the TDStore pool: a rewind deep
    # enough to re-deliver one would double-apply
    journal_evictions: int = 0
    # serving layer: cached/batched query pipeline
    serving_tiers: dict[str, int] = field(default_factory=dict)
    serving_stale_serves: int = 0
    result_cache_hit_rate: float = 0.0
    result_cache_invalidations: int = 0
    result_cache_evictions: int = 0
    coalescer_mean_batch: float = 0.0
    store_batch_ops: int = 0
    store_hedged_reads: int = 0
    store_degraded_keys: int = 0
    # elastic layer: live migrations + autoscaler
    topology_pending: dict[str, int] = field(default_factory=dict)
    route_epoch: int = 0
    migrations_completed: int = 0
    migrations_aborted: int = 0
    migrations_in_flight: int = 0
    autoscaler_decisions: int = 0
    autoscaler_applied: int = 0
    autoscaler_last_action: str | None = None
    # process substrate: supervisor robustness counters (forced kills of
    # hung children, respawns after crashes, consecutive heartbeat
    # misses per child) — zero/empty on the simulator
    supervisor_kills: int = 0
    supervisor_respawns: int = 0
    heartbeat_miss_streaks: dict[str, int] = field(default_factory=dict)
    # anti-entropy scrub (repro.tdstore.scrub): accumulated counters
    # across every pass on the watched facade. Divergence and silent
    # corruption alert on their delta — each is state the checksummed
    # WAL/RPC paths could not have caught in flight.
    scrub_passes: int = 0
    scrub_instances_scanned: int = 0
    scrub_divergent_buckets: int = 0
    scrub_keys_repaired: int = 0
    scrub_keys_deleted: int = 0
    scrub_corruptions_detected: int = 0
    # retrieval (schema v4): streaming-VQ index structure and churn.
    # Stats counters are journal-exact (chaos replays do not inflate
    # them); p99 is recomputed from the live posting lists each
    # snapshot. Cold fallbacks count vq queries the front end answered
    # from CF inside the live rung.
    vq_centroids: int = 0
    vq_indexed_items: int = 0
    vq_reassignments: int = 0
    vq_splits: int = 0
    vq_merges: int = 0
    vq_posting_p99: int = 0
    retrieval_cold_fallbacks: int = 0

    # dict-valued fields keyed by server id; JSON forces str keys, so
    # to_dict/from_dict convert explicitly instead of relying on json
    _INT_KEYED = ("tdstore_reads", "tdstore_writes")

    def to_dict(self) -> dict:
        """JSON-safe form, e.g. for shipping snapshots across processes
        or persisting monitoring history."""
        out: dict = {"schema_version": SNAPSHOT_SCHEMA_VERSION}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name in self._INT_KEYED:
                value = {str(k): v for k, v in value.items()}
            elif isinstance(value, dict):
                value = dict(value)
            elif isinstance(value, list):
                value = list(value)
            out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SystemSnapshot":
        version = data.get("schema_version")
        if version != SNAPSHOT_SCHEMA_VERSION:
            raise ValueError(
                f"snapshot schema version {version!r} is not "
                f"{SNAPSHOT_SCHEMA_VERSION}; refusing a lossy decode"
            )
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(data) - known - {"schema_version"})
        if unknown:
            raise ValueError(
                f"snapshot carries unknown field(s) {unknown}; schema "
                "version was not bumped with the field change"
            )
        kwargs = {}
        for spec in fields(cls):
            if spec.name not in data:
                continue
            value = data[spec.name]
            if spec.name in cls._INT_KEYED:
                value = {int(k): v for k, v in value.items()}
            kwargs[spec.name] = value
        return cls(**kwargs)

    def total_dedup_hits(self) -> int:
        """Replayed tuples suppressed so far — each one is a counter
        corruption that the dedup ledger averted."""
        return sum(self.dedup_hits.values())

    def total_watermark_rejections(self) -> int:
        return sum(self.watermark_rejections.values())

    def read_imbalance(self) -> float:
        """Max/mean read ratio across TDStore servers (1.0 = perfectly
        even; the fine-grained backup of §3.3 should keep this low)."""
        values = [v for v in self.tdstore_reads.values() if v >= 0]
        total = sum(values)
        if not values or total == 0:
            return 1.0
        mean = total / len(values)
        return max(values) / mean


class SystemMonitor:
    """Collects snapshots and evaluates alert rules."""

    def __init__(
        self,
        clock_now: Callable[[], float],
        tdaccess: TDAccessCluster | None = None,
        tdstore: TDStoreCluster | None = None,
        storm: LocalCluster | None = None,
        coordinator: "CheckpointCoordinator | None" = None,
        recovery: "RecoveryManager | None" = None,
        max_consumer_lag: int = 10_000,
        max_replication_backlog: int = 10_000,
        max_read_imbalance: float = 3.0,
        max_checkpoint_age: float | None = None,
        max_heartbeat_misses: int = 3,
        max_posting_p99: int = 10_000,
        max_reassignment_burst: int = 1_000,
    ):
        self._now = clock_now
        self._tdaccess = tdaccess
        self._tdstore = tdstore
        self._storm = storm
        self._coordinator = coordinator
        self._recovery = recovery
        self._consumers: dict[str, Consumer] = {}
        self._breakers: dict[str, "CircuitBreaker"] = {}
        self._shedder: "LoadShedder | None" = None
        self._front_end: "RecommenderFrontEnd | None" = None
        self._serving: "ServingLayer | None" = None
        self._autoscaler: "Autoscaler | None" = None
        self._supervisor = None
        self.max_consumer_lag = max_consumer_lag
        self.max_replication_backlog = max_replication_backlog
        self.max_read_imbalance = max_read_imbalance
        self.max_checkpoint_age = max_checkpoint_age
        self.max_heartbeat_misses = max_heartbeat_misses
        self.max_posting_p99 = max_posting_p99
        self.max_reassignment_burst = max_reassignment_burst
        self._retrieval_probe = None
        self.history: list[SystemSnapshot] = []

    def watch_consumer(self, name: str, consumer: Consumer):
        self._consumers[name] = consumer

    def watch_breaker(self, name: str, breaker: "CircuitBreaker"):
        self._breakers[name] = breaker

    def watch_shedder(self, shedder: "LoadShedder"):
        self._shedder = shedder

    def watch_front_end(self, front_end: "RecommenderFrontEnd"):
        self._front_end = front_end

    def watch_serving(self, serving: "ServingLayer"):
        self._serving = serving

    def watch_retrieval(self, probe):
        """Surface streaming-VQ index health as monitoring signals.

        ``probe`` is anything with a ``stats()`` returning the
        :class:`~repro.retrieval.VQIndexProbe` shape (centroids,
        indexed_items, reassignments, splits, merges, posting_p99).
        """
        self._retrieval_probe = probe

    def watch_autoscaler(self, autoscaler: "Autoscaler"):
        """Surface the autoscaler's decisions as monitoring signals.

        The autoscaler registers itself at construction, closing the
        loop: its inputs are snapshots, and its outputs show up in the
        next snapshot (and alert on their delta).
        """
        self._autoscaler = autoscaler

    def watch_supervisor(self, supervisor):
        """Surface a :class:`~repro.runtime.supervisor.ProcessSupervisor`'s
        robustness counters — forced kills of hung children, respawns,
        heartbeat-miss streaks — as monitoring signals. Only meaningful
        on the process substrate; any object with ``robustness_stats()``
        qualifies."""
        self._supervisor = supervisor

    def watch_recovery(
        self,
        coordinator: "CheckpointCoordinator | None" = None,
        recovery: "RecoveryManager | None" = None,
    ):
        """(Re)wire the checkpoint/recovery signal sources; recovery
        rebuilds the coordinator, so the monitor must be repointable."""
        if coordinator is not None:
            self._coordinator = coordinator
        if recovery is not None:
            self._recovery = recovery

    # -- collection ---------------------------------------------------------

    def snapshot(self) -> SystemSnapshot:
        snap = SystemSnapshot(timestamp=self._now())
        if self._tdaccess is not None:
            servers = self._tdaccess.data_servers
            snap.tdaccess_servers_total = len(servers)
            snap.tdaccess_servers_up = sum(1 for s in servers if s.alive)
        for name, consumer in self._consumers.items():
            snap.consumer_lag[name] = consumer.lag()
        if self._tdstore is not None:
            servers = self._tdstore.data_servers
            snap.tdstore_servers_total = len(servers)
            snap.tdstore_servers_up = sum(1 for s in servers if s.alive)
            snap.tdstore_reads = self._tdstore.read_stats()
            snap.tdstore_writes = self._tdstore.write_stats()
            snap.replication_backlog = sum(
                s.pending_syncs() for s in servers if s.alive
            )
            snap.journal_evictions = self._tdstore.journal_evictions()
            if hasattr(self._tdstore, "migration_stats"):
                stats = self._tdstore.migration_stats()
                snap.route_epoch = stats["route_epoch"]
                snap.migrations_completed = stats["completed"]
                snap.migrations_aborted = stats["aborted"]
                snap.migrations_in_flight = len(stats["in_flight"])
            if hasattr(self._tdstore, "scrub_stats"):
                stats = self._tdstore.scrub_stats()
                snap.scrub_passes = stats["scrub_passes"]
                snap.scrub_instances_scanned = stats["instances_scanned"]
                snap.scrub_divergent_buckets = stats["divergent_buckets"]
                snap.scrub_keys_repaired = stats["keys_repaired"]
                snap.scrub_keys_deleted = stats["keys_deleted"]
                snap.scrub_corruptions_detected = stats[
                    "corruptions_detected"
                ]
        if self._storm is not None:
            for name, run in self._storm._running.items():
                snap.topology_pending[name] = run.pending_tuples()
                snap.topology_executed[name] = run.metrics.total_executed()
                snap.topology_restarts[name] = run.metrics.task_restarts
                snap.acker_anomalies[name] = run.acker.anomalies
                for task, stats in self._storm.exactly_once_stats(name).items():
                    snap.ledger_entries[task] = stats["entries"]
                    snap.dedup_hits[task] = stats["dedup_hits"]
                    snap.watermark_rejections[task] = stats.get(
                        "watermark_rejections", 0
                    )
                    if not stats["within_bound"]:
                        snap.ledgers_over_bound.append(task)
        if self._coordinator is not None:
            snap.checkpoints_taken = self._coordinator.checkpoints_taken
            snap.checkpoint_age = self._coordinator.checkpoint_age(
                snap.timestamp
            )
        if self._recovery is not None:
            snap.recoveries = self._recovery.recoveries
            snap.recovery_in_progress = self._recovery.in_progress
            snap.last_recovery_duration = self._recovery.last_recovery_duration
        for name, breaker in self._breakers.items():
            snap.breaker_states[name] = breaker.state
            snap.breaker_rejections[name] = breaker.rejections
        if self._shedder is not None:
            snap.shed_counts = dict(self._shedder.shed)
            snap.shed_rate = self._shedder.shed_rate()
        if self._front_end is not None:
            snap.serving_rungs = dict(self._front_end.log.rungs)
            snap.queries_shed = self._front_end.log.shed
            snap.retrieval_cold_fallbacks = self._front_end.log.vq_fallbacks
        if self._retrieval_probe is not None:
            stats = self._retrieval_probe.stats()
            snap.vq_centroids = stats["centroids"]
            snap.vq_indexed_items = stats["indexed_items"]
            snap.vq_reassignments = stats["reassignments"]
            snap.vq_splits = stats["splits"]
            snap.vq_merges = stats["merges"]
            snap.vq_posting_p99 = stats["posting_p99"]
        if self._serving is not None:
            stats = self._serving.stats()
            snap.serving_tiers = dict(stats["tier_serves"])
            snap.serving_stale_serves = stats["stale_serves"]
            snap.result_cache_hit_rate = self._serving.result_cache.hit_rate()
            snap.result_cache_invalidations = stats["result_cache"][
                "invalidations"
            ]
            snap.result_cache_evictions = stats["result_cache"]["evictions"]
            snap.coalescer_mean_batch = self._serving.coalescer.mean_batch_size()
            snap.store_batch_ops = stats["batch_ops"]
            snap.store_hedged_reads = stats["hedged_reads"]
            snap.store_degraded_keys = stats["degraded_keys"]
        if self._autoscaler is not None:
            snap.autoscaler_decisions = len(self._autoscaler.decisions)
            snap.autoscaler_applied = self._autoscaler.decisions_applied()
            snap.autoscaler_last_action = self._autoscaler.last_action
        if self._supervisor is not None:
            stats = self._supervisor.robustness_stats()
            snap.supervisor_kills = stats["kills"]
            snap.supervisor_respawns = stats["respawns"]
            snap.heartbeat_miss_streaks = dict(
                stats["heartbeat_miss_streaks"]
            )
        if self._tdstore is not None and hasattr(
            self._tdstore, "degraded_servers"
        ):
            snap.degraded_tdstore_servers = self._tdstore.degraded_servers()
        if self._tdaccess is not None and hasattr(
            self._tdaccess, "degraded_servers"
        ):
            snap.degraded_tdaccess_servers = self._tdaccess.degraded_servers()
        self.history.append(snap)
        return snap

    # -- alerting -------------------------------------------------------------

    def evaluate(self, snap: SystemSnapshot | None = None) -> list[Alert]:
        if snap is None:
            snap = self.snapshot()
        alerts: list[Alert] = []
        if snap.tdaccess_servers_up < snap.tdaccess_servers_total:
            down = snap.tdaccess_servers_total - snap.tdaccess_servers_up
            alerts.append(
                Alert("critical", "tdaccess", f"{down} data server(s) down")
            )
        for name, lag in snap.consumer_lag.items():
            if lag > self.max_consumer_lag:
                alerts.append(
                    Alert(
                        "warning", "tdaccess",
                        f"consumer {name!r} lag {lag} exceeds "
                        f"{self.max_consumer_lag}",
                    )
                )
        if snap.tdstore_servers_up < snap.tdstore_servers_total:
            down = snap.tdstore_servers_total - snap.tdstore_servers_up
            alerts.append(
                Alert("critical", "tdstore", f"{down} data server(s) down")
            )
        if snap.replication_backlog > self.max_replication_backlog:
            alerts.append(
                Alert(
                    "warning", "tdstore",
                    f"replication backlog {snap.replication_backlog} "
                    f"exceeds {self.max_replication_backlog}",
                )
            )
        imbalance = snap.read_imbalance()
        if imbalance > self.max_read_imbalance:
            alerts.append(
                Alert(
                    "warning", "tdstore",
                    f"read imbalance {imbalance:.1f}x exceeds "
                    f"{self.max_read_imbalance:.1f}x",
                )
            )
        if self.max_checkpoint_age is not None and self._coordinator is not None:
            if snap.checkpoint_age is None:
                if snap.timestamp > self.max_checkpoint_age:
                    alerts.append(
                        Alert(
                            "warning", "recovery",
                            "no checkpoint has ever been taken",
                        )
                    )
            elif snap.checkpoint_age > self.max_checkpoint_age:
                alerts.append(
                    Alert(
                        "warning", "recovery",
                        f"checkpoint age {snap.checkpoint_age:.0f}s exceeds "
                        f"{self.max_checkpoint_age:.0f}s",
                    )
                )
        if snap.recovery_in_progress:
            alerts.append(
                Alert(
                    "warning", "recovery",
                    "recovery replay in progress: serving degraded",
                )
            )
        for name, restarts in snap.topology_restarts.items():
            previous = self._previous_restarts(name)
            if restarts > previous:
                alerts.append(
                    Alert(
                        "warning", "storm",
                        f"topology {name!r} had "
                        f"{restarts - previous} task restart(s)",
                    )
                )
        for task in snap.ledgers_over_bound:
            alerts.append(
                Alert(
                    "critical", "storm",
                    f"dedup ledger of {task} exceeds its watermark bound: "
                    "memory no longer O(in-flight)",
                )
            )
        dedup_delta = snap.total_dedup_hits() - self._previous_dedup_hits()
        if dedup_delta > 0:
            alerts.append(
                Alert(
                    "warning", "storm",
                    f"{dedup_delta} replayed tuple(s) suppressed since last "
                    "snapshot (counter corruption averted; check source "
                    "replays)",
                )
            )
        watermark_delta = (
            snap.total_watermark_rejections()
            - self._previous_watermark_rejections()
        )
        if watermark_delta > 0:
            alerts.append(
                Alert(
                    "warning", "storm",
                    f"{watermark_delta} delivery(ies) dropped below the "
                    "ledger watermark since last snapshot (a late first "
                    "delivery would be lost the same way; check "
                    "retain_depth against stream skew)",
                )
            )
        for name, anomalies in snap.acker_anomalies.items():
            previous = self._previous_acker_anomalies(name)
            if anomalies > previous:
                alerts.append(
                    Alert(
                        "warning", "storm",
                        f"topology {name!r} absorbed "
                        f"{anomalies - previous} over-acked tuple tree(s) "
                        "(possible double-ack bug in a bolt)",
                    )
                )
        eviction_delta = (
            snap.journal_evictions - self._previous_journal_evictions()
        )
        if eviction_delta > 0:
            alerts.append(
                Alert(
                    "warning", "tdstore",
                    f"{eviction_delta} op-journal id(s) trimmed since last "
                    "snapshot; a rewind re-delivering them would "
                    "double-apply (check JOURNAL_LIMIT against per-key op "
                    "rates)",
                )
            )
        divergence_delta = snap.scrub_divergent_buckets - self._previous_field(
            "scrub_divergent_buckets"
        )
        if divergence_delta > 0:
            alerts.append(
                Alert(
                    "warning", "tdstore",
                    f"scrub found and repaired {divergence_delta} divergent "
                    "replica bucket(s) since last snapshot (replication "
                    "drift; read-repair converged the pair)",
                )
            )
        scrub_corruption_delta = (
            snap.scrub_corruptions_detected
            - self._previous_field("scrub_corruptions_detected")
        )
        if scrub_corruption_delta > 0:
            alerts.append(
                Alert(
                    "critical", "tdstore",
                    f"scrub detected {scrub_corruption_delta} silently "
                    "corrupted key(s) since last snapshot (value differed "
                    "between replicas; repaired from the host copy — check "
                    "for memory faults or repair-path bugs)",
                )
            )
        for name, state in snap.breaker_states.items():
            if state == "open":
                alerts.append(
                    Alert(
                        "critical", "resilience",
                        f"circuit breaker {name!r} is open: dependency "
                        "unhealthy, callers failing fast",
                    )
                )
            elif state == "half_open":
                alerts.append(
                    Alert(
                        "warning", "resilience",
                        f"circuit breaker {name!r} is half-open: probing "
                        "recovery",
                    )
                )
        shed_delta = snap.queries_shed - self._previous_shed()
        if shed_delta > 0:
            alerts.append(
                Alert(
                    "warning", "resilience",
                    f"{shed_delta} query(ies) shed since last snapshot "
                    f"(total shed rate {snap.shed_rate:.1%})",
                )
            )
        degraded_delta = self._degraded_serves(snap) - self._degraded_serves(
            self._previous_snapshot()
        )
        if degraded_delta > 0:
            alerts.append(
                Alert(
                    "warning", "serving",
                    f"{degraded_delta} query(ies) served below the live "
                    "rung since last snapshot",
                )
            )
        hedged_delta = snap.store_hedged_reads - self._previous_field(
            "store_hedged_reads"
        )
        if hedged_delta > 0:
            alerts.append(
                Alert(
                    "warning", "serving",
                    f"{hedged_delta} hedged replica read(s) since last "
                    "snapshot (primary shard slow or down; replica data "
                    "may trail replication)",
                )
            )
        shard_degraded_delta = snap.store_degraded_keys - self._previous_field(
            "store_degraded_keys"
        )
        if shard_degraded_delta > 0:
            alerts.append(
                Alert(
                    "critical", "serving",
                    f"{shard_degraded_delta} key(s) served defaults after "
                    "shard failure since last snapshot (partial-batch "
                    "degradation active)",
                )
            )
        stale_delta = snap.serving_stale_serves - self._previous_field(
            "serving_stale_serves"
        )
        if stale_delta > 0:
            alerts.append(
                Alert(
                    "warning", "serving",
                    f"{stale_delta} stale cached answer(s) served since "
                    "last snapshot (live rung failing; staleness bounded "
                    "by the invalidation stream)",
                )
            )
        if snap.migrations_in_flight > 0:
            alerts.append(
                Alert(
                    "warning", "elastic",
                    f"{snap.migrations_in_flight} live migration(s) in "
                    "flight: dual-write window open, cutover pending",
                )
            )
        aborted_delta = snap.migrations_aborted - self._previous_field(
            "migrations_aborted"
        )
        if aborted_delta > 0:
            alerts.append(
                Alert(
                    "warning", "elastic",
                    f"{aborted_delta} live migration(s) aborted since last "
                    "snapshot (target died or failover raced the cutover)",
                )
            )
        applied_delta = snap.autoscaler_applied - self._previous_field(
            "autoscaler_applied"
        )
        if applied_delta > 0:
            alerts.append(
                Alert(
                    "warning", "elastic",
                    f"autoscaler applied {applied_delta} scaling action(s) "
                    f"since last snapshot (last: "
                    f"{snap.autoscaler_last_action})",
                )
            )
        kills_delta = snap.supervisor_kills - self._previous_field(
            "supervisor_kills"
        )
        if kills_delta > 0:
            alerts.append(
                Alert(
                    "critical", "runtime",
                    f"supervisor force-killed {kills_delta} hung "
                    "child process(es) since last snapshot",
                )
            )
        respawn_delta = snap.supervisor_respawns - self._previous_field(
            "supervisor_respawns"
        )
        if respawn_delta > 0:
            alerts.append(
                Alert(
                    "warning", "runtime",
                    f"supervisor respawned {respawn_delta} child "
                    "process(es) since last snapshot (crash recovery "
                    "re-driven: WAL replay / topology reload)",
                )
            )
        for name, streak in sorted(snap.heartbeat_miss_streaks.items()):
            if streak >= self.max_heartbeat_misses:
                alerts.append(
                    Alert(
                        "warning", "runtime",
                        f"child {name!r} missed {streak} consecutive "
                        f"heartbeat(s); hang-kill fires past the "
                        "supervisor's deadline",
                    )
                )
        churn_delta = snap.vq_reassignments - self._previous_field(
            "vq_reassignments"
        )
        if churn_delta > self.max_reassignment_burst:
            alerts.append(
                Alert(
                    "warning", "retrieval",
                    f"{churn_delta} VQ reassignment(s) since last snapshot "
                    f"exceeds {self.max_reassignment_burst} (assignment "
                    "churn: embeddings drifting faster than the index "
                    "settles)",
                )
            )
        if snap.vq_posting_p99 > self.max_posting_p99:
            alerts.append(
                Alert(
                    "warning", "retrieval",
                    f"posting-list p99 {snap.vq_posting_p99} exceeds "
                    f"{self.max_posting_p99} (split threshold too high for "
                    "the catalog; probe fan-out is degrading to a scan)",
                )
            )
        cold_delta = snap.retrieval_cold_fallbacks - self._previous_field(
            "retrieval_cold_fallbacks"
        )
        if cold_delta > 0:
            alerts.append(
                Alert(
                    "warning", "retrieval",
                    f"{cold_delta} vq query(ies) fell back to CF since last "
                    "snapshot (index cold or store browned out on the VQ "
                    "read path)",
                )
            )
        for layer, degraded in (
            ("tdstore", snap.degraded_tdstore_servers),
            ("tdaccess", snap.degraded_tdaccess_servers),
        ):
            if degraded:
                alerts.append(
                    Alert(
                        "warning", layer,
                        f"server(s) {degraded} degraded (latency spike or "
                        "brownout)",
                    )
                )
        return alerts

    def _previous_snapshot(self) -> SystemSnapshot | None:
        return self.history[-2] if len(self.history) >= 2 else None

    def _previous_restarts(self, name: str) -> int:
        for snap in reversed(self.history[:-1]):
            if name in snap.topology_restarts:
                return snap.topology_restarts[name]
        return 0

    def _previous_shed(self) -> int:
        previous = self._previous_snapshot()
        return previous.queries_shed if previous is not None else 0

    def _previous_dedup_hits(self) -> int:
        previous = self._previous_snapshot()
        return previous.total_dedup_hits() if previous is not None else 0

    def _previous_watermark_rejections(self) -> int:
        previous = self._previous_snapshot()
        return (
            previous.total_watermark_rejections()
            if previous is not None
            else 0
        )

    def _previous_acker_anomalies(self, name: str) -> int:
        for snap in reversed(self.history[:-1]):
            if name in snap.acker_anomalies:
                return snap.acker_anomalies[name]
        return 0

    def _previous_journal_evictions(self) -> int:
        previous = self._previous_snapshot()
        return previous.journal_evictions if previous is not None else 0

    def _previous_field(self, name: str) -> int:
        previous = self._previous_snapshot()
        return getattr(previous, name) if previous is not None else 0

    @staticmethod
    def _degraded_serves(snap: SystemSnapshot | None) -> int:
        if snap is None:
            return 0
        return sum(
            count
            for rung, count in snap.serving_rungs.items()
            if rung != "live"
        )

    def summary(self) -> str:
        """Human-readable one-page overview of the latest snapshot."""
        if not self.history:
            self.snapshot()
        snap = self.history[-1]
        lines = [f"system snapshot @ t={snap.timestamp:.0f}s"]
        lines.append(
            f"  tdaccess: {snap.tdaccess_servers_up}/"
            f"{snap.tdaccess_servers_total} servers up"
        )
        for name, lag in sorted(snap.consumer_lag.items()):
            lines.append(f"    consumer {name}: lag {lag}")
        lines.append(
            f"  tdstore:  {snap.tdstore_servers_up}/"
            f"{snap.tdstore_servers_total} servers up, "
            f"replication backlog {snap.replication_backlog}, "
            f"read imbalance {snap.read_imbalance():.2f}x"
        )
        for name, executed in sorted(snap.topology_executed.items()):
            lines.append(
                f"  topology {name}: {executed} executions, "
                f"{snap.topology_restarts.get(name, 0)} restarts"
            )
        if snap.ledger_entries:
            lines.append(
                f"  exactly-once: {sum(snap.ledger_entries.values())} ledger "
                f"entrie(s) across {len(snap.ledger_entries)} task(s), "
                f"{snap.total_dedup_hits()} replay(s) suppressed, "
                f"{snap.total_watermark_rejections()} watermark "
                f"rejection(s), {len(snap.ledgers_over_bound)} over bound, "
                f"{snap.journal_evictions} journal eviction(s)"
            )
        anomalies = sum(snap.acker_anomalies.values())
        if anomalies:
            lines.append(
                f"  acking: {anomalies} over-acked tree(s) absorbed"
            )
        if self._coordinator is not None or self._recovery is not None:
            age = (
                "never"
                if snap.checkpoint_age is None
                else f"{snap.checkpoint_age:.0f}s ago"
            )
            status = "replaying" if snap.recovery_in_progress else "steady"
            lines.append(
                f"  recovery: {snap.checkpoints_taken} checkpoint(s), "
                f"last {age}, {snap.recoveries} recoveries, {status}"
            )
        for name in sorted(snap.breaker_states):
            lines.append(
                f"  breaker {name}: {snap.breaker_states[name]}, "
                f"{snap.breaker_rejections.get(name, 0)} rejection(s)"
            )
        if self._shedder is not None:
            sheds = ", ".join(
                f"{priority}={count}"
                for priority, count in sorted(snap.shed_counts.items())
            )
            lines.append(
                f"  shedder: rate {snap.shed_rate:.1%} ({sheds})"
            )
        if self._front_end is not None and snap.serving_rungs:
            rungs = ", ".join(
                f"{rung}={count}"
                for rung, count in sorted(snap.serving_rungs.items())
            )
            lines.append(f"  serving rungs: {rungs}")
        if self._serving is not None:
            tiers = ", ".join(
                f"{tier}={count}"
                for tier, count in sorted(snap.serving_tiers.items())
            )
            lines.append(
                f"  serving: {tiers}, cache hit rate "
                f"{snap.result_cache_hit_rate:.1%}, "
                f"{snap.result_cache_invalidations} invalidation(s), "
                f"mean batch {snap.coalescer_mean_batch:.1f}, "
                f"{snap.store_batch_ops} batch op(s), "
                f"{snap.store_hedged_reads} hedged read(s), "
                f"{snap.store_degraded_keys} degraded key(s)"
            )
        if snap.scrub_passes:
            lines.append(
                f"  scrub: {snap.scrub_passes} pass(es), "
                f"{snap.scrub_instances_scanned} instance(s) scanned, "
                f"{snap.scrub_divergent_buckets} divergent bucket(s), "
                f"{snap.scrub_keys_repaired} key(s) repaired, "
                f"{snap.scrub_keys_deleted} deleted, "
                f"{snap.scrub_corruptions_detected} silent corruption(s)"
            )
        if snap.vq_centroids:
            lines.append(
                f"  retrieval: {snap.vq_centroids} centroid(s), "
                f"{snap.vq_indexed_items} item(s) indexed, "
                f"{snap.vq_reassignments} reassignment(s), "
                f"{snap.vq_splits} split(s), {snap.vq_merges} merge(s), "
                f"posting p99 {snap.vq_posting_p99}, "
                f"{snap.retrieval_cold_fallbacks} cold fallback(s)"
            )
        if snap.migrations_completed or snap.migrations_in_flight:
            lines.append(
                f"  elastic: route epoch {snap.route_epoch}, "
                f"{snap.migrations_completed} migration(s) completed, "
                f"{snap.migrations_aborted} aborted, "
                f"{snap.migrations_in_flight} in flight"
            )
        if self._autoscaler is not None:
            last = snap.autoscaler_last_action or "none"
            lines.append(
                f"  autoscaler: {snap.autoscaler_decisions} decision(s), "
                f"{snap.autoscaler_applied} applied, last action {last}"
            )
        if self._supervisor is not None:
            streaks = (
                ", ".join(
                    f"{name}={streak}"
                    for name, streak in sorted(
                        snap.heartbeat_miss_streaks.items()
                    )
                )
                or "none"
            )
            lines.append(
                f"  supervisor: {snap.supervisor_kills} hang kill(s), "
                f"{snap.supervisor_respawns} respawn(s), "
                f"miss streaks: {streaks}"
            )
        return "\n".join(lines)
