"""Shared utilities: simulated clock, deterministic RNG, stable hashing."""

from repro.utils.clock import SimClock
from repro.utils.hashing import stable_hash, partition_for_key
from repro.utils.rng import SeedSequenceFactory

__all__ = [
    "SimClock",
    "stable_hash",
    "partition_for_key",
    "SeedSequenceFactory",
]
