"""A simulated clock.

TencentRec's behaviour is time-dependent (sliding windows, linked time,
session expiry), so every component takes an explicit clock instead of
reading wall time. ``SimClock`` advances only when the driver says so,
making runs deterministic and letting benchmarks replay a simulated week
in seconds.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0


class SimClock:
    """A monotonically non-decreasing simulated clock.

    Parameters
    ----------
    start:
        Initial time in seconds since the simulation epoch.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ConfigurationError(f"clock cannot start before epoch: {start}")
        self._now = float(start)

    def now(self) -> float:
        """Return the current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ConfigurationError(f"cannot move time backwards: {seconds}")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def day(self) -> int:
        """Return the zero-based simulated day index."""
        return int(self._now // SECONDS_PER_DAY)

    def hour_of_day(self) -> float:
        """Return the hour within the current day as a float in [0, 24)."""
        return (self._now % SECONDS_PER_DAY) / SECONDS_PER_HOUR

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f})"
