"""Simulated and wall clocks.

TencentRec's behaviour is time-dependent (sliding windows, linked time,
session expiry), so every component takes an explicit clock instead of
reading wall time. ``SimClock`` advances only when the driver says so,
making runs deterministic and letting benchmarks replay a simulated week
in seconds. ``WallClock`` is the real-clock adapter the process
substrate hands to the resilience layer, where deadlines and retry
budgets must charge actual elapsed time.
"""

from __future__ import annotations

import time

from repro.errors import ConfigurationError

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0


class SimClock:
    """A monotonically non-decreasing simulated clock.

    Parameters
    ----------
    start:
        Initial time in seconds since the simulation epoch.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ConfigurationError(f"clock cannot start before epoch: {start}")
        self._now = float(start)

    def now(self) -> float:
        """Return the current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ConfigurationError(f"cannot move time backwards: {seconds}")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def day(self) -> int:
        """Return the zero-based simulated day index."""
        return int(self._now // SECONDS_PER_DAY)

    def hour_of_day(self) -> float:
        """Return the hour within the current day as a float in [0, 24)."""
        return (self._now % SECONDS_PER_DAY) / SECONDS_PER_HOUR

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f})"


class WallClock:
    """A real-time clock with the :class:`SimClock` interface.

    Time flows by itself, so the mutation methods are no-ops: a
    degradation charge of zero seconds (the process substrate reports
    real latency, not advertised latency) and ``advance_to`` waiting for
    a moment that wall time reaches on its own. Deadlines, retry budgets
    and circuit breakers built over ``now()`` therefore measure genuine
    elapsed time.

    ``now()`` is monotonic (it is ``time.monotonic`` rebased to the
    construction moment), so it is safe against system clock steps but
    not meaningful across processes — each process measures its own
    durations, which is all the resilience layer needs.
    """

    def __init__(self):
        self._start = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._start

    def advance(self, seconds: float) -> float:
        """Real time cannot be pushed; charging latency is a no-op."""
        if seconds < 0:
            raise ConfigurationError(f"cannot move time backwards: {seconds}")
        return self.now()

    def advance_to(self, timestamp: float) -> float:
        return self.now()

    def day(self) -> int:
        return int(self.now() // SECONDS_PER_DAY)

    def hour_of_day(self) -> float:
        return (self.now() % SECONDS_PER_DAY) / SECONDS_PER_HOUR

    def __repr__(self) -> str:
        return f"WallClock(now={self.now():.3f})"
