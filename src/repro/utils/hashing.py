"""Stable hashing helpers.

Python's builtin ``hash`` is salted per process, which would make stream
grouping and partition assignment non-deterministic across runs. All key
routing in the library goes through :func:`stable_hash` instead.
"""

from __future__ import annotations

import hashlib

from repro.errors import ConfigurationError


def stable_hash(key: object) -> int:
    """Return a deterministic 64-bit hash of ``key``.

    Keys are rendered with ``repr`` before hashing, so any value with a
    stable ``repr`` (strings, ints, tuples of those) hashes consistently
    across processes and runs.
    """
    data = repr(key).encode("utf-8")
    digest = hashlib.blake2b(data, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def partition_for_key(key: object, num_partitions: int) -> int:
    """Map ``key`` onto one of ``num_partitions`` buckets deterministically."""
    if num_partitions <= 0:
        raise ConfigurationError(
            f"num_partitions must be positive, got {num_partitions}"
        )
    return stable_hash(key) % num_partitions
