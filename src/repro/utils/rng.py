"""Deterministic random-number-generator management.

Simulation components each get an independent :class:`numpy.random.Generator`
derived from one root seed, so adding a new consumer of randomness does not
perturb the streams drawn by existing ones.
"""

from __future__ import annotations

import numpy as np

from repro.utils.hashing import stable_hash


class SeedSequenceFactory:
    """Hands out independent, reproducible generators keyed by name.

    Two factories built from the same root seed produce identical generators
    for identical names, regardless of request order.
    """

    def __init__(self, root_seed: int):
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def generator(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the stream identified by ``name``."""
        child_seed = stable_hash((self._root_seed, name)) % (2**63)
        return np.random.default_rng(child_seed)

    def spawn(self, name: str) -> "SeedSequenceFactory":
        """Derive a sub-factory, useful for namespacing component seeds."""
        return SeedSequenceFactory(stable_hash((self._root_seed, name)) % (2**63))
