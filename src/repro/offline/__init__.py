"""The offline computation platform (Figure 9).

The deployment diagram attaches an offline platform beside the real-time
TDProcess: periodic batch jobs replay history from TDAccess (whose
disk-backed logs exist precisely so "the offline computation requiring
the historical data" can read them, §3.2) and publish their results into
TDStore for the same recommender engine to serve. This is how the
paper's "Original" comparators are actually produced at system level.
"""

from repro.offline.jobs import BatchCFJob, JobScheduler, OfflineJob

__all__ = ["BatchCFJob", "JobScheduler", "OfflineJob"]
