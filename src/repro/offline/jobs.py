"""Offline batch jobs over TDAccess history.

:class:`BatchCFJob` is the canonical one: replay a topic's retained
history, resolve implicit max-weight ratings, fit the batch item-based
CF (Equation 1/4), and publish similar-items tables plus per-user
recent-history state into TDStore — after which the query-time engine
serves from it exactly as it serves the real-time topology's state.
:class:`JobScheduler` reruns registered jobs at fixed simulated-time
intervals (the "analyze data and update models at regular time
intervals" of traditional systems, Section 1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.algorithms.itemcf.basic import BasicItemCF
from repro.algorithms.ratings import ActionWeights, DEFAULT_ACTION_WEIGHTS
from repro.errors import ConfigurationError
from repro.tdaccess.cluster import TDAccessCluster
from repro.tdstore.client import TDStoreClient
from repro.topology.state import StateKeys


class OfflineJob(ABC):
    """A rerunnable batch computation."""

    name: str = "offline-job"

    @abstractmethod
    def run(self, now: float) -> dict:
        """Execute once; returns a stats dict for monitoring."""


class BatchCFJob(OfflineJob):
    """Rebuild the item-based CF model from full topic history.

    Parameters
    ----------
    tdaccess / topic:
        Where the raw action history lives.
    tdstore_client:
        Where the model is published (simlist/threshold/hist/recent keys,
        the same namespace the real-time topology maintains).
    k / method / weights:
        Model hyper-parameters; ``method="min"`` matches the streaming
        algorithm's implicit-feedback similarity (Equation 4).
    """

    name = "batch-cf"

    def __init__(
        self,
        tdaccess: TDAccessCluster,
        topic: str,
        tdstore_client: TDStoreClient,
        k: int = 20,
        method: str = "min",
        weights: ActionWeights = DEFAULT_ACTION_WEIGHTS,
        recent_k: int = 10,
    ):
        self._tdaccess = tdaccess
        self._topic = topic
        self._store = tdstore_client
        self._k = k
        self._method = method
        self._weights = weights
        self._recent_k = recent_k
        self.runs = 0

    def _load_history(self, now: float):
        """Replay the topic from offset zero (fresh consumer each run)."""
        consumer = self._tdaccess.consumer(self._topic)
        ratings: dict[str, dict[str, float]] = {}
        last_seen: dict[str, dict[str, float]] = {}
        events = 0
        for message in consumer.drain(max_per_partition=1024):
            payload = message.value
            if not isinstance(payload, dict):
                continue
            action = payload.get("action")
            if action is None or not self._weights.knows(action):
                continue
            timestamp = float(payload.get("timestamp", message.timestamp))
            if timestamp > now:
                continue  # the job only sees history up to its start
            user = str(payload["user"])
            item = str(payload["item"])
            weight = self._weights.weight(action)
            user_ratings = ratings.setdefault(user, {})
            user_ratings[item] = max(user_ratings.get(item, 0.0), weight)
            last_seen.setdefault(user, {})[item] = timestamp
            events += 1
        return ratings, last_seen, events

    def run(self, now: float) -> dict:
        ratings, last_seen, events = self._load_history(now)
        model = BasicItemCF(k=self._k, method=self._method).fit(ratings)
        published_items = 0
        items = {
            item for user_ratings in ratings.values() for item in user_ratings
        }
        for item in items:
            neighbours = dict(model.similar_items(item))
            self._store.put(StateKeys.sim_list(item), neighbours)
            threshold = min(neighbours.values()) if len(
                neighbours
            ) >= self._k else 0.0
            self._store.put(StateKeys.threshold(item), threshold)
            published_items += 1
        published_users = 0
        for user, user_ratings in ratings.items():
            history = {
                item: (rating, last_seen[user][item])
                for item, rating in user_ratings.items()
            }
            self._store.put(StateKeys.history(user), history)
            recent = sorted(
                (
                    (item, rating, last_seen[user][item])
                    for item, rating in user_ratings.items()
                ),
                key=lambda row: -row[2],
            )[: self._recent_k]
            self._store.put(StateKeys.recent(user), recent)
            published_users += 1
        self.runs += 1
        return {
            "events": events,
            "items_published": published_items,
            "users_published": published_users,
        }


class JobScheduler:
    """Runs offline jobs at fixed simulated-time intervals."""

    def __init__(self, interval: float):
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive: {interval}")
        self.interval = interval
        self._jobs: list[OfflineJob] = []
        self._last_run: float | None = None
        self.log: list[tuple[float, str, dict]] = []

    def register(self, job: OfflineJob):
        self._jobs.append(job)

    def maybe_run(self, now: float) -> int:
        """Run all jobs if an interval boundary passed; returns runs."""
        boundary = (now // self.interval) * self.interval
        if self._last_run is not None and boundary <= self._last_run:
            return 0
        self._last_run = boundary
        executed = 0
        for job in self._jobs:
            stats = job.run(boundary)
            self.log.append((boundary, job.name, stats))
            executed += 1
        return executed
