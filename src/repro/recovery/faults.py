"""Fault injection for the checkpoint/recovery subsystem.

The injector is a chaos driver wired into the same quiescent barrier the
checkpoint coordinator uses: at the end of each scheduling round it fires
every fault whose round has come. Faults cover all three layers of the
deployment — Storm task kills, TDStore data-server crashes/recoveries,
TDAccess server crashes and master failovers — plus ``crash_process``,
which raises :class:`~repro.errors.SimulatedCrash` to model the whole
computation process dying (taking Storm task state and the memory-based
TDStore with it; only the TDAccess logs and the checkpoint store
survive).

Plans are either scripted (an explicit list of :class:`Fault`) or
generated deterministically from a seed with :func:`seeded_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import FaultPlanError, SimulatedCrash
from repro.utils.rng import SeedSequenceFactory

if TYPE_CHECKING:
    from repro.storm.cluster import LocalCluster
    from repro.tdaccess.cluster import TDAccessCluster
    from repro.tdaccess.consumer import Consumer
    from repro.tdstore.cluster import TDStoreCluster

# process-native kinds: faults that only exist on real OS processes.
# On SimSubstrate (no chaos runtime wired) the injector records them in
# ``skipped`` instead of firing — the convergence proof compares a
# process run under these faults against a fault-free reference, so a
# sim run of the same plan legitimately reduces to the fault-free case.
# silent-corruption kinds: the faulted call *succeeds* — the mutation is
# acked — and only checksum verification (WAL replay CRC, RPC frame CRC)
# can tell. They drive the disk shim (bit_flip / wal_corrupt) and the
# RPC fault hook (frame_corrupt).
WAL_CORRUPTION_KINDS = frozenset({"bit_flip", "wal_corrupt"})
WAL_FAULT_KINDS = (
    frozenset({"torn_write", "disk_full", "fsync_error"})
    | WAL_CORRUPTION_KINDS
)
NETWORK_FAULT_KINDS = frozenset(
    {"conn_reset", "frame_drop", "frame_delay", "one_way_partition",
     "frame_corrupt"}
)
PROCESS_KINDS = frozenset(
    {"host_sigkill", "worker_sigkill"} | WAL_FAULT_KINDS | NETWORK_FAULT_KINDS
)

KINDS = frozenset(
    {
        "kill_task",
        "crash_tdstore",
        "recover_tdstore",
        "crash_tdaccess_server",
        "recover_tdaccess_server",
        "failover_tdaccess_master",
        "crash_process",
        # degradation faults: the server stays up but misbehaves
        "latency_spike",
        "error_rate",
        "brownout",
        "clear_degradation",
        # replay faults: at-least-once delivery showing its teeth
        "duplicate_delivery",
        "worker_kill_midtree",
    }
    | PROCESS_KINDS
)

PARTITION_DIRECTIONS = frozenset({"inbound", "outbound"})

# layers the degradation faults can target
LAYERS = frozenset({"tdstore", "tdaccess"})

# a brownout models an overloaded-but-alive server: it answers slowly
# and drops a deterministic fraction of requests
BROWNOUT_LATENCY = 0.1
BROWNOUT_ERROR_EVERY = 2


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    ``round`` is the barrier round at (or after) which the fault fires.
    ``target`` depends on the kind: ``(component, task_index)`` for
    ``kill_task``, ``(server_id,)`` for the TDStore/TDAccess server
    kinds, and empty for master failover and process crash. The
    degradation kinds target a layer: ``(layer, server_id, seconds)``
    for ``latency_spike``, ``(layer, server_id, every_n)`` for
    ``error_rate``, and ``(layer, server_id)`` for ``brownout`` and
    ``clear_degradation``, with ``layer`` one of ``tdstore`` /
    ``tdaccess``.

    The replay kinds: ``duplicate_delivery`` targets
    ``(consumer_name, rewind)`` — at the barrier the named source
    consumer seeks back ``rewind`` offsets per partition, so the spout
    re-delivers messages whose trees already completed.
    ``worker_kill_midtree`` targets
    ``(component, task_index, after_executions, rewind)`` — armed at the
    barrier, it fires *mid-drain* once ``after_executions`` more bolt
    executions have run: the task is killed (losing its in-memory dedup
    ledger) and every wired consumer rewinds, the worst replay case the
    store-side op journal exists for.

    The process-native kinds (fired through the substrate's chaos
    runtime; recorded as skipped on the simulator): ``host_sigkill``
    targets ``(host_index,)`` — ``kill -9`` of a TDStore server host,
    respawned with WAL replay. ``worker_sigkill`` targets
    ``(worker_index, after_executions, rewind)`` — armed like a
    mid-tree kill, but the SIGKILL takes a whole worker process
    mid-drain. ``conn_reset`` / ``frame_drop`` target
    ``(host_index, count)``; ``frame_delay`` targets
    ``(host_index, count, seconds)``; ``one_way_partition`` targets
    ``(host_index, direction, count)`` with ``direction`` ``inbound``
    (requests die before dispatch) or ``outbound`` (acks die after
    apply). The WAL disk kinds ``torn_write`` / ``disk_full`` /
    ``fsync_error`` target ``(host_index,)`` and fail-stop the host on
    its next logged mutation.

    The silent-corruption kinds: ``bit_flip`` / ``wal_corrupt`` target
    ``(host_index,)`` — the host's next logged mutation is acked but
    written damaged; detection happens at the next WAL replay, whose
    CRC check quarantines the log and re-seeds the host's servers from
    replicas. ``frame_corrupt`` targets ``(host_index, count)`` — the
    host's next ``count`` non-admin RPC replies go out with a flipped
    payload bit, which the caller's frame CRC must catch.
    """

    round: int
    kind: str
    target: tuple = ()

    def __post_init__(self):
        if self.kind not in KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(KINDS)}"
            )
        if self.round < 1:
            raise FaultPlanError(
                f"fault rounds start at 1 (first barrier): {self.round}"
            )
        if self.kind in ("latency_spike", "error_rate", "brownout",
                         "clear_degradation"):
            if not self.target or self.target[0] not in LAYERS:
                raise FaultPlanError(
                    f"{self.kind} target must start with a layer in "
                    f"{sorted(LAYERS)}: {self.target}"
                )
            want = 2 if self.kind in ("brownout", "clear_degradation") else 3
            if len(self.target) != want:
                raise FaultPlanError(
                    f"{self.kind} target needs {want} fields: {self.target}"
                )
        if self.kind == "duplicate_delivery":
            if len(self.target) != 2 or not isinstance(self.target[1], int) \
                    or self.target[1] < 1:
                raise FaultPlanError(
                    "duplicate_delivery target must be "
                    f"(consumer_name, rewind >= 1): {self.target}"
                )
        if self.kind == "worker_kill_midtree":
            if len(self.target) != 4:
                raise FaultPlanError(
                    "worker_kill_midtree target must be (component, "
                    f"task_index, after_executions, rewind): {self.target}"
                )
            __, __, after, rewind = self.target
            if not isinstance(after, int) or after < 1:
                raise FaultPlanError(
                    f"after_executions must be >= 1: {after}"
                )
            if not isinstance(rewind, int) or rewind < 1:
                raise FaultPlanError(f"rewind must be >= 1: {rewind}")
        if self.kind == "host_sigkill" or self.kind in WAL_FAULT_KINDS:
            if (
                len(self.target) != 1
                or not isinstance(self.target[0], int)
                or self.target[0] < 0
            ):
                raise FaultPlanError(
                    f"{self.kind} target must be (host_index,): {self.target}"
                )
        if self.kind == "worker_sigkill":
            if len(self.target) != 3 or not all(
                isinstance(f, int) for f in self.target
            ):
                raise FaultPlanError(
                    "worker_sigkill target must be (worker_index, "
                    f"after_executions, rewind): {self.target}"
                )
            index, after, rewind = self.target
            if index < 0 or after < 1 or rewind < 1:
                raise FaultPlanError(
                    f"worker_sigkill needs index >= 0, after >= 1, "
                    f"rewind >= 1: {self.target}"
                )
        if self.kind in ("conn_reset", "frame_drop", "frame_corrupt"):
            if (
                len(self.target) != 2
                or not all(isinstance(f, int) for f in self.target)
                or self.target[0] < 0
                or self.target[1] < 1
            ):
                raise FaultPlanError(
                    f"{self.kind} target must be (host_index, count >= 1): "
                    f"{self.target}"
                )
        if self.kind == "frame_delay":
            if (
                len(self.target) != 3
                or not isinstance(self.target[0], int)
                or not isinstance(self.target[1], int)
                or self.target[0] < 0
                or self.target[1] < 1
                or not float(self.target[2]) > 0.0
            ):
                raise FaultPlanError(
                    "frame_delay target must be (host_index, count >= 1, "
                    f"seconds > 0): {self.target}"
                )
        if self.kind == "one_way_partition":
            if (
                len(self.target) != 3
                or not isinstance(self.target[0], int)
                or self.target[0] < 0
                or self.target[1] not in PARTITION_DIRECTIONS
                or not isinstance(self.target[2], int)
                or self.target[2] < 1
            ):
                raise FaultPlanError(
                    "one_way_partition target must be (host_index, "
                    "direction in {'inbound', 'outbound'}, count >= 1): "
                    f"{self.target}"
                )


class FaultInjector:
    """Fires a fault plan against a live deployment at barrier points.

    Attach with :meth:`attach`; every fired fault is appended to
    :attr:`injected` so tests and the harness can assert what actually
    happened. The plan cursor survives a detach/re-attach, which is how a
    plan keeps going across a process crash and recovery: faults already
    fired are not replayed against the recovered deployment.
    """

    def __init__(
        self,
        plan: list[Fault],
        *,
        storm: "LocalCluster | None" = None,
        topology: str | None = None,
        tdstore: "TDStoreCluster | None" = None,
        tdaccess: "TDAccessCluster | None" = None,
        consumers: "dict[str, Consumer] | None" = None,
        runtime=None,
    ):
        self._plan = sorted(plan, key=lambda fault: fault.round)
        self._cursor = 0
        self.injected: list[Fault] = []
        # process-native faults that hit a substrate with no chaos
        # runtime land here instead of firing
        self.skipped: list[Fault] = []
        self._storm = storm
        self._topology = topology
        self._tdstore = tdstore
        self._tdaccess = tdaccess
        self._consumers = consumers
        self._runtime = runtime
        self._attached_to: "LocalCluster | None" = None
        # worker_kill_midtree / worker_sigkill faults armed at a
        # barrier, waiting for their execution countdown to hit zero
        # mid-drain
        self._armed: list[dict] = []
        self.midtree_fired = 0
        self.sigkills_fired = 0
        self.rewinds = 0

    # -- wiring -----------------------------------------------------------

    def rewire(
        self,
        *,
        storm: "LocalCluster | None" = None,
        topology: str | None = None,
        tdstore: "TDStoreCluster | None" = None,
        tdaccess: "TDAccessCluster | None" = None,
        consumers: "dict[str, Consumer] | None" = None,
        runtime=None,
    ):
        """Point the injector at a rebuilt deployment after recovery."""
        if storm is not None:
            self._storm = storm
        if topology is not None:
            self._topology = topology
        if tdstore is not None:
            self._tdstore = tdstore
        if tdaccess is not None:
            self._tdaccess = tdaccess
        if consumers is not None:
            self._consumers = consumers
        if runtime is not None:
            self._runtime = runtime

    def attach(self, cluster: "LocalCluster"):
        self.detach()
        self._storm = cluster
        cluster.add_barrier_hook(self.on_barrier)
        cluster.add_execute_hook(self.on_execute)
        self._attached_to = cluster

    def detach(self):
        if self._attached_to is not None:
            self._attached_to.remove_barrier_hook(self.on_barrier)
            self._attached_to.remove_execute_hook(self.on_execute)
            self._attached_to = None
        self._armed = []  # armed kills die with the deployment they aimed at

    # -- firing -----------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._plan)

    @property
    def remaining(self) -> list[Fault]:
        return self._plan[self._cursor :]

    def on_barrier(self, barrier_round: int):
        while (
            self._cursor < len(self._plan)
            and self._plan[self._cursor].round <= barrier_round
        ):
            fault = self._plan[self._cursor]
            self._cursor += 1
            self._fire(fault)

    def fire_now(self, fault: Fault):
        """Fire one fault immediately, outside the barrier plan.

        The entry point for non-quiescent scheduling
        (:class:`~repro.runtime.chaos.MidFlightScheduler`): the fault
        goes through the same dispatch as a planned one — recorded in
        ``injected``, skipped on substrates without a chaos runtime,
        arming countdowns for the sigkill kinds — but its ``round`` is
        ignored; *when* it fires is the caller's trigger, not a barrier.
        """
        self._fire(fault)

    def _fire(self, fault: Fault):
        self.injected.append(fault)
        if fault.kind == "kill_task":
            component, task_index = fault.target
            self._storm.kill_task(self._topology, component, task_index)
        elif fault.kind == "crash_tdstore":
            self._tdstore.crash_data_server(fault.target[0])
        elif fault.kind == "recover_tdstore":
            self._tdstore.recover_data_server(fault.target[0])
        elif fault.kind == "crash_tdaccess_server":
            self._tdaccess.crash_data_server(fault.target[0])
        elif fault.kind == "recover_tdaccess_server":
            self._tdaccess.recover_data_server(fault.target[0])
        elif fault.kind == "failover_tdaccess_master":
            self._tdaccess.failover_master()
        elif fault.kind == "latency_spike":
            layer, server_id, seconds = fault.target
            cluster = self._layer(layer)
            if hasattr(cluster, "set_real_delay"):
                # process substrate: the owning host really stalls
                # (bounded server-side) instead of advertising seconds
                # for clients to charge — same plan, native semantics
                cluster.set_real_delay(server_id, seconds)
            else:
                cluster.set_degradation(server_id, latency=seconds)
        elif fault.kind == "error_rate":
            layer, server_id, every = fault.target
            self._layer(layer).set_degradation(server_id, error_every=every)
        elif fault.kind == "brownout":
            layer, server_id = fault.target
            cluster = self._layer(layer)
            if hasattr(cluster, "set_real_delay"):
                cluster.set_real_delay(server_id, BROWNOUT_LATENCY)
                cluster.set_degradation(
                    server_id, error_every=BROWNOUT_ERROR_EVERY
                )
            else:
                cluster.set_degradation(
                    server_id,
                    latency=BROWNOUT_LATENCY,
                    error_every=BROWNOUT_ERROR_EVERY,
                )
        elif fault.kind == "clear_degradation":
            layer, server_id = fault.target
            self._layer(layer).clear_degradation(server_id)
        elif fault.kind == "duplicate_delivery":
            consumer_name, rewind = fault.target
            self._rewind_consumer(consumer_name, rewind)
        elif fault.kind == "worker_kill_midtree":
            component, task_index, after, rewind = fault.target
            self._armed.append(
                {
                    "component": component,
                    "task_index": task_index,
                    "countdown": after,
                    "rewind": rewind,
                }
            )
        elif fault.kind in PROCESS_KINDS:
            if self._runtime is None:
                self.skipped.append(fault)
            elif fault.kind == "worker_sigkill":
                worker_index, after, rewind = fault.target
                self._armed.append(
                    {
                        "sigkill_worker": worker_index,
                        "countdown": after,
                        "rewind": rewind,
                    }
                )
            else:
                self._runtime.fire(fault)
        elif fault.kind == "crash_process":
            raise SimulatedCrash(
                f"fault plan crashed the computation process at round "
                f"{fault.round}"
            )

    def on_execute(self, topology_name: str):
        """Countdown hook for armed mid-tree kills (fires mid-drain)."""
        if not self._armed or topology_name != self._topology:
            return
        still_armed = []
        for armed in self._armed:
            armed["countdown"] -= 1
            if armed["countdown"] > 0:
                still_armed.append(armed)
                continue
            if "sigkill_worker" in armed:
                # SIGKILL the whole worker process mid-drain; the
                # parent's next dispatch to it finds the corpse and
                # drives respawn + reload + re-dispatch
                self._runtime.kill_worker(armed["sigkill_worker"])
                self.sigkills_fired += 1
            else:
                # the kill: the task's in-memory state (dedup ledger
                # included) is gone; its queued tuples survive to the
                # fresh instance
                self._storm.kill_task(
                    self._topology, armed["component"], armed["task_index"]
                )
                self.midtree_fired += 1
            # ...and the replay: every wired source consumer rewinds, so
            # already-processed offsets are re-delivered into the half
            # finished drain
            for consumer_name in self._consumers or {}:
                self._rewind_consumer(consumer_name, armed["rewind"])
        self._armed = still_armed

    def _rewind_consumer(self, consumer_name: str, rewind: int):
        consumer = (self._consumers or {}).get(consumer_name)
        if consumer is None:
            raise FaultPlanError(
                f"fault rewinds consumer {consumer_name!r} but the injector "
                "has no such consumer wired"
            )
        for partition, position in sorted(consumer.positions().items()):
            consumer.seek(partition, max(0, position - rewind))
        self.rewinds += 1
        if self._storm is not None and self._topology is not None:
            # spouts that had reported exhaustion have input again
            self._storm.reactivate_spouts(self._topology)

    def _layer(self, layer: str):
        cluster = self._tdstore if layer == "tdstore" else self._tdaccess
        if cluster is None:
            raise FaultPlanError(
                f"fault targets the {layer} layer but the injector has no "
                f"{layer} cluster wired"
            )
        return cluster


def seeded_plan(
    seed: int,
    *,
    horizon: int,
    kill_components: list[tuple[str, int]] | None = None,
    tdstore_servers: list[int] | None = None,
    tdaccess_servers: list[int] | None = None,
    task_kills: int = 2,
    tdstore_crashes: int = 1,
    tdaccess_crashes: int = 0,
    master_failovers: int = 0,
    process_crashes: int = 1,
    latency_spikes: int = 0,
    spike_seconds: float = 0.25,
    error_rates: int = 0,
    error_every: int = 3,
    brownouts: int = 0,
    duplicate_deliveries: int = 0,
    midtree_kills: int = 0,
    rewind_depth: int = 8,
    midtree_after: int = 3,
    consumer_name: str = "source",
) -> list[Fault]:
    """Generate a deterministic fault plan from ``seed``.

    ``horizon`` is the number of barrier rounds the run is expected to
    last; faults are scheduled inside it. ``kill_components`` lists
    ``(component, parallelism)`` choices for task kills. Server crashes
    are paired with a recovery a few rounds later so at most one replica
    of anything is down at a time. Process crashes are placed in the
    second half of the horizon so checkpoints exist to recover from.

    Degradation faults ride the same seed: ``latency_spikes`` and
    ``error_rates`` pick TDStore servers, ``brownouts`` pick TDAccess
    servers, and each is paired with a ``clear_degradation`` a few
    rounds later so the plan proves recovery (breakers re-closing, the
    ladder climbing back up) and not just survival.
    """
    if horizon < 4:
        raise FaultPlanError(f"horizon too short to schedule faults: {horizon}")
    rng = SeedSequenceFactory(seed).generator("fault-plan")
    plan: list[Fault] = []

    def _round(lo: int, hi: int) -> int:
        return int(rng.integers(lo, max(lo + 1, hi)))

    if kill_components:
        for _ in range(task_kills):
            component, parallelism = kill_components[
                int(rng.integers(0, len(kill_components)))
            ]
            task_index = int(rng.integers(0, parallelism))
            plan.append(
                Fault(_round(1, horizon), "kill_task", (component, task_index))
            )
    if tdstore_servers:
        for _ in range(tdstore_crashes):
            server = tdstore_servers[int(rng.integers(0, len(tdstore_servers)))]
            crash_at = _round(1, horizon - 2)
            plan.append(Fault(crash_at, "crash_tdstore", (server,)))
            plan.append(
                Fault(
                    crash_at + _round(1, 3), "recover_tdstore", (server,)
                )
            )
    if tdaccess_servers:
        for _ in range(tdaccess_crashes):
            server = tdaccess_servers[
                int(rng.integers(0, len(tdaccess_servers)))
            ]
            crash_at = _round(1, horizon - 2)
            plan.append(Fault(crash_at, "crash_tdaccess_server", (server,)))
            plan.append(
                Fault(
                    crash_at + _round(1, 3),
                    "recover_tdaccess_server",
                    (server,),
                )
            )
    def _degradation_pair(kind: str, layer: str, servers: list[int], extra: tuple):
        server = servers[int(rng.integers(0, len(servers)))]
        start = _round(1, horizon - 2)
        plan.append(Fault(start, kind, (layer, server) + extra))
        plan.append(
            Fault(
                start + _round(1, 3), "clear_degradation", (layer, server)
            )
        )

    if tdstore_servers:
        for _ in range(latency_spikes):
            _degradation_pair(
                "latency_spike", "tdstore", tdstore_servers, (spike_seconds,)
            )
        for _ in range(error_rates):
            _degradation_pair(
                "error_rate", "tdstore", tdstore_servers, (error_every,)
            )
    if tdaccess_servers:
        for _ in range(brownouts):
            _degradation_pair("brownout", "tdaccess", tdaccess_servers, ())
    for _ in range(master_failovers):
        plan.append(Fault(_round(1, horizon), "failover_tdaccess_master"))
    for _ in range(duplicate_deliveries):
        plan.append(
            Fault(
                _round(1, horizon),
                "duplicate_delivery",
                (consumer_name, rewind_depth),
            )
        )
    if kill_components:
        for _ in range(midtree_kills):
            component, parallelism = kill_components[
                int(rng.integers(0, len(kill_components)))
            ]
            task_index = int(rng.integers(0, parallelism))
            plan.append(
                Fault(
                    _round(1, horizon),
                    "worker_kill_midtree",
                    (component, task_index, midtree_after, rewind_depth),
                )
            )
    for _ in range(process_crashes):
        plan.append(Fault(_round(horizon // 2, horizon), "crash_process"))
    return sorted(plan, key=lambda fault: fault.round)
