"""Fault injection for the checkpoint/recovery subsystem.

The injector is a chaos driver wired into the same quiescent barrier the
checkpoint coordinator uses: at the end of each scheduling round it fires
every fault whose round has come. Faults cover all three layers of the
deployment — Storm task kills, TDStore data-server crashes/recoveries,
TDAccess server crashes and master failovers — plus ``crash_process``,
which raises :class:`~repro.errors.SimulatedCrash` to model the whole
computation process dying (taking Storm task state and the memory-based
TDStore with it; only the TDAccess logs and the checkpoint store
survive).

Plans are either scripted (an explicit list of :class:`Fault`) or
generated deterministically from a seed with :func:`seeded_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import FaultPlanError, SimulatedCrash
from repro.utils.rng import SeedSequenceFactory

if TYPE_CHECKING:
    from repro.storm.cluster import LocalCluster
    from repro.tdaccess.cluster import TDAccessCluster
    from repro.tdstore.cluster import TDStoreCluster

KINDS = frozenset(
    {
        "kill_task",
        "crash_tdstore",
        "recover_tdstore",
        "crash_tdaccess_server",
        "recover_tdaccess_server",
        "failover_tdaccess_master",
        "crash_process",
    }
)


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    ``round`` is the barrier round at (or after) which the fault fires.
    ``target`` depends on the kind: ``(component, task_index)`` for
    ``kill_task``, ``(server_id,)`` for the TDStore/TDAccess server
    kinds, and empty for master failover and process crash.
    """

    round: int
    kind: str
    target: tuple = ()

    def __post_init__(self):
        if self.kind not in KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(KINDS)}"
            )
        if self.round < 1:
            raise FaultPlanError(
                f"fault rounds start at 1 (first barrier): {self.round}"
            )


class FaultInjector:
    """Fires a fault plan against a live deployment at barrier points.

    Attach with :meth:`attach`; every fired fault is appended to
    :attr:`injected` so tests and the harness can assert what actually
    happened. The plan cursor survives a detach/re-attach, which is how a
    plan keeps going across a process crash and recovery: faults already
    fired are not replayed against the recovered deployment.
    """

    def __init__(
        self,
        plan: list[Fault],
        *,
        storm: "LocalCluster | None" = None,
        topology: str | None = None,
        tdstore: "TDStoreCluster | None" = None,
        tdaccess: "TDAccessCluster | None" = None,
    ):
        self._plan = sorted(plan, key=lambda fault: fault.round)
        self._cursor = 0
        self.injected: list[Fault] = []
        self._storm = storm
        self._topology = topology
        self._tdstore = tdstore
        self._tdaccess = tdaccess
        self._attached_to: "LocalCluster | None" = None

    # -- wiring -----------------------------------------------------------

    def rewire(
        self,
        *,
        storm: "LocalCluster | None" = None,
        topology: str | None = None,
        tdstore: "TDStoreCluster | None" = None,
        tdaccess: "TDAccessCluster | None" = None,
    ):
        """Point the injector at a rebuilt deployment after recovery."""
        if storm is not None:
            self._storm = storm
        if topology is not None:
            self._topology = topology
        if tdstore is not None:
            self._tdstore = tdstore
        if tdaccess is not None:
            self._tdaccess = tdaccess

    def attach(self, cluster: "LocalCluster"):
        self.detach()
        self._storm = cluster
        cluster.add_barrier_hook(self.on_barrier)
        self._attached_to = cluster

    def detach(self):
        if self._attached_to is not None:
            self._attached_to.remove_barrier_hook(self.on_barrier)
            self._attached_to = None

    # -- firing -----------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._plan)

    @property
    def remaining(self) -> list[Fault]:
        return self._plan[self._cursor :]

    def on_barrier(self, barrier_round: int):
        while (
            self._cursor < len(self._plan)
            and self._plan[self._cursor].round <= barrier_round
        ):
            fault = self._plan[self._cursor]
            self._cursor += 1
            self._fire(fault)

    def _fire(self, fault: Fault):
        self.injected.append(fault)
        if fault.kind == "kill_task":
            component, task_index = fault.target
            self._storm.kill_task(self._topology, component, task_index)
        elif fault.kind == "crash_tdstore":
            self._tdstore.crash_data_server(fault.target[0])
        elif fault.kind == "recover_tdstore":
            self._tdstore.recover_data_server(fault.target[0])
        elif fault.kind == "crash_tdaccess_server":
            self._tdaccess.crash_data_server(fault.target[0])
        elif fault.kind == "recover_tdaccess_server":
            self._tdaccess.recover_data_server(fault.target[0])
        elif fault.kind == "failover_tdaccess_master":
            self._tdaccess.failover_master()
        elif fault.kind == "crash_process":
            raise SimulatedCrash(
                f"fault plan crashed the computation process at round "
                f"{fault.round}"
            )


def seeded_plan(
    seed: int,
    *,
    horizon: int,
    kill_components: list[tuple[str, int]] | None = None,
    tdstore_servers: list[int] | None = None,
    tdaccess_servers: list[int] | None = None,
    task_kills: int = 2,
    tdstore_crashes: int = 1,
    tdaccess_crashes: int = 0,
    master_failovers: int = 0,
    process_crashes: int = 1,
) -> list[Fault]:
    """Generate a deterministic fault plan from ``seed``.

    ``horizon`` is the number of barrier rounds the run is expected to
    last; faults are scheduled inside it. ``kill_components`` lists
    ``(component, parallelism)`` choices for task kills. Server crashes
    are paired with a recovery a few rounds later so at most one replica
    of anything is down at a time. Process crashes are placed in the
    second half of the horizon so checkpoints exist to recover from.
    """
    if horizon < 4:
        raise FaultPlanError(f"horizon too short to schedule faults: {horizon}")
    rng = SeedSequenceFactory(seed).generator("fault-plan")
    plan: list[Fault] = []

    def _round(lo: int, hi: int) -> int:
        return int(rng.integers(lo, max(lo + 1, hi)))

    if kill_components:
        for _ in range(task_kills):
            component, parallelism = kill_components[
                int(rng.integers(0, len(kill_components)))
            ]
            task_index = int(rng.integers(0, parallelism))
            plan.append(
                Fault(_round(1, horizon), "kill_task", (component, task_index))
            )
    if tdstore_servers:
        for _ in range(tdstore_crashes):
            server = tdstore_servers[int(rng.integers(0, len(tdstore_servers)))]
            crash_at = _round(1, horizon - 2)
            plan.append(Fault(crash_at, "crash_tdstore", (server,)))
            plan.append(
                Fault(
                    crash_at + _round(1, 3), "recover_tdstore", (server,)
                )
            )
    if tdaccess_servers:
        for _ in range(tdaccess_crashes):
            server = tdaccess_servers[
                int(rng.integers(0, len(tdaccess_servers)))
            ]
            crash_at = _round(1, horizon - 2)
            plan.append(Fault(crash_at, "crash_tdaccess_server", (server,)))
            plan.append(
                Fault(
                    crash_at + _round(1, 3),
                    "recover_tdaccess_server",
                    (server,),
                )
            )
    for _ in range(master_failovers):
        plan.append(Fault(_round(1, horizon), "failover_tdaccess_master"))
    for _ in range(process_crashes):
        plan.append(Fault(_round(horizon // 2, horizon), "crash_process"))
    return sorted(plan, key=lambda fault: fault.round)
