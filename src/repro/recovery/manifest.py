"""Versioned checkpoint manifests and the store that seals them.

A checkpoint manifest is the unit of coordinated recovery: one
atomically captured, self-describing record of everything a restarted
deployment needs — the simulated clock, the tick schedule, every
TDAccess consumer offset, every stateful bolt's process-local state, and
the full contents of every TDStore data instance. Manifests are sealed
by pickling at save time, so later in-place mutation of the live objects
they were captured from can never corrupt a checkpoint, and fingerprints
are verified at load time so a corrupted manifest is rejected instead of
silently restoring garbage.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field
from typing import Any

from repro.errors import CheckpointError

MANIFEST_FORMAT_VERSION = 1

_FILE_PREFIX = "checkpoint-"
_FILE_SUFFIX = ".ckpt"


@dataclass(frozen=True)
class CheckpointManifest:
    """One consistent, whole-system checkpoint.

    Attributes
    ----------
    checkpoint_id:
        Monotonic sequence number assigned by the store.
    topology:
        Name of the checkpointed topology (restore validates the shape).
    clock_time:
        Simulated time at the barrier; recovery re-advances a fresh
        clock to this instant.
    next_tick:
        The cluster's next scheduled tick, or None when not ticking;
        restoring it keeps combiner flushes phase-aligned with the
        original run.
    barrier_round:
        Scheduling round at which the barrier fired (diagnostics).
    offsets:
        consumer name -> {partition -> next offset to read}. Replay
        starts here, so incremental counts rebuild to exactly the
        pre-crash values.
    bolt_states:
        (component, task_index) -> state dict for every task whose
        ``snapshot_state`` returned one.
    tdstore_contents:
        data instance -> full key/value snapshot.
    route_epoch:
        TDStore route-table version at the barrier. A recovered client
        fleet starts from the rebuilt table, but diagnostics (and the
        elastic acceptance tests) need to know how many failovers and
        migrations the checkpointed deployment had absorbed.
    migrations_in_flight:
        Live-migration records (as dicts) whose dual-write window was
        open at the barrier. Recovery rebuilds the store from
        ``tdstore_contents`` on the restored routes, which implicitly
        aborts these — recording them makes that visible instead of
        silent.
    """

    checkpoint_id: int
    topology: str
    clock_time: float
    next_tick: float | None
    barrier_round: int
    offsets: dict[str, dict[int, int]]
    bolt_states: dict[tuple[str, int], dict]
    tdstore_contents: dict[int, dict[str, Any]]
    route_epoch: int = 0
    migrations_in_flight: tuple = ()
    format_version: int = MANIFEST_FORMAT_VERSION

    def replay_span(self, head_offsets: dict[str, dict[int, int]]) -> int:
        """Messages between this checkpoint and ``head_offsets`` (same
        shape as :attr:`offsets`) — the replay cost of recovering here."""
        span = 0
        for name, partitions in self.offsets.items():
            for partition, offset in partitions.items():
                head = head_offsets.get(name, {}).get(partition, offset)
                span += max(0, head - offset)
        return span


def _fingerprint(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


class CheckpointStore:
    """Holds sealed checkpoint manifests, in memory and optionally on disk.

    Parameters
    ----------
    directory:
        When set, every manifest is also written to
        ``checkpoint-<id>.ckpt`` under this directory, and manifests
        already present there are loaded at construction — which is how
        checkpoints survive a whole-process restart.
    keep:
        When set, only the newest ``keep`` checkpoints are retained;
        older ones are pruned from memory and disk.
    """

    def __init__(self, directory: str | None = None, keep: int | None = None):
        if keep is not None and keep < 1:
            raise CheckpointError(f"keep must be >= 1: {keep}")
        self._directory = directory
        self._keep = keep
        self._sealed: dict[int, tuple[str, bytes]] = {}
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._load_directory()

    def _load_directory(self):
        for name in sorted(os.listdir(self._directory)):
            if not (name.startswith(_FILE_PREFIX) and name.endswith(_FILE_SUFFIX)):
                continue
            path = os.path.join(self._directory, name)
            with open(path, "rb") as handle:
                record = pickle.load(handle)
            checkpoint_id = record["checkpoint_id"]
            self._sealed[checkpoint_id] = (record["fingerprint"], record["payload"])

    def _path(self, checkpoint_id: int) -> str:
        return os.path.join(
            self._directory, f"{_FILE_PREFIX}{checkpoint_id:06d}{_FILE_SUFFIX}"
        )

    # -- write side -------------------------------------------------------

    def next_checkpoint_id(self) -> int:
        return max(self._sealed, default=-1) + 1

    def save(self, manifest: CheckpointManifest) -> CheckpointManifest:
        """Seal ``manifest`` (deep-copy via pickle) and retain it."""
        if manifest.checkpoint_id in self._sealed:
            raise CheckpointError(
                f"checkpoint id {manifest.checkpoint_id} already saved"
            )
        payload = pickle.dumps(manifest)
        fingerprint = _fingerprint(payload)
        self._sealed[manifest.checkpoint_id] = (fingerprint, payload)
        if self._directory is not None:
            record = {
                "checkpoint_id": manifest.checkpoint_id,
                "fingerprint": fingerprint,
                "payload": payload,
            }
            with open(self._path(manifest.checkpoint_id), "wb") as handle:
                pickle.dump(record, handle)
        self._prune()
        return manifest

    def _prune(self):
        if self._keep is None:
            return
        while len(self._sealed) > self._keep:
            oldest = min(self._sealed)
            del self._sealed[oldest]
            if self._directory is not None:
                path = self._path(oldest)
                if os.path.exists(path):
                    os.remove(path)

    # -- read side --------------------------------------------------------

    def checkpoint_ids(self) -> list[int]:
        return sorted(self._sealed)

    def __len__(self) -> int:
        return len(self._sealed)

    def load(self, checkpoint_id: int) -> CheckpointManifest:
        """Unseal one manifest; a fingerprint mismatch means corruption."""
        try:
            fingerprint, payload = self._sealed[checkpoint_id]
        except KeyError:
            raise CheckpointError(
                f"no checkpoint {checkpoint_id}; have {self.checkpoint_ids()}"
            ) from None
        if _fingerprint(payload) != fingerprint:
            raise CheckpointError(
                f"checkpoint {checkpoint_id} failed fingerprint verification"
            )
        manifest = pickle.loads(payload)
        if manifest.format_version != MANIFEST_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {checkpoint_id} has format version "
                f"{manifest.format_version}; this build reads "
                f"{MANIFEST_FORMAT_VERSION}"
            )
        return manifest

    def latest(self) -> CheckpointManifest | None:
        if not self._sealed:
            return None
        return self.load(max(self._sealed))

    def sealed_size(self, checkpoint_id: int) -> int:
        """Serialized byte size of one checkpoint (benchmark metric)."""
        try:
            return len(self._sealed[checkpoint_id][1])
        except KeyError:
            raise CheckpointError(f"no checkpoint {checkpoint_id}") from None

    def corrupt(self, checkpoint_id: int):
        """Flip a byte of a sealed payload (test hook for verification)."""
        fingerprint, payload = self._sealed[checkpoint_id]
        mutated = bytes([payload[0] ^ 0xFF]) + payload[1:]
        self._sealed[checkpoint_id] = (fingerprint, mutated)
