"""The checkpoint coordinator.

Checkpoints piggyback on the cluster's barrier hook: ``LocalCluster``
invokes the coordinator at the end of every scheduling round, *after*
draining to quiescence. At that instant no tuple is in flight anywhere in
the topology, so system state is a pure function of the source offsets
already consumed — capturing offsets, bolt state, and TDStore contents
together yields a globally consistent cut without any Chandy–Lamport
marker machinery. This is the simulated equivalent of an aligned
checkpoint barrier flowing through the dataflow graph.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import CheckpointError
from repro.recovery.manifest import CheckpointManifest, CheckpointStore

if TYPE_CHECKING:  # wiring is duck-typed; imports only for annotations
    from repro.storm.cluster import LocalCluster
    from repro.tdaccess.consumer import Consumer
    from repro.tdstore.cluster import TDStoreCluster
    from repro.utils.clock import SimClock


class CheckpointCoordinator:
    """Captures coordinated checkpoints of one running deployment.

    Parameters
    ----------
    store:
        Destination :class:`CheckpointStore`.
    cluster:
        The :class:`LocalCluster` running the topology.
    topology:
        Name of the topology to checkpoint.
    tdstore:
        The :class:`TDStoreCluster` holding recommendation state.
    consumers:
        name -> :class:`Consumer`; names are stable identifiers that let
        recovery match saved offsets back to rebuilt consumers.
    clock:
        The deployment's :class:`SimClock`.
    every_rounds:
        Take a checkpoint every N barrier rounds.
    interval_seconds:
        Take a checkpoint when at least this much simulated time has
        passed since the previous one. Either policy (or both, or
        neither for manual-only checkpointing) may be set.
    """

    def __init__(
        self,
        store: CheckpointStore,
        cluster: "LocalCluster",
        topology: str,
        tdstore: "TDStoreCluster",
        consumers: "dict[str, Consumer]",
        clock: "SimClock",
        every_rounds: int | None = None,
        interval_seconds: float | None = None,
    ):
        if every_rounds is not None and every_rounds <= 0:
            raise CheckpointError(f"every_rounds must be positive: {every_rounds}")
        if interval_seconds is not None and interval_seconds <= 0:
            raise CheckpointError(
                f"interval_seconds must be positive: {interval_seconds}"
            )
        self._store = store
        self._cluster = cluster
        self._topology = topology
        self._tdstore = tdstore
        self._consumers = consumers
        self._clock = clock
        self._every_rounds = every_rounds
        self._interval_seconds = interval_seconds
        self._attached = False
        self.checkpoints_taken = 0
        self.last_checkpoint_time: float | None = None
        self.last_checkpoint_id: int | None = None

    # -- barrier wiring ---------------------------------------------------

    def attach(self):
        if not self._attached:
            self._cluster.add_barrier_hook(self._on_barrier)
            self._attached = True

    def detach(self):
        if self._attached:
            self._cluster.remove_barrier_hook(self._on_barrier)
            self._attached = False

    def _on_barrier(self, barrier_round: int):
        if self._due(barrier_round):
            self.checkpoint(barrier_round)

    def _due(self, barrier_round: int) -> bool:
        if self._every_rounds is not None and (
            barrier_round % self._every_rounds == 0
        ):
            return True
        if self._interval_seconds is not None:
            last = self.last_checkpoint_time
            reference = last if last is not None else 0.0
            if self._clock.now() - reference >= self._interval_seconds:
                return True
        return False

    # -- capture ----------------------------------------------------------

    def checkpoint(self, barrier_round: int | None = None) -> CheckpointManifest:
        """Capture one coordinated checkpoint right now.

        Callers outside a barrier hook must only call this while the
        topology is quiescent (between ``step()`` calls); mid-drain the
        cut would not be consistent.
        """
        if barrier_round is None:
            barrier_round = self._cluster.barrier_rounds
        manifest = CheckpointManifest(
            checkpoint_id=self._store.next_checkpoint_id(),
            topology=self._topology,
            clock_time=self._clock.now(),
            next_tick=self._cluster.next_tick,
            barrier_round=barrier_round,
            offsets={
                name: consumer.positions()
                for name, consumer in self._consumers.items()
            },
            bolt_states=self._cluster.capture_component_states(self._topology),
            tdstore_contents=self._tdstore.snapshot_contents(),
            route_epoch=self._tdstore.config.route_epoch,
            migrations_in_flight=tuple(
                self._tdstore.config.in_flight_migrations()
            ),
        )
        self._store.save(manifest)
        self.checkpoints_taken += 1
        self.last_checkpoint_time = manifest.clock_time
        self.last_checkpoint_id = manifest.checkpoint_id
        return manifest

    # -- monitoring surface ----------------------------------------------

    def checkpoint_age(self, now: float | None = None) -> float | None:
        """Simulated seconds since the last checkpoint; None if never."""
        if self.last_checkpoint_time is None:
            return None
        if now is None:
            now = self._clock.now()
        return max(0.0, now - self.last_checkpoint_time)
