"""End-to-end crash/recovery harness.

Wires the full TencentRec stack the way Figure 6 does — TDAccess topic in
front, a Storm topology computing, TDStore holding state — then runs it
under checkpointing and fault injection. A ``crash_process`` fault kills
the whole computation layer: the Storm tasks and the memory-based
TDStore are discarded, exactly the state a process crash would lose,
while the TDAccess cluster (disk-backed logs) and the checkpoint store
survive. :meth:`recover` rebuilds a fresh stack, restores the latest
checkpoint into it, and resuming the run replays the log suffix.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import RecoveryError, SimulatedCrash
from repro.recovery.coordinator import CheckpointCoordinator
from repro.recovery.faults import Fault, FaultInjector
from repro.recovery.manifest import CheckpointStore
from repro.recovery.recovery import RecoveryManager, RecoveryReport
from repro.runtime.substrate import SimSubstrate, Substrate
from repro.storm.cluster import LocalCluster
from repro.storm.topology import Topology
from repro.tdaccess.cluster import TDAccessCluster
from repro.tdaccess.consumer import Consumer
from repro.tdstore.client import TDStoreClient
from repro.tdstore.cluster import TDStoreCluster
from repro.utils.clock import SimClock

# TopologyFactory(clock, client_factory, consumer) -> Topology
TopologyFactory = Callable[
    [SimClock, Callable[[], TDStoreClient], Consumer], Topology
]

CONSUMER_NAME = "source"


class _Stack:
    """One computation deployment: everything a process crash destroys."""

    def __init__(
        self,
        clock: SimClock,
        tdstore: TDStoreCluster,
        consumer: Consumer,
        topology: Topology,
        cluster: LocalCluster,
        coordinator: CheckpointCoordinator,
    ):
        self.clock = clock
        self.tdstore = tdstore
        self.consumer = consumer
        self.topology = topology
        self.cluster = cluster
        self.coordinator = coordinator


class RecoveryHarness:
    """Runs a topology over a TDAccess topic with checkpoints and faults.

    Parameters
    ----------
    tdaccess:
        The (crash-surviving) TDAccess cluster holding the source topic.
    topic:
        Topic the topology consumes.
    topology_factory:
        Builds the topology for a given deployment; called once per
        (re)build with ``(clock, client_factory, consumer)``. It must be
        deterministic: recovery rebuilds the same shape.
    num_tdstore_servers / num_tdstore_instances:
        Shape of the (crash-losing, memory-based) TDStore deployment.
    tick_interval:
        Forwarded to :class:`LocalCluster` (combiner flush cadence).
    checkpoint_every_rounds / checkpoint_interval_seconds:
        Checkpoint policy, forwarded to :class:`CheckpointCoordinator`.
    store:
        Checkpoint destination; defaults to a fresh in-memory store.
    allow_truncated_replay:
        Forwarded to :class:`RecoveryManager`.
    substrate:
        Where the stack executes: :class:`SimSubstrate` (default, the
        in-process simulator) or a
        :class:`~repro.runtime.substrate.ProcessSubstrate` deploying
        TDStore server hosts and Storm workers as real OS processes.
        On the process substrate the topology factory must carry a
        recipe (build it with
        :func:`repro.runtime.recipes.topology_recipe`).
    """

    def __init__(
        self,
        tdaccess: TDAccessCluster,
        topic: str,
        topology_factory: TopologyFactory,
        *,
        num_tdstore_servers: int = 3,
        num_tdstore_instances: int = 16,
        tick_interval: float | None = None,
        checkpoint_every_rounds: int | None = None,
        checkpoint_interval_seconds: float | None = None,
        store: CheckpointStore | None = None,
        allow_truncated_replay: bool = False,
        substrate: Substrate | None = None,
    ):
        self._tdaccess = tdaccess
        self.substrate = substrate if substrate is not None else SimSubstrate()
        self._topic = topic
        self._topology_factory = topology_factory
        self._num_tdstore_servers = num_tdstore_servers
        self._num_tdstore_instances = num_tdstore_instances
        self._tick_interval = tick_interval
        self._every_rounds = checkpoint_every_rounds
        self._interval_seconds = checkpoint_interval_seconds
        self.store = store if store is not None else CheckpointStore()
        self.recovery = RecoveryManager(
            self.store, allow_truncated_replay=allow_truncated_replay
        )
        self.injector: FaultInjector | None = None
        self.crashes = 0
        self.checkpoints_taken = 0
        self._stack: _Stack | None = None

    # -- deployment lifecycle --------------------------------------------

    def start(self, fault_plan: "list[Fault] | None" = None):
        """Build the initial deployment, optionally under a fault plan."""
        if fault_plan is not None:
            self.injector = FaultInjector(fault_plan, tdaccess=self._tdaccess)
        self._stack = self._build_stack()

    def _build_stack(self) -> _Stack:
        clock = SimClock()
        tdstore = self.substrate.build_tdstore(
            self._num_tdstore_servers, self._num_tdstore_instances
        )
        consumer = self._tdaccess.consumer(self._topic)
        topology = self._topology_factory(clock, tdstore.client, consumer)
        cluster = self.substrate.build_storm(
            clock, tick_interval=self._tick_interval
        )
        cluster.submit(topology)
        coordinator = CheckpointCoordinator(
            self.store,
            cluster,
            topology.name,
            tdstore,
            {CONSUMER_NAME: consumer},
            clock,
            every_rounds=self._every_rounds,
            interval_seconds=self._interval_seconds,
        )
        coordinator.attach()
        if self.injector is not None:
            self.injector.rewire(
                topology=topology.name,
                tdstore=tdstore,
                tdaccess=self._tdaccess,
                consumers={CONSUMER_NAME: consumer},
                runtime=self.substrate.chaos_runtime(),
            )
            self.injector.attach(cluster)
        return _Stack(clock, tdstore, consumer, topology, cluster, coordinator)

    def _require_stack(self) -> _Stack:
        if self._stack is None:
            raise RecoveryError(
                "no deployment; call start() (or recover() after a crash)"
            )
        return self._stack

    # -- running ----------------------------------------------------------

    def run(self) -> str:
        """Run until the stream is exhausted or a process crash fires.

        Returns ``"completed"`` or ``"crashed"``. After a crash the old
        deployment is gone; call :meth:`recover` to rebuild.
        """
        stack = self._require_stack()
        try:
            stack.cluster.run_until_idle()
        except SimulatedCrash:
            self.crashes += 1
            self.checkpoints_taken += stack.coordinator.checkpoints_taken
            self._stack = None  # computation layer is dead
            if self.injector is not None:
                self.injector.detach()
            return "crashed"
        if self.recovery.in_progress:
            self.recovery.replay_complete(stack.clock.now())
        return "completed"

    def recover(self) -> RecoveryReport | None:
        """Rebuild a fresh deployment and restore the latest checkpoint.

        With no checkpoint yet (crash before the first barrier), the
        rebuilt deployment simply starts cold from offset zero — the log
        itself is the recovery mechanism — and None is returned.
        """
        stack = self._build_stack()
        self._stack = stack
        if len(self.store) == 0:
            return None
        return self.recovery.restore_latest(
            cluster=stack.cluster,
            topology=stack.topology.name,
            tdstore=stack.tdstore,
            consumers={CONSUMER_NAME: stack.consumer},
            clock=stack.clock,
        )

    def run_to_completion(self, max_crashes: int = 8) -> dict:
        """Run, recovering through crashes, until the stream completes."""
        if self._stack is None:
            self.start()
        reports: list[RecoveryReport | None] = []
        while True:
            status = self.run()
            if status == "completed":
                break
            if self.crashes > max_crashes:
                raise RecoveryError(
                    f"gave up after {self.crashes} crashes (max {max_crashes})"
                )
            reports.append(self.recover())
        stack = self._require_stack()
        return {
            "crashes": self.crashes,
            "recoveries": self.recovery.recoveries,
            "checkpoints": self.checkpoints_taken
            + stack.coordinator.checkpoints_taken,
            "reports": reports,
            "clock_time": stack.clock.now(),
        }

    # -- live deployment access ------------------------------------------

    @property
    def clock(self) -> SimClock:
        return self._require_stack().clock

    @property
    def cluster(self) -> LocalCluster:
        return self._require_stack().cluster

    @property
    def tdstore(self) -> TDStoreCluster:
        return self._require_stack().tdstore

    @property
    def tdaccess(self) -> TDAccessCluster:
        return self._tdaccess

    @property
    def consumer(self) -> Consumer:
        return self._require_stack().consumer

    @property
    def coordinator(self) -> CheckpointCoordinator:
        return self._require_stack().coordinator

    @property
    def topology_name(self) -> str:
        return self._require_stack().topology.name

    def client(self) -> TDStoreClient:
        return self._require_stack().tdstore.client()
