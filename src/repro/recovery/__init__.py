"""Coordinated checkpoint/recovery for the TencentRec reproduction.

The paper's availability story (Sections 3.2–3.3) leans on three pieces:
TDAccess retains the raw streams on disk, TDStore replicates state, and
Storm restarts failed workers. What production systems add on top — and
what this package reproduces — is the coordination: periodic consistent
checkpoints of the whole deployment (bolt state + TDStore contents +
consumer offsets), recovery that restores the newest checkpoint and
replays the log suffix so incremental counts rebuild exactly, and a
fault-injection harness to prove it under scripted or seeded chaos.
"""

from repro.recovery.coordinator import CheckpointCoordinator
from repro.recovery.faults import (
    BROWNOUT_ERROR_EVERY,
    BROWNOUT_LATENCY,
    LAYERS,
    Fault,
    FaultInjector,
    seeded_plan,
)
from repro.recovery.harness import CONSUMER_NAME, RecoveryHarness
from repro.recovery.manifest import (
    MANIFEST_FORMAT_VERSION,
    CheckpointManifest,
    CheckpointStore,
)
from repro.recovery.recovery import RecoveryManager, RecoveryReport

__all__ = [
    "BROWNOUT_ERROR_EVERY",
    "BROWNOUT_LATENCY",
    "CONSUMER_NAME",
    "LAYERS",
    "MANIFEST_FORMAT_VERSION",
    "CheckpointCoordinator",
    "CheckpointManifest",
    "CheckpointStore",
    "Fault",
    "FaultInjector",
    "RecoveryHarness",
    "RecoveryManager",
    "RecoveryReport",
    "seeded_plan",
]
