"""Restoring a deployment from its latest consistent checkpoint.

Recovery mirrors what the checkpoint captured, in dependency order:
re-advance the clock, adopt TDStore contents, reinstall bolt state,
realign the tick schedule, and seek every consumer back to its saved
offsets. The TDAccess partition logs (which survive the crash on disk)
then replay everything after the checkpoint through the normal topology
path, so the incremental ItemCF counts (Eq 6–8) and CTR statistics
rebuild to exactly the values an uninterrupted run would have produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import RecoveryError
from repro.recovery.manifest import CheckpointManifest, CheckpointStore

if TYPE_CHECKING:
    from repro.storm.cluster import LocalCluster
    from repro.tdaccess.consumer import Consumer
    from repro.tdstore.cluster import TDStoreCluster
    from repro.utils.clock import SimClock


@dataclass(frozen=True)
class RecoveryReport:
    """What one restore did: where it resumed and what it must replay."""

    checkpoint_id: int
    checkpoint_time: float
    resumed_offsets: dict[str, dict[int, int]]
    replay_backlog: int
    truncated_messages: int

    @property
    def truncated(self) -> bool:
        return self.truncated_messages > 0


class RecoveryManager:
    """Restores checkpoints and tracks recovery status for monitoring.

    Parameters
    ----------
    store:
        The :class:`CheckpointStore` to restore from.
    allow_truncated_replay:
        When the saved offsets predate the logs' retention horizon, a
        strict manager (the default) raises :class:`RecoveryError` —
        replaying from the earliest retained offset would silently drop
        acknowledged history. With this flag, recovery instead reseeks to
        the earliest available offset and reports how many messages were
        lost to truncation.
    """

    def __init__(
        self, store: CheckpointStore, allow_truncated_replay: bool = False
    ):
        self._store = store
        self.allow_truncated_replay = allow_truncated_replay
        self.recoveries = 0
        self.in_progress = False
        self.last_report: RecoveryReport | None = None
        self.last_recovery_duration: float | None = None
        self._replay_started_at: float | None = None

    @property
    def store(self) -> CheckpointStore:
        return self._store

    def latest_checkpoint(self) -> CheckpointManifest:
        manifest = self._store.latest()
        if manifest is None:
            raise RecoveryError("no checkpoint to restore from")
        return manifest

    def restore_latest(self, **deployment) -> RecoveryReport:
        """Restore the most recent checkpoint; see :meth:`restore`."""
        return self.restore(self.latest_checkpoint(), **deployment)

    def restore(
        self,
        manifest: CheckpointManifest,
        *,
        cluster: "LocalCluster",
        topology: str,
        tdstore: "TDStoreCluster",
        consumers: "dict[str, Consumer]",
        clock: "SimClock",
    ) -> RecoveryReport:
        """Install ``manifest`` into a freshly built deployment.

        The deployment must have the same topology shape and consumer
        names as the checkpointed one; after this returns, running the
        cluster replays the log suffix and converges on the pre-crash
        state. ``in_progress`` stays True until :meth:`replay_complete`
        is called (the harness does this when the replay catches up), so
        the serving layer can degrade during the window.
        """
        if manifest.topology != topology:
            raise RecoveryError(
                f"checkpoint is for topology {manifest.topology!r}, "
                f"not {topology!r}"
            )
        clock.advance_to(manifest.clock_time)
        tdstore.restore_contents(manifest.tdstore_contents)
        cluster.restore_component_states(topology, manifest.bolt_states)
        if manifest.next_tick is not None:
            cluster.set_next_tick(manifest.next_tick)
        resumed, truncated = self._seek_consumers(manifest, consumers)
        backlog = sum(consumers[name].lag() for name in resumed)
        report = RecoveryReport(
            checkpoint_id=manifest.checkpoint_id,
            checkpoint_time=manifest.clock_time,
            resumed_offsets=resumed,
            replay_backlog=backlog,
            truncated_messages=truncated,
        )
        self.recoveries += 1
        self.in_progress = True
        self._replay_started_at = manifest.clock_time
        self.last_report = report
        return report

    def _seek_consumers(
        self,
        manifest: CheckpointManifest,
        consumers: "dict[str, Consumer]",
    ) -> tuple[dict[str, dict[int, int]], int]:
        resumed: dict[str, dict[int, int]] = {}
        truncated = 0
        for name, saved in manifest.offsets.items():
            consumer = consumers.get(name)
            if consumer is None:
                raise RecoveryError(
                    f"checkpoint names consumer {name!r} but the rebuilt "
                    f"deployment only has {sorted(consumers)}"
                )
            adjusted: dict[int, int] = {}
            for partition, offset in saved.items():
                earliest = consumer.earliest(partition)
                if earliest is not None and offset < earliest:
                    if not self.allow_truncated_replay:
                        raise RecoveryError(
                            f"checkpoint {manifest.checkpoint_id} needs "
                            f"{consumer.topic}[{partition}] from offset "
                            f"{offset} but retention starts at {earliest}; "
                            "pass allow_truncated_replay=True to resume "
                            "with data loss"
                        )
                    truncated += earliest - offset
                    offset = earliest
                adjusted[partition] = offset
            consumer.seek_all(adjusted)
            resumed[name] = adjusted
        return resumed, truncated

    def replay_complete(self, now: float):
        """Mark the post-restore replay as caught up (ends degradation)."""
        if self.in_progress and self._replay_started_at is not None:
            self.last_recovery_duration = max(
                0.0, now - self._replay_started_at
            )
        self.in_progress = False
        self._replay_started_at = None
