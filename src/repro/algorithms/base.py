"""The common recommender interface.

Every algorithm — streaming or periodic, CF or CB or CTR — exposes the
same two operations so the A/B evaluation harness (Section 6.2) can swap
engines per user cohort without caring what is inside.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.types import Recommendation, UserAction


class Recommender(ABC):
    """Observe a stream of user actions; answer top-N queries."""

    @abstractmethod
    def observe(self, action: UserAction):
        """Ingest one user-action event."""

    @abstractmethod
    def recommend(
        self,
        user_id: str,
        n: int,
        now: float,
        context: dict[str, Any] | None = None,
    ) -> list[Recommendation]:
        """Return up to ``n`` recommendations for ``user_id`` at time ``now``.

        ``context`` carries query-time situation (e.g. the ad slot or the
        commodity being browsed) for algorithms that use it.
        """

    def observe_many(self, actions: list[UserAction]):
        """Convenience bulk ingest."""
        for action in actions:
            self.observe(action)
