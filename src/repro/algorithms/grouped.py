"""Demographic-clustered CF (the first mechanism of Section 4.2).

"We cluster users into different demographic groups ... the user-item
matrix of a demographic group is obviously less sparse than the global
user-item matrix. To run the recommendation algorithms in the
demographic user groups, we will get a more refined model and produce
more accurate results." — each demographic group gets its own
:class:`~repro.algorithms.itemcf.PracticalItemCF`, plus a global model
as fallback for anonymous users and thin groups.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.algorithms.base import Recommender
from repro.algorithms.demographic import GLOBAL_GROUP, DemographicScheme
from repro.algorithms.itemcf import PracticalItemCF
from repro.algorithms.ratings import ActionWeights, DEFAULT_ACTION_WEIGHTS
from repro.types import Recommendation, UserAction, UserProfile
from repro.utils.clock import SECONDS_PER_HOUR

ProfileLookup = Callable[[str], "UserProfile | None"]


class GroupedItemCF(Recommender):
    """One practical item-based CF model per demographic group.

    Events update both the user's group model and the global model (the
    multi-hash pattern of Section 5.4 makes exactly this double-count
    cheap in the distributed setting). Queries go to the group model
    first and fall back to the global model when the group's signal is
    too thin to fill the slate.
    """

    def __init__(
        self,
        profiles: ProfileLookup,
        scheme: DemographicScheme | None = None,
        weights: ActionWeights = DEFAULT_ACTION_WEIGHTS,
        k: int = 20,
        linked_time: float = 6 * SECONDS_PER_HOUR,
        recent_k: int = 10,
        **cf_kwargs: Any,
    ):
        self._profiles = profiles
        self.scheme = scheme if scheme is not None else DemographicScheme()
        self._model_config = dict(
            weights=weights,
            k=k,
            linked_time=linked_time,
            recent_k=recent_k,
            **cf_kwargs,
        )
        self._models: dict[str, PracticalItemCF] = {
            GLOBAL_GROUP: PracticalItemCF(**self._model_config)
        }

    def group_of_user(self, user_id: str) -> str:
        return self.scheme.group_of(self._profiles(user_id))

    def model_for(self, group: str) -> PracticalItemCF:
        model = self._models.get(group)
        if model is None:
            model = PracticalItemCF(**self._model_config)
            self._models[group] = model
        return model

    @property
    def global_model(self) -> PracticalItemCF:
        return self._models[GLOBAL_GROUP]

    def groups(self) -> list[str]:
        return sorted(self._models)

    def observe(self, action: UserAction):
        group = self.group_of_user(action.user_id)
        if group != GLOBAL_GROUP:
            self.model_for(group).observe(action)
        self.global_model.observe(action)

    def similarity(self, p: str, q: str, group: str = GLOBAL_GROUP,
                   now: float = 0.0) -> float:
        return self.model_for(group).similarity(p, q, now)

    def recommend(
        self,
        user_id: str,
        n: int,
        now: float,
        context: dict[str, Any] | None = None,
    ) -> list[Recommendation]:
        group = self.group_of_user(user_id)
        results: list[Recommendation] = []
        if group != GLOBAL_GROUP:
            results = self.model_for(group).recommend(user_id, n, now, context)
        if len(results) < n:
            have = {r.item_id for r in results}
            for rec in self.global_model.recommend(user_id, n, now, context):
                if rec.item_id not in have:
                    results.append(rec)
                    have.add(rec.item_id)
                if len(results) >= n:
                    break
        return results[:n]
