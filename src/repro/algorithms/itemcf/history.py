"""User-behaviour-history delta computation (Figure 4, layer one).

Given a user's rating history and a new action, compute the rating delta
for the acted item and the co-rating deltas for every item the user
rated within the linked time. This is the logic shared by the standalone
:class:`~repro.algorithms.itemcf.streaming.PracticalItemCF` and the
distributed ``UserHistoryBolt``: both must agree exactly, or the
topology would drift from the reference algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

History = dict[str, tuple[float, float]]  # item -> (rating, timestamp)


@dataclass
class HistoryUpdate:
    """The outcome of applying one action to a user's history.

    ``item_delta`` is Δr_up of Equation 8 (zero when the new action's
    weight does not exceed the current rating). ``pair_deltas`` holds
    (other_item, Δco-rating) for every linked item — including zero
    deltas, because Algorithm 1 still refreshes similarity and feeds the
    pruner for those pairs. ``skipped_stale`` counts items outside the
    linked time.
    """

    item: str
    old_rating: float
    new_rating: float
    item_delta: float
    pair_deltas: list[tuple[str, float]] = field(default_factory=list)
    skipped_stale: int = 0
    skipped_pruned: int = 0

    @property
    def rating_increased(self) -> bool:
        return self.item_delta > 0.0


def apply_action(
    history: History,
    item: str,
    weight: float,
    now: float,
    linked_time: float,
    pruned_partners: set[str] | None = None,
) -> HistoryUpdate:
    """Apply one action of ``weight`` on ``item`` to ``history`` in place.

    ``pruned_partners`` is the L_i of Algorithm 1: partners whose pair
    updates are skipped entirely. The history's timestamp for ``item`` is
    refreshed even when the rating does not change, so re-engagement
    extends the linked-time window.
    """
    old_rating, __ = history.get(item, (0.0, now))
    new_rating = max(old_rating, weight)
    update = HistoryUpdate(
        item=item,
        old_rating=old_rating,
        new_rating=new_rating,
        item_delta=new_rating - old_rating,
    )
    if update.rating_increased:
        for other, (other_rating, other_ts) in history.items():
            if other == item:
                continue
            if now - other_ts > linked_time:
                update.skipped_stale += 1
                continue
            if pruned_partners is not None and other in pruned_partners:
                update.skipped_pruned += 1
                continue
            old_co = min(old_rating, other_rating)
            new_co = min(new_rating, other_rating)
            update.pair_deltas.append((other, new_co - old_co))
    history[item] = (new_rating, now)
    return update
