"""Real-time pruning with the Hoeffding bound (Section 4.1.4).

Most generated item pairs never become similar enough to enter any
similar-items list, yet each would cost count updates forever. Treating
the similarity scores of a pair observed at different times as draws of
a random variable with range R = 1, the Hoeffding bound (Equation 9)

    eps = sqrt(R^2 * ln(1/delta) / (2 * n))

guarantees with probability 1 - delta that the pair's true similarity
stays below the list threshold ``t`` once ``eps < t - sim``; the pair is
then pruned bidirectionally (Algorithm 1) and all its future updates are
skipped.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.algorithms.itemcf.similarity import pair_key


def hoeffding_epsilon(n: int, delta: float, value_range: float = 1.0) -> float:
    """Equation 9. ``n`` is the number of independent observations."""
    if n <= 0:
        return math.inf
    return math.sqrt((value_range**2) * math.log(1.0 / delta) / (2.0 * n))


class HoeffdingPruner:
    """Tracks per-pair observation counts and the pruned-pair sets L_i."""

    def __init__(self, delta: float = 0.001, value_range: float = 1.0):
        if not 0.0 < delta < 1.0:
            raise ConfigurationError(f"delta must be in (0, 1): {delta}")
        if value_range <= 0.0:
            raise ConfigurationError(
                f"value_range must be positive: {value_range}"
            )
        self.delta = delta
        self.value_range = value_range
        self._updates: dict[tuple[str, str], int] = {}  # n_ij of Algorithm 1
        self._pruned: dict[str, set[str]] = {}  # L_i of Algorithm 1
        self.pruned_pairs = 0

    def is_pruned(self, p: str, q: str) -> bool:
        """Line 3 of Algorithm 1: is ``q`` in L_p?"""
        pruned = self._pruned.get(p)
        return pruned is not None and q in pruned

    def pruned_for(self, item: str) -> set[str]:
        return set(self._pruned.get(item, ()))

    def observations(self, p: str, q: str) -> int:
        return self._updates.get(pair_key(p, q), 0)

    def observe(
        self, p: str, q: str, similarity: float, threshold_p: float,
        threshold_q: float,
    ) -> bool:
        """Lines 9–17 of Algorithm 1.

        Increment n_pq, compute epsilon, and prune the pair if the bound
        shows it cannot reach the weaker of the two list thresholds.
        Returns True if the pair was pruned by this observation.
        """
        if self.is_pruned(p, q):
            return True
        key = pair_key(p, q)
        n = self._updates.get(key, 0) + 1
        self._updates[key] = n
        t = min(threshold_p, threshold_q)
        if t <= 0.0:
            return False  # a list still has room; everything can enter
        eps = hoeffding_epsilon(n, self.delta, self.value_range)
        if eps < t - similarity:
            self._pruned.setdefault(p, set()).add(q)
            self._pruned.setdefault(q, set()).add(p)
            self._updates.pop(key, None)
            self.pruned_pairs += 1
            return True
        return False

    def unprune(self, p: str, q: str):
        """Remove a pair from the pruned sets (used by tests/ablation)."""
        self._pruned.get(p, set()).discard(q)
        self._pruned.get(q, set()).discard(p)
