"""The basic (batch) item-based CF of Section 4.1.1.

Builds the full similar-items table from a ratings matrix with cosine
similarity (Equation 1) and predicts with the weighted average of
Equation 2. It recomputes from scratch on every ``fit`` — exactly the
periodic model the paper's "Original" comparators use — and doubles as
the correctness reference for the incremental algorithm's tests.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.errors import AlgorithmError
from repro.types import Recommendation

RatingsMatrix = dict[str, dict[str, float]]  # user -> {item: rating}


class BasicItemCF:
    """Batch item-based collaborative filtering.

    Parameters
    ----------
    k:
        Neighbourhood size for prediction (the ``N_k`` of Equation 2).
    min_corating:
        Similarity method: ``"cosine"`` uses Equation 1 (explicit-rating
        products); ``"min"`` uses the implicit-feedback form of Equation 4
        (min co-ratings over root itemCounts), matching the streaming
        algorithm.
    """

    def __init__(self, k: int = 20, method: str = "cosine"):
        if method not in ("cosine", "min"):
            raise AlgorithmError(f"unknown similarity method {method!r}")
        self.k = k
        self.method = method
        self._ratings: RatingsMatrix = {}
        self._similar: dict[str, list[tuple[str, float]]] = {}
        self._fitted = False

    # -- model building -------------------------------------------------------

    def fit(self, ratings: RatingsMatrix) -> "BasicItemCF":
        """Build the similar-items table from a full ratings matrix."""
        self._ratings = {u: dict(items) for u, items in ratings.items()}
        pair_scores: dict[tuple[str, str], float] = defaultdict(float)
        norms: dict[str, float] = defaultdict(float)
        for __, items in self._ratings.items():
            entries = sorted(items.items())
            for idx, (p, rating_p) in enumerate(entries):
                if self.method == "cosine":
                    norms[p] += rating_p * rating_p
                else:
                    norms[p] += rating_p
                for q, rating_q in entries[idx + 1 :]:
                    if self.method == "cosine":
                        pair_scores[(p, q)] += rating_p * rating_q
                    else:
                        pair_scores[(p, q)] += min(rating_p, rating_q)
        similar: dict[str, list[tuple[str, float]]] = defaultdict(list)
        for (p, q), score in pair_scores.items():
            denom = math.sqrt(norms[p]) * math.sqrt(norms[q])
            if denom <= 0.0:
                continue
            sim = score / denom
            if sim > 0.0:
                similar[p].append((q, sim))
                similar[q].append((p, sim))
        self._similar = {
            item: sorted(neigh, key=lambda kv: (-kv[1], kv[0]))[: self.k]
            for item, neigh in similar.items()
        }
        self._fitted = True
        return self

    def _check_fitted(self):
        if not self._fitted:
            raise AlgorithmError("call fit() before querying the model")

    # -- queries ----------------------------------------------------------------

    def similarity(self, p: str, q: str) -> float:
        self._check_fitted()
        for item, sim in self._similar.get(p, ()):
            if item == q:
                return sim
        return 0.0

    def similar_items(self, item: str, n: int | None = None) -> list[tuple[str, float]]:
        self._check_fitted()
        neighbours = self._similar.get(item, [])
        return neighbours if n is None else neighbours[:n]

    def predict(self, user_id: str, item_id: str) -> float:
        """Equation 2: weighted average of the user's ratings over N_k."""
        self._check_fitted()
        user_ratings = self._ratings.get(user_id, {})
        numerator = 0.0
        denominator = 0.0
        for neighbour, sim in self._similar.get(item_id, ()):
            rating = user_ratings.get(neighbour)
            if rating is not None:
                numerator += sim * rating
                denominator += sim
        if denominator <= 0.0:
            return 0.0
        return numerator / denominator

    def recommend(self, user_id: str, n: int = 10) -> list[Recommendation]:
        """Top-N unseen items ranked by predicted rating."""
        self._check_fitted()
        user_ratings = self._ratings.get(user_id, {})
        candidates: set[str] = set()
        for item in user_ratings:
            candidates.update(i for i, __ in self._similar.get(item, ()))
        candidates -= set(user_ratings)
        scored = [
            (self.predict(user_id, candidate), candidate)
            for candidate in candidates
        ]
        scored = [(score, item) for score, item in scored if score > 0.0]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [
            Recommendation(item, score, source="basic-cf")
            for score, item in scored[:n]
        ]
