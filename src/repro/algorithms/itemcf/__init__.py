"""The practical item-based collaborative filtering of Section 4.1.

``BasicItemCF`` is the textbook batch algorithm (Equations 1–2), kept as
a correctness reference and as the guts of the "Original" baselines.
``PracticalItemCF`` is the paper's streaming variant: implicit-feedback
co-ratings (Eq 3–4), count-decomposed incremental similarity (Eq 5–8),
Hoeffding-bound real-time pruning (Eq 9, Algorithm 1), and the sliding
window of Eq 10.
"""

from repro.algorithms.itemcf.basic import BasicItemCF
from repro.algorithms.itemcf.similarity import (
    SimilarItemsList,
    SimilarityTable,
    WindowedSimilarityTable,
    SessionWindowCounter,
)
from repro.algorithms.itemcf.pruning import HoeffdingPruner, hoeffding_epsilon
from repro.algorithms.itemcf.streaming import PracticalItemCF
from repro.algorithms.itemcf.predictor import ItemCFPredictor

__all__ = [
    "BasicItemCF",
    "SimilarItemsList",
    "SimilarityTable",
    "WindowedSimilarityTable",
    "SessionWindowCounter",
    "HoeffdingPruner",
    "hoeffding_epsilon",
    "PracticalItemCF",
    "ItemCFPredictor",
]
