"""Prediction for the streaming CF (Equation 2 + Section 4.3).

The prediction neighbourhood ``N_k`` of Equation 2 is redefined to the
user's *recent k* items (real-time personalized filtering): candidates
are gathered from the similar-items lists of the user's recent items and
scored with the weighted average of the user's ratings. When CF cannot
produce enough confident candidates, the caller supplies a complement
(the real-time DB algorithm) to fill the tail.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.algorithms.filtering import RecentItemsTracker
from repro.algorithms.itemcf.similarity import SimilarityTable
from repro.types import Recommendation

ComplementFn = Callable[[int], list[Recommendation]]


class ItemCFPredictor:
    """Scores candidates from similar-items lists against recent history."""

    def __init__(
        self,
        table: SimilarityTable,
        recent: RecentItemsTracker,
        min_similarity: float = 0.0,
    ):
        self._table = table
        self._recent = recent
        self.min_similarity = min_similarity

    def predict(
        self,
        user_id: str,
        n: int,
        now: float,
        exclude: Iterable[str] = (),
        complement: ComplementFn | None = None,
    ) -> list[Recommendation]:
        """Top-``n`` items for ``user_id``; see Equation 2.

        ``exclude`` removes already-consumed items; ``complement`` fills
        remaining slots (e.g. demographic hot items) when the CF signal is
        too weak, as Section 4.3 prescribes.
        """
        excluded = set(exclude)
        recents = self._recent.recent(user_id)
        numerator: dict[str, float] = {}
        denominator: dict[str, float] = {}
        for item, rating, __ in recents:
            for candidate, stored_sim in self._table.top_similar(item):
                if candidate in excluded:
                    continue
                # the list entry's similarity may be stale (it is only
                # rewritten when the pair is co-rated again); rescore from
                # the live counts so early-noise pairs cannot dominate
                similarity = self._table.similarity(item, candidate, now)
                if similarity <= self.min_similarity:
                    continue
                numerator[candidate] = (
                    numerator.get(candidate, 0.0) + similarity * rating
                )
                denominator[candidate] = (
                    denominator.get(candidate, 0.0) + similarity
                )
        scored = [
            (numerator[c] / denominator[c], denominator[c], c)
            for c in numerator
            if denominator[c] > 0.0
        ]
        # primary: predicted rating (Eq 2); tie-break: total similarity mass
        scored.sort(key=lambda row: (-row[0], -row[1], row[2]))
        results = [
            Recommendation(item, score, source="cf")
            for score, __, item in scored[:n]
        ]
        if len(results) < n and complement is not None:
            have = {r.item_id for r in results} | excluded
            for rec in complement(n - len(results)):
                if rec.item_id not in have:
                    results.append(rec)
                    have.add(rec.item_id)
                if len(results) >= n:
                    break
        return results
