"""Similarity state: item counts, pair counts, and similar-items lists.

Equation 5 decomposes the similarity of an item pair into three counts::

    sim(p, q) = pairCount(p, q) / (sqrt(itemCount(p)) * sqrt(itemCount(q)))

where itemCount sums user ratings (Eq 6) and pairCount sums co-ratings
(Eq 7). All three update incrementally from deltas (Eq 8). The windowed
variant buckets the deltas per time session and sums the ``W`` most
recent sessions (Eq 10), so old behaviour is forgotten wholesale.
"""

from __future__ import annotations

import math
from collections import deque

from repro.errors import AlgorithmError, ConfigurationError


def pair_key(p: str, q: str) -> tuple[str, str]:
    """Canonical unordered key for an item pair."""
    if p == q:
        raise AlgorithmError(f"an item cannot pair with itself: {p!r}")
    return (p, q) if p < q else (q, p)


class SimilarItemsList:
    """A bounded similar-items list for one item.

    Keeps at most ``k`` (item, similarity) entries; ``threshold`` is the
    smallest similarity currently needed to stay on the list — the ``t``
    of Algorithm 1. While the list is not full the threshold is zero, so
    pruning never fires for items that still have room.
    """

    def __init__(self, k: int):
        if k <= 0:
            raise ConfigurationError(f"similar-items k must be positive: {k}")
        self.k = k
        self._entries: dict[str, float] = {}

    def update(self, item: str, similarity: float):
        """Insert or refresh ``item``; evict the weakest entry if over k."""
        if item in self._entries or len(self._entries) < self.k:
            self._entries[item] = similarity
        else:
            weakest = min(self._entries, key=lambda i: (self._entries[i], i))
            if similarity > self._entries[weakest]:
                del self._entries[weakest]
                self._entries[item] = similarity
        if len(self._entries) > self.k:
            weakest = min(self._entries, key=lambda i: (self._entries[i], i))
            del self._entries[weakest]

    def remove(self, item: str):
        self._entries.pop(item, None)

    def threshold(self) -> float:
        """Min similarity needed to enter the list (0 while not full)."""
        if len(self._entries) < self.k:
            return 0.0
        return min(self._entries.values())

    def top(self, n: int | None = None) -> list[tuple[str, float]]:
        """Entries sorted by similarity descending (ties by item id)."""
        ranked = sorted(self._entries.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked if n is None else ranked[:n]

    def similarity_of(self, item: str) -> float | None:
        return self._entries.get(item)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, item: str) -> bool:
        return item in self._entries


class SimilarityTable:
    """Unwindowed incremental similarity state (Eq 5–8)."""

    def __init__(self, k: int = 20):
        self.k = k
        self._item_counts: dict[str, float] = {}
        self._pair_counts: dict[tuple[str, str], float] = {}
        self._lists: dict[str, SimilarItemsList] = {}

    # -- count updates ------------------------------------------------------

    def add_item_delta(self, item: str, delta: float, now: float = 0.0):
        """itemCount(item) += delta (the Δr_up of Eq 8)."""
        self._item_counts[item] = self._item_counts.get(item, 0.0) + delta

    def add_pair_delta(self, p: str, q: str, delta: float, now: float = 0.0):
        """pairCount(p, q) += delta (the Δco-rating of Eq 8)."""
        key = pair_key(p, q)
        self._pair_counts[key] = self._pair_counts.get(key, 0.0) + delta

    # -- reads ----------------------------------------------------------------

    def item_count(self, item: str, now: float = 0.0) -> float:
        return self._item_counts.get(item, 0.0)

    def pair_count(self, p: str, q: str, now: float = 0.0) -> float:
        return self._pair_counts.get(pair_key(p, q), 0.0)

    def similarity(self, p: str, q: str, now: float = 0.0) -> float:
        """Equation 5, evaluated from the current counts."""
        pair = self.pair_count(p, q, now)
        if pair <= 0.0:
            return 0.0
        denom = math.sqrt(self.item_count(p, now)) * math.sqrt(
            self.item_count(q, now)
        )
        if denom <= 0.0:
            return 0.0
        return pair / denom

    # -- similar-items lists ---------------------------------------------------

    def similar_items(self, item: str) -> SimilarItemsList:
        lst = self._lists.get(item)
        if lst is None:
            lst = SimilarItemsList(self.k)
            self._lists[item] = lst
        return lst

    def refresh_pair(self, p: str, q: str, now: float = 0.0) -> float:
        """Recompute sim(p, q) and refresh both items' lists; returns sim."""
        sim = self.similarity(p, q, now)
        self.similar_items(p).update(q, sim)
        self.similar_items(q).update(p, sim)
        return sim

    def top_similar(self, item: str, n: int | None = None) -> list[tuple[str, float]]:
        lst = self._lists.get(item)
        return lst.top(n) if lst is not None else []

    def threshold(self, item: str) -> float:
        lst = self._lists.get(item)
        return lst.threshold() if lst is not None else 0.0

    def known_items(self) -> list[str]:
        return sorted(self._item_counts)

    def pair_count_entries(self) -> int:
        return len(self._pair_counts)


class SessionWindowCounter:
    """A counter whose value is the sum over the ``W`` most recent sessions.

    Time is split into sessions of ``session_seconds``; deltas accumulate
    into the current session's bucket; buckets older than ``W`` sessions
    stop contributing (Eq 10's per-session itemCount_w / pairCount_w).
    """

    def __init__(self, session_seconds: float, window_sessions: int):
        if session_seconds <= 0:
            raise ConfigurationError(
                f"session_seconds must be positive: {session_seconds}"
            )
        if window_sessions <= 0:
            raise ConfigurationError(
                f"window_sessions must be positive: {window_sessions}"
            )
        self.session_seconds = session_seconds
        self.window_sessions = window_sessions
        # key -> deque[[session_index, value]] (oldest first)
        self._buckets: dict[object, deque[list]] = {}

    def _session(self, now: float) -> int:
        return int(now // self.session_seconds)

    def _evict(self, buckets: deque[list], current: int):
        floor = current - self.window_sessions + 1
        while buckets and buckets[0][0] < floor:
            buckets.popleft()

    def add(self, key: object, delta: float, now: float):
        current = self._session(now)
        buckets = self._buckets.setdefault(key, deque())
        self._evict(buckets, current)
        if buckets and buckets[-1][0] == current:
            buckets[-1][1] += delta
        else:
            buckets.append([current, delta])

    def value(self, key: object, now: float) -> float:
        buckets = self._buckets.get(key)
        if not buckets:
            return 0.0
        self._evict(buckets, self._session(now))
        return sum(value for __, value in buckets)

    def keys(self) -> list[object]:
        return list(self._buckets.keys())


class WindowedSimilarityTable(SimilarityTable):
    """Sliding-window similarity state (Eq 10).

    Same interface as :class:`SimilarityTable`, but itemCount and
    pairCount are windowed sums, so similarities drift back toward zero
    as the contributing sessions expire.
    """

    def __init__(
        self,
        k: int = 20,
        session_seconds: float = 3600.0,
        window_sessions: int = 24,
    ):
        super().__init__(k)
        self._windowed_items = SessionWindowCounter(
            session_seconds, window_sessions
        )
        self._windowed_pairs = SessionWindowCounter(
            session_seconds, window_sessions
        )

    def add_item_delta(self, item: str, delta: float, now: float = 0.0):
        self._windowed_items.add(item, delta, now)

    def add_pair_delta(self, p: str, q: str, delta: float, now: float = 0.0):
        self._windowed_pairs.add(pair_key(p, q), delta, now)

    def item_count(self, item: str, now: float = 0.0) -> float:
        return self._windowed_items.value(item, now)

    def pair_count(self, p: str, q: str, now: float = 0.0) -> float:
        return self._windowed_pairs.value(pair_key(p, q), now)

    def known_items(self) -> list[str]:
        return sorted(str(k) for k in self._windowed_items.keys())

    def pair_count_entries(self) -> int:
        return len(self._windowed_pairs.keys())
