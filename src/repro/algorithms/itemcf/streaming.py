"""The practical streaming item-based CF (Sections 4.1.2–4.1.4).

One event at a time: resolve the action's weight, take the max-weight
rating per (user, item), propagate the rating delta into itemCount, and
propagate co-rating deltas into the pairCounts of every item the user
rated within the linked time (Section 4.1.4). Similarities are refreshed
from the counts (Eq 5/8), similar-items lists are maintained, and the
Hoeffding pruner drops hopeless pairs (Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.algorithms.base import Recommender
from repro.algorithms.filtering import RecentItemsTracker
from repro.algorithms.itemcf.history import History, apply_action
from repro.algorithms.itemcf.predictor import ItemCFPredictor
from repro.algorithms.itemcf.pruning import HoeffdingPruner
from repro.algorithms.itemcf.similarity import (
    SimilarityTable,
    WindowedSimilarityTable,
)
from repro.algorithms.ratings import ActionWeights, DEFAULT_ACTION_WEIGHTS
from repro.errors import ConfigurationError
from repro.types import Recommendation, UserAction
from repro.utils.clock import SECONDS_PER_HOUR


@dataclass
class CFStats:
    """Operation counters; the pruning ablation bench reads these."""

    actions_seen: int = 0
    rating_increases: int = 0
    pair_updates: int = 0
    pruned_skips: int = 0
    linked_time_skips: int = 0


class PracticalItemCF(Recommender):
    """The paper's scalable incremental item-based CF.

    Parameters
    ----------
    weights:
        Action-type -> rating weight table (implicit feedback solution).
    k:
        Similar-items list size and prediction neighbourhood size.
    linked_time:
        Two items only form a pair if the user rated both within this many
        seconds (Section 4.1.4); e-commerce uses days, news uses hours.
    recent_k:
        Size of the real-time personalized filter (Section 4.3).
    pruner:
        Optional :class:`HoeffdingPruner`; None disables pruning.
    session_seconds / window_sessions:
        When both set, counts are kept in a sliding window (Eq 10);
        otherwise counts accumulate forever.
    """

    def __init__(
        self,
        weights: ActionWeights = DEFAULT_ACTION_WEIGHTS,
        k: int = 20,
        linked_time: float = 6 * SECONDS_PER_HOUR,
        recent_k: int = 10,
        pruner: HoeffdingPruner | None = None,
        session_seconds: float | None = None,
        window_sessions: int | None = None,
    ):
        if linked_time <= 0:
            raise ConfigurationError(f"linked_time must be positive: {linked_time}")
        if (session_seconds is None) != (window_sessions is None):
            raise ConfigurationError(
                "session_seconds and window_sessions must be set together"
            )
        self.weights = weights
        self.linked_time = linked_time
        if session_seconds is not None:
            self.table: SimilarityTable = WindowedSimilarityTable(
                k, session_seconds, window_sessions
            )
        else:
            self.table = SimilarityTable(k)
        self.pruner = pruner
        self.recent = RecentItemsTracker(recent_k)
        self.stats = CFStats()
        self._history: dict[str, History] = {}
        self.predictor = ItemCFPredictor(self.table, self.recent)

    # -- ingestion ---------------------------------------------------------------

    def observe(self, action: UserAction):
        """Process one user action tuple (the input of Algorithm 1)."""
        self.stats.actions_seen += 1
        now = action.timestamp
        item = action.item_id
        weight = self.weights.weight(action.action)
        history = self._history.setdefault(action.user_id, {})
        pruned = (
            self.pruner.pruned_for(item) if self.pruner is not None else None
        )
        update = apply_action(
            history, item, weight, now, self.linked_time, pruned
        )
        self.stats.linked_time_skips += update.skipped_stale
        self.stats.pruned_skips += update.skipped_pruned
        # the recent-items filter always refreshes: interest is interest
        self.recent.observe(action.user_id, item, update.new_rating, now)
        if not update.rating_increased:
            return
        self.stats.rating_increases += 1
        self.table.add_item_delta(item, update.item_delta, now)
        for other, delta in update.pair_deltas:
            if delta != 0.0:
                self.table.add_pair_delta(item, other, delta, now)
            similarity = self.table.refresh_pair(item, other, now)
            self.stats.pair_updates += 1
            if self.pruner is not None:
                self.pruner.observe(
                    item,
                    other,
                    similarity,
                    self.table.threshold(item),
                    self.table.threshold(other),
                )

    # -- queries -------------------------------------------------------------------

    def recommend(
        self,
        user_id: str,
        n: int,
        now: float,
        context: dict[str, Any] | None = None,
    ) -> list[Recommendation]:
        rated = set(self._history.get(user_id, ()))
        return self.predictor.predict(user_id, n, now, exclude=rated)

    def rating(self, user_id: str, item_id: str) -> float:
        entry = self._history.get(user_id, {}).get(item_id)
        return entry[0] if entry is not None else 0.0

    def user_history(self, user_id: str) -> dict[str, float]:
        return {
            item: rating
            for item, (rating, __) in self._history.get(user_id, {}).items()
        }

    def similarity(self, p: str, q: str, now: float = 0.0) -> float:
        return self.table.similarity(p, q, now)
