"""Implicit-feedback ratings (Section 4.1.2).

Explicit star ratings are rarely available in production; TencentRec maps
behaviour types to weights — e.g. a browse is worth one star, a purchase
three — and takes, per (user, item), the *maximum* weight among the
user's actions as the rating, which suppresses the noise of repeated weak
signals. The co-rating a user contributes to an item pair is the *minimum*
of the two item ratings (Equation 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, UnknownActionError


@dataclass(frozen=True)
class ActionWeights:
    """Maps action types to rating weights.

    Weights must be positive; the maximum weight defines the rating scale
    (similarity stays in [0, 1] regardless, by Equation 4).
    """

    weights: tuple[tuple[str, float], ...]

    def __post_init__(self):
        if not self.weights:
            raise ConfigurationError("ActionWeights needs at least one action")
        for action, weight in self.weights:
            if weight <= 0:
                raise ConfigurationError(
                    f"action {action!r} has non-positive weight {weight}"
                )

    @classmethod
    def of(cls, **weights: float) -> "ActionWeights":
        return cls(tuple(sorted(weights.items())))

    def weight(self, action: str) -> float:
        for name, weight in self.weights:
            if name == action:
                return weight
        raise UnknownActionError(
            f"action {action!r} has no weight; known: "
            f"{[name for name, __ in self.weights]}"
        )

    def knows(self, action: str) -> bool:
        return any(name == action for name, __ in self.weights)

    def max_weight(self) -> float:
        return max(weight for __, weight in self.weights)


DEFAULT_ACTION_WEIGHTS = ActionWeights.of(
    browse=1.0,
    click=2.0,
    read=2.0,
    share=3.0,
    comment=3.0,
    purchase=5.0,
)


def rating_from_actions(weights: ActionWeights, actions: list[str]) -> float:
    """Rating of a user for an item: the max weight among their actions."""
    if not actions:
        return 0.0
    return max(weights.weight(action) for action in actions)


def co_rating(rating_p: float, rating_q: float) -> float:
    """Equation 3: the co-rating of an item pair is the min of the ratings."""
    return min(rating_p, rating_q)
