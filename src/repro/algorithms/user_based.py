"""User-based collaborative filtering.

Section 4.1: "User-based CF methods generate recommendations based on a
few customers who are most similar to the user", and the paper picks the
item-based variant because "the empirical evidence has shown that
item-based CF method can provide better performance than the user-based
CF method". We implement the user-based method so that claim can be
tested head-to-head (see ``benchmarks/bench_ablation_user_based.py``).

The implementation mirrors the practical item-based design: implicit
max-weight ratings, min co-ratings, count-decomposed incremental
similarity — but keyed by user pairs, which is exactly why it scales
worse: the active-user pair space grows with the user base, and a user's
similarity list churns with their every action.
"""

from __future__ import annotations

import math
from typing import Any

from repro.algorithms.base import Recommender
from repro.algorithms.itemcf.similarity import SimilarItemsList, pair_key
from repro.algorithms.ratings import ActionWeights, DEFAULT_ACTION_WEIGHTS
from repro.errors import ConfigurationError
from repro.types import Recommendation, UserAction
from repro.utils.clock import SECONDS_PER_HOUR


class UserBasedCF(Recommender):
    """Incremental user-based CF on implicit feedback.

    Parameters mirror :class:`~repro.algorithms.itemcf.PracticalItemCF`:
    ``k`` is the neighbour count, ``linked_time`` bounds which of an
    item's raters pair with a new rater.
    """

    def __init__(
        self,
        weights: ActionWeights = DEFAULT_ACTION_WEIGHTS,
        k: int = 20,
        linked_time: float = 6 * SECONDS_PER_HOUR,
        max_raters_per_item: int = 200,
    ):
        if linked_time <= 0:
            raise ConfigurationError(f"linked_time must be positive: {linked_time}")
        if max_raters_per_item <= 1:
            raise ConfigurationError(
                f"max_raters_per_item must be > 1: {max_raters_per_item}"
            )
        self.weights = weights
        self.k = k
        self.linked_time = linked_time
        self.max_raters = max_raters_per_item
        # user -> {item: rating}
        self._ratings: dict[str, dict[str, float]] = {}
        self._user_counts: dict[str, float] = {}  # sum of a user's ratings
        self._pair_counts: dict[tuple[str, str], float] = {}
        # item -> recent raters [(user, timestamp)]
        self._raters: dict[str, list[tuple[str, float]]] = {}
        self._neighbours: dict[str, SimilarItemsList] = {}
        self.pair_updates = 0

    def observe(self, action: UserAction):
        user, item, now = action.user_id, action.item_id, action.timestamp
        weight = self.weights.weight(action.action)
        ratings = self._ratings.setdefault(user, {})
        old = ratings.get(item, 0.0)
        new = max(old, weight)
        if new <= old:
            self._touch_rater(item, user, now)
            return
        ratings[item] = new
        delta = new - old
        self._user_counts[user] = self._user_counts.get(user, 0.0) + delta
        raters = self._raters.setdefault(item, [])
        for other, rated_at in raters:
            if other == user or now - rated_at > self.linked_time:
                continue
            other_rating = self._ratings.get(other, {}).get(item, 0.0)
            old_co = min(old, other_rating)
            new_co = min(new, other_rating)
            if new_co != old_co:
                key = pair_key(user, other)
                self._pair_counts[key] = (
                    self._pair_counts.get(key, 0.0) + (new_co - old_co)
                )
            self._refresh_pair(user, other)
            self.pair_updates += 1
        self._touch_rater(item, user, now)

    def _touch_rater(self, item: str, user: str, now: float):
        raters = self._raters.setdefault(item, [])
        raters[:] = [(u, t) for u, t in raters if u != user]
        raters.append((user, now))
        if len(raters) > self.max_raters:
            del raters[0]

    def similarity(self, a: str, b: str) -> float:
        pair = self._pair_counts.get(pair_key(a, b), 0.0)
        if pair <= 0.0:
            return 0.0
        denominator = math.sqrt(self._user_counts.get(a, 0.0)) * math.sqrt(
            self._user_counts.get(b, 0.0)
        )
        return pair / denominator if denominator > 0 else 0.0

    def _refresh_pair(self, a: str, b: str):
        similarity = self.similarity(a, b)
        for first, second in ((a, b), (b, a)):
            neighbours = self._neighbours.get(first)
            if neighbours is None:
                neighbours = SimilarItemsList(self.k)
                self._neighbours[first] = neighbours
            neighbours.update(second, similarity)

    def neighbours_of(self, user: str) -> list[tuple[str, float]]:
        neighbours = self._neighbours.get(user)
        return neighbours.top() if neighbours is not None else []

    def recommend(
        self,
        user_id: str,
        n: int,
        now: float,
        context: dict[str, Any] | None = None,
    ) -> list[Recommendation]:
        """Score unseen items by neighbour ratings (the user-based Eq 2)."""
        own = self._ratings.get(user_id, {})
        numerator: dict[str, float] = {}
        denominator: dict[str, float] = {}
        for neighbour, stored in self.neighbours_of(user_id):
            similarity = self.similarity(user_id, neighbour)
            if similarity <= 0.0:
                continue
            for item, rating in self._ratings.get(neighbour, {}).items():
                if item in own:
                    continue
                numerator[item] = numerator.get(item, 0.0) + similarity * rating
                denominator[item] = denominator.get(item, 0.0) + similarity
        scored = sorted(
            (
                (numerator[i] / denominator[i], denominator[i], i)
                for i in numerator
            ),
            key=lambda row: (-row[0], -row[1], row[2]),
        )
        return [
            Recommendation(item, score, source="user-cf")
            for score, __, item in scored[:n]
        ]
