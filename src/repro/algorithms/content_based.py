"""The content-based (CB) algorithm (Sections 4 and 6.3).

Used where items churn too fast for CF — news, where "new items keep
appearing and the life span of items is short". Items carry tag vectors;
each user's interest profile is the time-decayed, action-weighted sum of
the tags of items they engaged with; candidates are scored by the cosine
between profile and item tags, restricted to items still alive.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any

from repro.algorithms.base import Recommender
from repro.algorithms.ratings import ActionWeights, DEFAULT_ACTION_WEIGHTS
from repro.errors import AlgorithmError, ConfigurationError
from repro.types import ItemMeta, Recommendation, UserAction


class ContentBasedRecommender(Recommender):
    """Tag-profile content-based recommendation.

    Parameters
    ----------
    half_life:
        Seconds for a profile weight to decay to half; this is what makes
        the CB model *real-time* — a burst of clicks on a topic dominates
        the profile within minutes.
    freshness_tau:
        When set, candidate scores are multiplied by a recency factor
        ``exp(-age / freshness_tau)`` (floored at 0.05). News feeds need
        this: among equally on-topic stories, the newest should rank
        first. None (the default) disables it for evergreen catalogs.
    """

    def __init__(
        self,
        weights: ActionWeights = DEFAULT_ACTION_WEIGHTS,
        half_life: float = 4 * 3600.0,
        freshness_tau: float | None = None,
    ):
        if half_life <= 0:
            raise ConfigurationError(f"half_life must be positive: {half_life}")
        if freshness_tau is not None and freshness_tau <= 0:
            raise ConfigurationError(
                f"freshness_tau must be positive: {freshness_tau}"
            )
        self.weights = weights
        self.half_life = half_life
        self.freshness_tau = freshness_tau
        self._items: dict[str, ItemMeta] = {}
        self._tag_index: dict[str, set[str]] = defaultdict(set)
        # user -> {tag: (weight, last_update)}
        self._profiles: dict[str, dict[str, tuple[float, float]]] = {}
        self._consumed: dict[str, set[str]] = defaultdict(set)

    # -- catalog ------------------------------------------------------------

    def register_item(self, meta: ItemMeta):
        """Add or replace an item in the catalog; CB must know the content."""
        if not meta.tags and meta.category is None:
            raise AlgorithmError(
                f"item {meta.item_id!r} has no tags or category; CB needs content"
            )
        old = self._items.get(meta.item_id)
        if old is not None:
            for tag in self._item_tags(old):
                self._tag_index[tag].discard(meta.item_id)
        self._items[meta.item_id] = meta
        for tag in self._item_tags(meta):
            self._tag_index[tag].add(meta.item_id)

    def _item_tags(self, meta: ItemMeta) -> tuple[str, ...]:
        tags = tuple(meta.tags)
        if meta.category is not None:
            tags = tags + (f"category:{meta.category}",)
        return tags

    def knows_item(self, item_id: str) -> bool:
        return item_id in self._items

    # -- profile updates ----------------------------------------------------

    def _decayed(self, weight: float, since: float, now: float) -> float:
        if now <= since:
            return weight
        return weight * math.pow(0.5, (now - since) / self.half_life)

    def observe(self, action: UserAction):
        meta = self._items.get(action.item_id)
        if meta is None:
            return  # unknown content: nothing to learn from
        gain = self.weights.weight(action.action)
        now = action.timestamp
        profile = self._profiles.setdefault(action.user_id, {})
        for tag in self._item_tags(meta):
            old_weight, since = profile.get(tag, (0.0, now))
            profile[tag] = (self._decayed(old_weight, since, now) + gain, now)
        self._consumed[action.user_id].add(action.item_id)

    def profile_of(self, user_id: str, now: float) -> dict[str, float]:
        """The user's current (decayed) tag weights."""
        profile = self._profiles.get(user_id, {})
        return {
            tag: self._decayed(weight, since, now)
            for tag, (weight, since) in profile.items()
        }

    # -- recommendation -------------------------------------------------------

    def recommend(
        self,
        user_id: str,
        n: int,
        now: float,
        context: dict[str, Any] | None = None,
    ) -> list[Recommendation]:
        profile = self.profile_of(user_id, now)
        if not profile:
            return []
        profile_norm = math.sqrt(sum(w * w for w in profile.values()))
        if profile_norm <= 0.0:
            return []
        consumed = self._consumed.get(user_id, set())
        scores: dict[str, float] = defaultdict(float)
        for tag, weight in profile.items():
            for item_id in self._tag_index.get(tag, ()):
                if item_id in consumed:
                    continue
                scores[item_id] += weight
        ranked: list[tuple[float, str]] = []
        for item_id, dot in scores.items():
            meta = self._items[item_id]
            if not meta.is_active(now):
                continue
            item_norm = math.sqrt(len(self._item_tags(meta)))
            score = dot / (profile_norm * item_norm)
            if self.freshness_tau is not None:
                age = max(0.0, now - meta.publish_time)
                score *= max(0.05, math.exp(-age / self.freshness_tau))
            ranked.append((score, item_id))
        ranked.sort(key=lambda row: (-row[0], row[1]))
        return [
            Recommendation(item, score, source="cb")
            for score, item in ranked[:n]
        ]
