"""Recommendation algorithms (Section 4).

The practical item-based CF of Section 4.1 is the centrepiece; the
content-based, demographic-based, association-rule and situational-CTR
algorithms round out the suite TencentRec offers applications, and the
baseline module provides the periodically-rebuilt "Original"
recommenders the paper compares against in Section 6.
"""

from repro.algorithms.base import Recommender
from repro.algorithms.ratings import ActionWeights, DEFAULT_ACTION_WEIGHTS
from repro.algorithms.itemcf import (
    BasicItemCF,
    PracticalItemCF,
    SimilarityTable,
    WindowedSimilarityTable,
    HoeffdingPruner,
    ItemCFPredictor,
)
from repro.algorithms.content_based import ContentBasedRecommender
from repro.algorithms.demographic import (
    DemographicScheme,
    DemographicRecommender,
)
from repro.algorithms.association_rules import AssociationRuleRecommender
from repro.algorithms.ctr import SituationalCTR, CTRRecommender
from repro.algorithms.filtering import RecentItemsTracker
from repro.algorithms.baseline import PeriodicRecommender
from repro.algorithms.user_based import UserBasedCF
from repro.algorithms.grouped import GroupedItemCF

__all__ = [
    "Recommender",
    "ActionWeights",
    "DEFAULT_ACTION_WEIGHTS",
    "BasicItemCF",
    "PracticalItemCF",
    "SimilarityTable",
    "WindowedSimilarityTable",
    "HoeffdingPruner",
    "ItemCFPredictor",
    "ContentBasedRecommender",
    "DemographicScheme",
    "DemographicRecommender",
    "AssociationRuleRecommender",
    "SituationalCTR",
    "CTRRecommender",
    "RecentItemsTracker",
    "PeriodicRecommender",
    "UserBasedCF",
    "GroupedItemCF",
]
