"""The demographic-based (DB) algorithm and data-sparsity fix (Section 4.2).

Users are clustered into demographic groups (gender x age band in the
default scheme); each group's hot items are tracked in a sliding window.
For new or inactive users — or whenever CF/CB cannot produce confident
results — the group's hot items complement the recommendations. Users
with no demographic information fall back to the global group, exactly
as Section 6.4 describes.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.algorithms.base import Recommender
from repro.algorithms.itemcf.similarity import SessionWindowCounter
from repro.algorithms.ratings import ActionWeights, DEFAULT_ACTION_WEIGHTS
from repro.errors import ConfigurationError
from repro.types import Recommendation, UserAction, UserProfile

GLOBAL_GROUP = "global"

AGE_BANDS: tuple[tuple[int, str], ...] = (
    (18, "age<18"),
    (25, "age18-24"),
    (35, "age25-34"),
    (50, "age35-49"),
)


def age_band(age: int | None) -> str | None:
    """Coarse age banding used by the default demographic scheme."""
    if age is None:
        return None
    for upper, label in AGE_BANDS:
        if age < upper:
            return label
    return "age50+"


class DemographicScheme:
    """Maps a user profile onto a demographic group key.

    The default clusters by gender and age band; ``attributes`` selects
    which profile fields participate. Missing attributes degrade to the
    global group.
    """

    def __init__(self, attributes: tuple[str, ...] = ("gender", "age")):
        valid = {"gender", "age", "region", "education"}
        unknown = [a for a in attributes if a not in valid]
        if unknown:
            raise ConfigurationError(
                f"unknown demographic attributes {unknown}; valid: {sorted(valid)}"
            )
        self.attributes = tuple(attributes)

    def group_of(self, profile: UserProfile | None) -> str:
        if profile is None:
            return GLOBAL_GROUP
        parts: list[str] = []
        for attribute in self.attributes:
            if attribute == "age":
                value = age_band(profile.age)
            else:
                value = getattr(profile, attribute)
            if value is None:
                return GLOBAL_GROUP
            parts.append(str(value))
        return "|".join(parts) if parts else GLOBAL_GROUP


class DemographicRecommender(Recommender):
    """Per-group hot items over a sliding window (the real-time DB).

    Parameters
    ----------
    profiles:
        Resolves a user id to their :class:`UserProfile` (or None).
    session_seconds / window_sessions:
        The hot-item window; short windows make the hot list real-time.
    """

    def __init__(
        self,
        profiles: Callable[[str], UserProfile | None],
        scheme: DemographicScheme | None = None,
        weights: ActionWeights = DEFAULT_ACTION_WEIGHTS,
        session_seconds: float = 1800.0,
        window_sessions: int = 8,
    ):
        self._profiles = profiles
        self.scheme = scheme if scheme is not None else DemographicScheme()
        self.weights = weights
        self._counts = SessionWindowCounter(session_seconds, window_sessions)
        self._group_items: dict[str, set[str]] = {}
        self._consumed: dict[str, set[str]] = {}

    def group_of_user(self, user_id: str) -> str:
        return self.scheme.group_of(self._profiles(user_id))

    def observe(self, action: UserAction):
        gain = self.weights.weight(action.action)
        now = action.timestamp
        group = self.group_of_user(action.user_id)
        for target in {group, GLOBAL_GROUP}:
            self._counts.add((target, action.item_id), gain, now)
            self._group_items.setdefault(target, set()).add(action.item_id)
        self._consumed.setdefault(action.user_id, set()).add(action.item_id)

    def hot_items(
        self, group: str, n: int, now: float
    ) -> list[tuple[str, float]]:
        """The group's top-n items by windowed engagement weight."""
        items = self._group_items.get(group, ())
        scored = [
            (self._counts.value((group, item), now), item) for item in items
        ]
        scored = [(score, item) for score, item in scored if score > 0.0]
        scored.sort(key=lambda row: (-row[0], row[1]))
        return [(item, score) for score, item in scored[:n]]

    def recommend(
        self,
        user_id: str,
        n: int,
        now: float,
        context: dict[str, Any] | None = None,
    ) -> list[Recommendation]:
        group = self.group_of_user(user_id)
        consumed = self._consumed.get(user_id, set())
        results: list[Recommendation] = []
        seen: set[str] = set()
        for source_group in (group, GLOBAL_GROUP):
            for item, score in self.hot_items(source_group, n * 2 + len(consumed), now):
                if item in consumed or item in seen:
                    continue
                results.append(Recommendation(item, score, source="db"))
                seen.add(item)
                if len(results) >= n:
                    return results
            if source_group == GLOBAL_GROUP:
                break
        return results

    def complement_fn(
        self, user_id: str, now: float
    ) -> Callable[[int], list[Recommendation]]:
        """A closure suitable for :meth:`ItemCFPredictor.predict`'s
        ``complement`` argument (the Section 4.3 DB complement)."""

        def complement(count: int) -> list[Recommendation]:
            return self.recommend(user_id, count, now)

        return complement
