"""The "Original" comparators of Section 6.

The applications TencentRec replaced served recommendations from models
rebuilt offline at fixed intervals — "the CB recommendation model is
updated once an hour" (news, Section 6.3), "the model is updated once a
day" (YiXun, Section 6.4). :class:`PeriodicRecommender` reproduces that:
events only reach the wrapped recommender when a rebuild boundary
passes, so between boundaries the model — including what it knows of
each user's history — is frozen at the last boundary.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.algorithms.base import Recommender
from repro.errors import ConfigurationError
from repro.types import Recommendation, UserAction


class PeriodicRecommender(Recommender):
    """Wraps any recommender, delaying its knowledge to rebuild boundaries.

    Parameters
    ----------
    inner:
        The wrapped recommender (e.g. a :class:`PracticalItemCF` or a
        :class:`ContentBasedRecommender` — the *algorithm* is the same;
        only the data freshness differs, which is the comparison the
        paper's evaluation makes).
    update_interval:
        Seconds between model updates (3600 for hourly, 86400 for daily).
    """

    def __init__(self, inner: Recommender, update_interval: float):
        if update_interval <= 0:
            raise ConfigurationError(
                f"update_interval must be positive: {update_interval}"
            )
        self.inner = inner
        self.update_interval = update_interval
        self._pending: deque[UserAction] = deque()
        self._last_boundary = 0.0
        self.rebuilds = 0

    def observe(self, action: UserAction):
        self._pending.append(action)

    def _maybe_rebuild(self, now: float):
        boundary = (now // self.update_interval) * self.update_interval
        if boundary <= self._last_boundary:
            return
        absorbed = 0
        while self._pending and self._pending[0].timestamp < boundary:
            self.inner.observe(self._pending.popleft())
            absorbed += 1
        self._last_boundary = boundary
        if absorbed:
            self.rebuilds += 1

    def recommend(
        self,
        user_id: str,
        n: int,
        now: float,
        context: dict[str, Any] | None = None,
    ) -> list[Recommendation]:
        self._maybe_rebuild(now)
        # queries are answered from the frozen model: note the boundary
        # time, not `now`, is what the model effectively knows
        return self.inner.recommend(user_id, n, self._last_boundary, context)

    def staleness(self, now: float) -> float:
        """Seconds of events the frozen model has not seen."""
        return max(0.0, now - self._last_boundary)
