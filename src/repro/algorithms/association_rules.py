"""The association-rule (AR) based algorithm (Section 4).

Mines pairwise rules ``i -> j`` from user sessions: support counts how
many users engaged with both items within a session horizon; confidence
is support(i, j) / support(i). Recommendations follow the rules fired by
the user's recent items, ranked by confidence with support as
tie-breaker. Counts update incrementally per event, like everything else
in TencentRec.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.base import Recommender
from repro.algorithms.itemcf.similarity import pair_key
from repro.errors import ConfigurationError
from repro.types import Recommendation, UserAction


class AssociationRuleRecommender(Recommender):
    """Streaming pairwise association rules.

    Parameters
    ----------
    session_gap:
        Two events of a user belong to one session when separated by at
        most this many seconds; co-occurrence is counted per session.
    min_support:
        Minimum number of co-occurring sessions before a rule may fire.
    min_confidence:
        Minimum confidence for a rule to produce a recommendation.
    """

    def __init__(
        self,
        session_gap: float = 1800.0,
        min_support: int = 2,
        min_confidence: float = 0.05,
    ):
        if session_gap <= 0:
            raise ConfigurationError(f"session_gap must be positive: {session_gap}")
        if min_support < 1:
            raise ConfigurationError(f"min_support must be >= 1: {min_support}")
        if not 0.0 <= min_confidence <= 1.0:
            raise ConfigurationError(
                f"min_confidence must be in [0, 1]: {min_confidence}"
            )
        self.session_gap = session_gap
        self.min_support = min_support
        self.min_confidence = min_confidence
        self._item_support: dict[str, int] = {}
        self._pair_support: dict[tuple[str, str], int] = {}
        # user -> (session items, last event time)
        self._sessions: dict[str, tuple[set[str], float]] = {}
        # co-recommendation index: item -> partner items seen with it
        self._partners: dict[str, set[str]] = {}

    def observe(self, action: UserAction):
        user, item, now = action.user_id, action.item_id, action.timestamp
        session_items, last_seen = self._sessions.get(user, (set(), now))
        if now - last_seen > self.session_gap:
            session_items = set()
        if item not in session_items:
            self._item_support[item] = self._item_support.get(item, 0) + 1
            for other in session_items:
                key = pair_key(item, other)
                self._pair_support[key] = self._pair_support.get(key, 0) + 1
                self._partners.setdefault(item, set()).add(other)
                self._partners.setdefault(other, set()).add(item)
            session_items = session_items | {item}
        self._sessions[user] = (session_items, now)

    # -- rule queries ----------------------------------------------------------

    def support(self, item: str) -> int:
        return self._item_support.get(item, 0)

    def pair_support(self, p: str, q: str) -> int:
        return self._pair_support.get(pair_key(p, q), 0)

    def confidence(self, antecedent: str, consequent: str) -> float:
        """confidence(antecedent -> consequent)."""
        base = self.support(antecedent)
        if base == 0:
            return 0.0
        return self.pair_support(antecedent, consequent) / base

    def rules_from(self, item: str) -> list[tuple[str, float, int]]:
        """Qualified rules ``item -> consequent`` as (consequent,
        confidence, support) sorted by confidence descending."""
        rules = []
        for partner in self._partners.get(item, ()):
            joint = self.pair_support(item, partner)
            if joint < self.min_support:
                continue
            conf = self.confidence(item, partner)
            if conf >= self.min_confidence:
                rules.append((partner, conf, joint))
        rules.sort(key=lambda row: (-row[1], -row[2], row[0]))
        return rules

    def recommend(
        self,
        user_id: str,
        n: int,
        now: float,
        context: dict[str, Any] | None = None,
    ) -> list[Recommendation]:
        session_items, last_seen = self._sessions.get(user_id, (set(), 0.0))
        if now - last_seen > self.session_gap:
            session_items = set()
        best: dict[str, tuple[float, int]] = {}
        for item in session_items:
            for consequent, conf, joint in self.rules_from(item):
                if consequent in session_items:
                    continue
                current = best.get(consequent)
                if current is None or (conf, joint) > current:
                    best[consequent] = (conf, joint)
        ranked = sorted(
            best.items(), key=lambda kv: (-kv[1][0], -kv[1][1], kv[0])
        )
        return [
            Recommendation(item, conf, source="ar")
            for item, (conf, __) in ranked[:n]
        ]
