"""The situational CTR algorithm (Sections 1, 4 and 5.1).

The motivating query of the introduction — "during the last ten seconds,
what is the CTR of an advertisement among the male users in Beijing aged
twenty to thirty" — is answered by windowed impression/click counters
kept per (item, situation) at every level of a situation hierarchy:
fully-specified (region, gender, age band) down to the unconditioned
item. Prediction backs off to the most specific level with enough
evidence and smooths with a Beta prior; advertisement ranking sorts
candidates by predicted CTR in the query situation.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.algorithms.base import Recommender
from repro.algorithms.demographic import age_band
from repro.algorithms.itemcf.similarity import SessionWindowCounter
from repro.errors import ConfigurationError
from repro.types import Recommendation, UserAction, UserProfile

# situation dimensions, most specific first; each entry is the tuple of
# attribute names participating at that back-off level
BACKOFF_LEVELS: tuple[tuple[str, ...], ...] = (
    ("region", "gender", "age"),
    ("region", "gender"),
    ("gender", "age"),
    ("region",),
    ("gender",),
    ("age",),
    (),
)


def situation_key(attributes: dict[str, str | None], level: tuple[str, ...]) -> str | None:
    """Render one back-off level's key; None if an attribute is missing."""
    parts = []
    for name in level:
        value = attributes.get(name)
        if value is None:
            return None
        parts.append(f"{name}={value}")
    return "&".join(parts) if parts else "any"


class SituationalCTR:
    """Windowed, hierarchically smoothed CTR statistics.

    Parameters
    ----------
    session_seconds / window_sessions:
        Real-time window for the counters (ten-second sessions answer the
        introduction's query literally).
    prior_ctr / prior_strength:
        Beta prior: prediction = (clicks + prior_ctr * prior_strength) /
        (impressions + prior_strength).
    min_impressions:
        Evidence needed before a back-off level is trusted.
    """

    def __init__(
        self,
        session_seconds: float = 60.0,
        window_sessions: int = 30,
        prior_ctr: float = 0.02,
        prior_strength: float = 20.0,
        min_impressions: float = 30.0,
    ):
        if not 0.0 < prior_ctr < 1.0:
            raise ConfigurationError(f"prior_ctr must be in (0,1): {prior_ctr}")
        if prior_strength <= 0:
            raise ConfigurationError(
                f"prior_strength must be positive: {prior_strength}"
            )
        self.prior_ctr = prior_ctr
        self.prior_strength = prior_strength
        self.min_impressions = min_impressions
        self._impressions = SessionWindowCounter(session_seconds, window_sessions)
        self._clicks = SessionWindowCounter(session_seconds, window_sessions)

    @staticmethod
    def _attributes(profile: UserProfile | None) -> dict[str, str | None]:
        if profile is None:
            return {"region": None, "gender": None, "age": None}
        return {
            "region": profile.region,
            "gender": profile.gender,
            "age": age_band(profile.age),
        }

    def _record(
        self,
        counter: SessionWindowCounter,
        item: str,
        profile: UserProfile | None,
        now: float,
    ):
        attributes = self._attributes(profile)
        for level in BACKOFF_LEVELS:
            key = situation_key(attributes, level)
            if key is not None:
                counter.add((item, key), 1.0, now)

    def record_impression(self, item: str, profile: UserProfile | None, now: float):
        self._record(self._impressions, item, profile, now)

    def record_click(self, item: str, profile: UserProfile | None, now: float):
        self._record(self._clicks, item, profile, now)

    def raw_counts(
        self, item: str, profile: UserProfile | None, now: float
    ) -> tuple[float, float]:
        """(impressions, clicks) at the most specific fully-known level."""
        attributes = self._attributes(profile)
        for level in BACKOFF_LEVELS:
            key = situation_key(attributes, level)
            if key is not None:
                return (
                    self._impressions.value((item, key), now),
                    self._clicks.value((item, key), now),
                )
        return (0.0, 0.0)

    def predict(self, item: str, profile: UserProfile | None, now: float) -> float:
        """Smoothed CTR with back-off to the first level with evidence."""
        attributes = self._attributes(profile)
        for level in BACKOFF_LEVELS:
            key = situation_key(attributes, level)
            if key is None:
                continue
            impressions = self._impressions.value((item, key), now)
            if impressions >= self.min_impressions or level == ():
                clicks = self._clicks.value((item, key), now)
                return (clicks + self.prior_ctr * self.prior_strength) / (
                    impressions + self.prior_strength
                )
        return self.prior_ctr


class CTRRecommender(Recommender):
    """Ranks candidate items (ads) by predicted situational CTR.

    ``observe`` expects ``"impression"`` and ``"click"`` actions; the
    candidate pool is every item with a recorded impression, optionally
    narrowed by a ``candidates`` iterable in the query context.
    """

    def __init__(
        self,
        profiles: Callable[[str], UserProfile | None],
        ctr: SituationalCTR | None = None,
    ):
        self._profiles = profiles
        self.ctr = ctr if ctr is not None else SituationalCTR()
        self._known_items: set[str] = set()

    def observe(self, action: UserAction):
        profile = self._profiles(action.user_id)
        if action.action == "impression":
            self.ctr.record_impression(action.item_id, profile, action.timestamp)
            self._known_items.add(action.item_id)
        elif action.action == "click":
            self.ctr.record_click(action.item_id, profile, action.timestamp)
            self._known_items.add(action.item_id)
        # other behaviour types carry no CTR signal and are ignored

    def recommend(
        self,
        user_id: str,
        n: int,
        now: float,
        context: dict[str, Any] | None = None,
    ) -> list[Recommendation]:
        profile = self._profiles(user_id)
        pool: Iterable[str] = self._known_items
        if context is not None and "candidates" in context:
            pool = context["candidates"]
        scored = [
            (self.ctr.predict(item, profile, now), item) for item in pool
        ]
        scored.sort(key=lambda row: (-row[0], row[1]))
        return [
            Recommendation(item, score, source="ctr")
            for score, item in scored[:n]
        ]
