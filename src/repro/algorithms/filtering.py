"""Real-time personalized filtering (Section 4.3).

A user's interests fade: only their most recent ``k`` rated items are
considered effective for prediction, so the ``Nk`` of Equation 2 is
redefined to the user's recent items. :class:`RecentItemsTracker` keeps
that per-user list.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError


class RecentItemsTracker:
    """Tracks, per user, the most recent ``k`` items they showed interest in.

    Re-engaging with an already-tracked item refreshes its position and
    rating instead of duplicating it.
    """

    def __init__(self, k: int = 10):
        if k <= 0:
            raise ConfigurationError(f"recent-k must be positive: {k}")
        self.k = k
        # user -> OrderedDict[item, (rating, timestamp)], oldest first
        self._recent: dict[str, OrderedDict[str, tuple[float, float]]] = {}

    def observe(self, user_id: str, item_id: str, rating: float, now: float):
        items = self._recent.setdefault(user_id, OrderedDict())
        if item_id in items:
            del items[item_id]
        items[item_id] = (rating, now)
        while len(items) > self.k:
            items.popitem(last=False)

    def recent(self, user_id: str) -> list[tuple[str, float, float]]:
        """Return (item, rating, timestamp) triples, newest first."""
        items = self._recent.get(user_id)
        if not items:
            return []
        return [
            (item, rating, ts)
            for item, (rating, ts) in reversed(items.items())
        ]

    def has_history(self, user_id: str) -> bool:
        return bool(self._recent.get(user_id))

    def forget_user(self, user_id: str):
        self._recent.pop(user_id, None)
