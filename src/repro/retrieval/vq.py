"""Streaming vector quantization over TDStore (the index side).

Online k-means in the spirit of the streaming-VQ retriever: every item
vector is assigned to its nearest centroid, the centroid takes a small
step toward the vector, and the index restructures itself online —
a centroid whose membership crosses ``split_threshold`` spawns a
sibling at the incoming vector, and a centroid drained to
``merge_floor`` folds its remainder into its nearest neighbour. All
state (centroid set, vectors, membership counts, posting lists, item
assignments) lives in TDStore, so the index rides replication,
migration, and the op journal like any other recommendation state.

**Single-writer + derived-op-id protocol.** One ``observe`` call
touches many keys, so exactly-once cannot come from one ``put_once``
alone. The contract, relied on by the chaos suite:

* The bolt driving this index runs with parallelism 1 — every VQ key
  has exactly one writing task, so the only dirty state a re-executed
  op can see is its *own* partial work.
* The item's assignment key is the op's **primary**: probed first
  (``op_seen``) and committed last (``put_once``). A replay after a
  completed op is skipped outright; a replay after a mid-op failure
  re-executes everything below.
* Every other write is idempotent under that re-execution: set-valued
  keys (meta, postings) are recomputed-and-put; counters go through the
  store's op journal with suffixed op ids (``{op}#inc`` …) so a
  re-executed increment dedups; centroid vectors commit with
  ``put_once`` on suffixed ids, so the second attempt's recompute from
  the *moved* vector is rejected and the first attempt's value stands.
* Decisions (nearest centroid, split, merge) are recomputed from
  journal-authoritative values — ``apply`` returns the committed
  result whether or not this attempt applied it — so attempt 2 reaches
  the verdict attempt 1 did even over its partial writes. Two read
  hazards are closed explicitly: a half-created sibling hijacking the
  nearest-centroid argmin (ids derived from the current op are excluded
  from the candidate set), and the op's *own* later writes to the
  chosen centroid's count (``#unsplit`` / ``#mmass``) contaminating the
  deduped ``#inc`` value — the split verdict consults those journal
  markers before it trusts the count.

Membership counts are maintained as assignment mass (+1 in, -1 out),
so ``count == len(posting)`` is an invariant; :func:`index_integrity`
checks it, along with every-row-assigned and no-orphan-postings,
after every chaos run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.retrieval.embedding import seed_vector
from repro.retrieval.keys import RetrievalKeys as K
from repro.retrieval.types import CentroidSnapshot, VQOp
from repro.topology.state import CachedStore


@dataclass(frozen=True)
class VQConfig:
    """Index structure knobs.

    ``split_threshold`` / ``merge_floor`` are membership counts:
    crossing the threshold spawns a sibling, draining to the floor
    dissolves the centroid. ``centroid_lr`` is the online k-means step.
    """

    dim: int = 16
    seed_centroids: int = 4
    max_centroids: int = 64
    min_centroids: int = 2
    split_threshold: float = 8.0
    merge_floor: float = 1.0
    centroid_lr: float = 0.2
    seed_salt: str = "vqseed"

    def __post_init__(self):
        if self.seed_centroids < self.min_centroids:
            raise ConfigurationError(
                f"seed_centroids {self.seed_centroids} below "
                f"min_centroids {self.min_centroids}"
            )
        if self.max_centroids < self.seed_centroids:
            raise ConfigurationError(
                f"max_centroids {self.max_centroids} below "
                f"seed_centroids {self.seed_centroids}"
            )
        if self.split_threshold <= self.merge_floor:
            raise ConfigurationError(
                "split_threshold must exceed merge_floor: "
                f"{self.split_threshold} <= {self.merge_floor}"
            )


def sibling_id(parent: str, token: str) -> str:
    """Deterministic id for the centroid a split spawns.

    Derived from the parent and the triggering op (never from a
    counter): a re-executed split over partial state must regenerate
    the *same* id to recognize its own half-created sibling.
    """
    digest = hashlib.blake2b(
        f"{parent}|{token}".encode("utf-8"), digest_size=4
    ).hexdigest()
    return f"{parent}~{digest}"


def _sq_dist(a: list, b: list) -> float:
    return sum((x - y) * (x - y) for x, y in zip(a, b))


class StreamingVQIndex:
    """The single-writer index state machine (see module docstring)."""

    def __init__(self, store: CachedStore, config: VQConfig | None = None):
        self._store = store
        self.cfg = config if config is not None else VQConfig()
        self.observes = 0
        self.dedup_skips = 0

    # -- journal-aware write helpers ---------------------------------------

    def _put_once(self, key: str, op_id: str | None, suffix: str, value):
        if op_id is None:
            self._store.put(key, value)
        else:
            self._store.put_once(key, op_id + suffix, value)

    def _apply(self, key: str, op_id: str | None, suffix: str, delta: float) -> float:
        if op_id is None:
            return self._store.incr(key, delta)
        value, __ = self._store.apply(key, op_id + suffix, delta)
        return value

    # -- bootstrap ----------------------------------------------------------

    def bootstrap(self) -> dict:
        """Create the seeded initial centroids if the index is empty.

        Plain idempotent puts: the seed vectors are deterministic and
        nothing can have assigned items before meta exists, so a
        re-executed bootstrap rewrites identical values.
        """
        meta = self._store.get(K.meta(), None) or {}
        if meta:
            return dict(meta)
        meta = {}
        for i in range(self.cfg.seed_centroids):
            cid = f"g{i}"
            vec = seed_vector(f"cent:{i}", self.cfg.dim, self.cfg.seed_salt)
            self._store.put(K.centroid(cid), [float(x) for x in vec])
            self._store.put(K.count(cid), 0.0)
            self._store.put(K.posting(cid), {})
            meta[cid] = True
        self._store.put(K.meta(), meta)
        return meta

    # -- reads --------------------------------------------------------------

    def _centroid_vec(self, cid: str) -> list:
        vec = self._store.get(K.centroid(cid), None)
        if vec is None:
            raise ConfigurationError(f"centroid {cid!r} has no vector")
        return vec

    def _nearest(self, candidates, vec: list) -> str:
        best, best_d = None, None
        for cid in sorted(candidates):
            d = _sq_dist(self._centroid_vec(cid), vec)
            if best_d is None or d < best_d:
                best, best_d = cid, d
        return best

    # -- the update op -------------------------------------------------------

    def observe(
        self, item: str, vec, op_id: str | None, weight: float = 1.0
    ) -> VQOp:
        """Fold one (item, vector) observation into the index."""
        vec = [float(x) for x in vec]
        akey = K.assignment(item)
        self.observes += 1
        if op_id is not None and self._store.op_seen(akey, op_id):
            self.dedup_skips += 1
            committed = self._store.get(akey, None) or {}
            return VQOp(item, op_id, committed.get("centroid", ""), deduped=True)
        meta = self.bootstrap()
        # exclude this op's own (possibly half-created) sibling ids from
        # every decision: re-execution must see the same candidate set
        # attempt 1 did
        own = (
            {sibling_id(cid, op_id) for cid in meta}
            if op_id is not None
            else set()
        )
        base = {cid for cid in meta if cid not in own}
        previous = self._store.get(akey, None)
        prev_cid = previous["centroid"] if previous else None
        if prev_cid is not None and prev_cid not in meta:
            if op_id is not None and self._store.op_seen(
                K.stat("merges"), op_id + "#stmg"
            ):
                # re-execution over this op's own committed merge: the
                # depart and merge already happened (every other exit
                # flips the assignment to a live centroid before the
                # meta discard), so keep prev_cid — the guards below
                # skip the depart and the first-assignment stat — and
                # just finish the trailing deletes the crash cut off
                self._store.delete(K.centroid(prev_cid))
                self._store.delete(K.count(prev_cid))
                self._store.delete(K.posting(prev_cid))
            else:
                prev_cid = None  # dissolved by an earlier op's merge
        best = self._nearest(base, vec)
        # learn: the chosen centroid steps toward the vector. put_once,
        # not put — a re-executed step from the already-moved vector
        # computes a different value, and the journal must reject it.
        cent = self._centroid_vec(best)
        lr = self.cfg.centroid_lr
        moved = [c + lr * (v - c) for c, v in zip(cent, vec)]
        self._put_once(K.centroid(best), op_id, "#move", moved)
        if prev_cid == best:
            # no membership change; just the learning step above
            self._put_once(akey, op_id, "", {"centroid": best})
            return VQOp(item, op_id, best, previous=prev_cid)
        in_count = self._apply(K.count(best), op_id, "#inc", weight)
        sib = sibling_id(best, op_id if op_id is not None else item)
        # The split verdict must be re-derivable over this op's own
        # partial writes, and ``in_count`` alone is not enough: once the
        # op's later journaled writes to the same key have landed
        # (``#unsplit``, or ``#mmass`` when its own merge folds mass into
        # ``best``), the deduped ``#inc`` returns the *net* value, not
        # the value the first attempt decided on. The journal markers
        # disambiguate — ``#unsplit`` is the split branch's first write,
        # and ``#mmass`` executes strictly after the verdict — so their
        # presence pins the verdict before the count is consulted.
        if op_id is not None and self._store.op_seen(
            K.count(best), op_id + "#unsplit"
        ):
            split = True
        elif op_id is not None and self._store.op_seen(
            K.count(best), op_id + "#mmass"
        ):
            split = False
        else:
            split = sib in meta or (
                in_count >= self.cfg.split_threshold
                and len(base) < self.cfg.max_centroids
            )
        split_from = None
        if split:
            # the item never really lands on the crowded centroid: undo
            # its mass (journaled, so net-zero survives replay) and
            # spawn the sibling at the incoming vector
            self._apply(K.count(best), op_id, "#unsplit", -weight)
            self._put_once(K.centroid(sib), op_id, "#scent", list(vec))
            self._put_once(K.count(sib), op_id, "#scount", weight)
            posting = dict(self._store.get(K.posting(sib), None) or {})
            posting[item] = True
            self._store.put(K.posting(sib), posting)
            meta = dict(meta)
            meta[sib] = True
            self._store.put(K.meta(), meta)
            self._apply(K.stat("splits"), op_id, "#stsp", 1.0)
            assigned, split_from = sib, best
        else:
            posting = dict(self._store.get(K.posting(best), None) or {})
            posting[item] = True
            self._store.put(K.posting(best), posting)
            assigned = best
        merged, merged_into, moved_items = None, None, ()
        if prev_cid is not None and prev_cid in base and prev_cid != assigned:
            posting = dict(self._store.get(K.posting(prev_cid), None) or {})
            posting.pop(item, None)
            self._store.put(K.posting(prev_cid), posting)
            out_count = self._apply(K.count(prev_cid), op_id, "#dec", -weight)
            self._apply(K.stat("reassignments"), op_id, "#strs", 1.0)
            if (
                out_count <= self.cfg.merge_floor
                and len(base) > self.cfg.min_centroids
            ):
                merged, merged_into, moved_items = self._merge(
                    prev_cid, base, op_id, out_count
                )
        if prev_cid is None:
            self._apply(K.stat("indexed"), op_id, "#stix", 1.0)
        self._put_once(akey, op_id, "", {"centroid": assigned})
        return VQOp(
            item,
            op_id,
            assigned,
            previous=prev_cid,
            split_from=split_from,
            merged=merged,
            merged_into=merged_into,
            moved_items=moved_items,
        )

    def _merge(self, dying: str, base: set, op_id: str | None, mass: float):
        """Dissolve ``dying`` into its nearest surviving neighbour.

        Ordered for re-execution: mass transfer and stat are journaled,
        posting union and assignment flips are idempotent puts, the
        meta discard commits the merge, and the key deletes after it
        are no-ops the second time. A replay that finds the discard
        already committed skips the whole branch (``prev_cid in base``
        fails), which is correct — everything here already happened.
        """
        target = self._nearest(base - {dying}, self._centroid_vec(dying))
        remainder = dict(self._store.get(K.posting(dying), None) or {})
        if mass > 0.0:
            self._apply(K.count(target), op_id, "#mmass", mass)
        if remainder:
            posting = dict(self._store.get(K.posting(target), None) or {})
            posting.update(remainder)
            self._store.put(K.posting(target), posting)
            for moved in sorted(remainder):
                self._store.put(K.assignment(moved), {"centroid": target})
        self._apply(K.stat("merges"), op_id, "#stmg", 1.0)
        meta = dict(self._store.get(K.meta(), None) or {})
        meta.pop(dying, None)
        self._store.put(K.meta(), meta)
        self._store.delete(K.centroid(dying))
        self._store.delete(K.count(dying))
        self._store.delete(K.posting(dying))
        return dying, target, tuple(sorted(remainder))


# -- client-side audits (read any substrate's store, no CachedStore) --------


def centroid_snapshots(client, cids=None) -> list[CentroidSnapshot]:
    """Read the full centroid set through a plain client."""
    meta = client.get(K.meta(), None) or {}
    cids = sorted(meta) if cids is None else sorted(cids)
    out = []
    for cid in cids:
        out.append(
            CentroidSnapshot(
                cid=cid,
                vec=tuple(client.get(K.centroid(cid), None) or ()),
                count=client.get(K.count(cid), 0.0),
                posting=tuple(sorted(client.get(K.posting(cid), None) or {})),
            )
        )
    return out


def index_integrity(client, items) -> dict:
    """Structural invariants; ``problems`` empty iff no key was lost.

    * every item with an embedding row has an assignment;
    * each assigned item appears in exactly its centroid's posting list
      and no other;
    * every centroid's count equals its posting size;
    * every posting entry is a known assigned item (no orphans).
    """
    problems: list[str] = []
    meta = client.get(K.meta(), None) or {}
    postings = {
        cid: dict(client.get(K.posting(cid), None) or {}) for cid in meta
    }
    assigned: dict[str, str] = {}
    for item in items:
        assignment = client.get(K.assignment(item), None)
        if assignment is None:
            if client.get(K.embedding(item), None) is not None:
                problems.append(f"row {item} has no assignment")
            continue
        cid = assignment["centroid"]
        assigned[item] = cid
        if cid not in meta:
            problems.append(f"{item} assigned to dead centroid {cid}")
            continue
        if item not in postings[cid]:
            problems.append(f"{item} missing from posting of {cid}")
        others = [c for c, p in postings.items() if item in p and c != cid]
        if others:
            problems.append(f"{item} also in postings of {others}")
    for cid in sorted(meta):
        count = client.get(K.count(cid), 0.0)
        if abs(count - len(postings[cid])) > 1e-9:
            problems.append(
                f"count of {cid} is {count}, posting size {len(postings[cid])}"
            )
        orphans = sorted(set(postings[cid]) - set(assigned))
        if orphans:
            problems.append(f"posting of {cid} has orphan items {orphans}")
    return {
        "centroids": len(meta),
        "assigned_items": len(assigned),
        "problems": problems,
    }
