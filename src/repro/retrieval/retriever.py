"""ANN-style candidate serving from the streaming VQ index.

The read path is three batched hops, all through the serving-hardened
client (so hedged reads, per-shard degradation, and deadlines apply):

1. build the query vector — one ``multi_get`` of the user's recent
   items' embedding rows, normalized mean;
2. probe — rank centroids by dot product against the query, take the
   top ``probe_width``, and ``multi_get`` their posting lists;
3. re-rank — ``multi_get`` the candidate rows and score by dot
   product, dropping already-consumed items.

A cold index (no centroids yet, or no embedded recent items for this
user) raises :class:`~repro.errors.ColdIndexError`; the front end
counts it and degrades to CF, so retrieval never blocks a serve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ColdIndexError, ConfigurationError
from repro.retrieval.keys import RetrievalKeys as K
from repro.retrieval.types import RetrievalAnswer, RetrievalStats
from repro.tdstore.client import TDStoreClient
from repro.topology.state import StateKeys
from repro.types import Recommendation


@dataclass(frozen=True)
class RetrieverConfig:
    """Read-path knobs. ``probe_width`` is the recall/latency dial the
    bench sweeps; ``recent_k`` bounds the query-vector read."""

    probe_width: int = 4
    recent_k: int = 5
    exclude_consumed: bool = True

    def __post_init__(self):
        if self.probe_width <= 0:
            raise ConfigurationError(
                f"probe_width must be positive: {self.probe_width}"
            )


class VQRetriever:
    """Nearest-centroid probe → posting lists → dot-product re-rank."""

    def __init__(
        self,
        client: TDStoreClient,
        config: RetrieverConfig | None = None,
    ):
        self._store = client
        self.cfg = config if config is not None else RetrieverConfig()
        self.stats = RetrievalStats()

    # -- query vector -------------------------------------------------------

    def query_vector(self, user_id: str) -> np.ndarray:
        """Normalized mean of the user's recent items' embedding rows."""
        recent = self._store.get(StateKeys.recent(user_id), None) or []
        items = [item for item, __, __t in recent[: self.cfg.recent_k]]
        if not items:
            raise ColdIndexError(
                f"user {user_id!r} has no recent items", reason="no_recent"
            )
        rows = self._store.multi_get([K.embedding(i) for i in items])
        vecs = [
            np.asarray(row["vec"], dtype=np.float64)
            for row in rows.values()
            if row is not None
        ]
        if not vecs:
            raise ColdIndexError(
                f"no embedded recent items for user {user_id!r}",
                reason="unembedded_user",
            )
        mean = np.mean(vecs, axis=0)
        norm = float(np.linalg.norm(mean))
        if norm <= 0.0:
            raise ColdIndexError(
                f"degenerate query vector for user {user_id!r}",
                reason="degenerate_query",
            )
        return mean / norm

    # -- the probe ----------------------------------------------------------

    def retrieve(
        self, query: np.ndarray, n: int, exclude: set[str] | None = None
    ) -> RetrievalAnswer:
        """Serve candidates for an explicit query vector."""
        self.stats.queries += 1
        meta = self._store.get(K.meta(), None) or {}
        if not meta:
            self.stats.cold_misses += 1
            raise ColdIndexError("VQ index has no centroids yet")
        cids = sorted(meta)
        cents = self._store.multi_get([K.centroid(c) for c in cids])
        ranked = sorted(
            (
                (-float(np.dot(query, np.asarray(vec, dtype=np.float64))), cid)
                for cid in cids
                if (vec := cents.get(K.centroid(cid))) is not None
            ),
        )
        probed = [cid for __, cid in ranked[: self.cfg.probe_width]]
        if not probed:
            self.stats.cold_misses += 1
            raise ColdIndexError("no centroid vectors readable")
        self.stats.probes += len(probed)
        self.stats.probe_history.append(len(probed))
        postings = self._store.multi_get([K.posting(c) for c in probed])
        exclude = exclude or set()
        candidates = sorted(
            {
                item
                for cid in probed
                for item in (postings.get(K.posting(cid)) or {})
                if item not in exclude
            }
        )
        if not candidates:
            self.stats.empty_answers += 1
            return RetrievalAnswer(probed_centroids=tuple(probed))
        rows = self._store.multi_get([K.embedding(i) for i in candidates])
        scored = sorted(
            (
                (-float(np.dot(query, np.asarray(row["vec"], dtype=np.float64))), item)
                for item in candidates
                if (row := rows.get(K.embedding(item))) is not None
            ),
        )
        self.stats.candidates_scored += len(scored)
        top = scored[:n]
        return RetrievalAnswer(
            items=tuple(item for __, item in top),
            scores=tuple(-s for s, __ in top),
            probed_centroids=tuple(probed),
            candidates_seen=len(candidates),
        )

    def recommend(self, user_id: str, n: int, now: float) -> list[Recommendation]:
        """The engine-facing entry point: top-N for a user."""
        query = self.query_vector(user_id)
        exclude: set[str] = set()
        if self.cfg.exclude_consumed:
            history = self._store.get(StateKeys.history(user_id), None) or {}
            exclude = set(history)
        answer = self.retrieve(query, n, exclude)
        return [
            Recommendation(item, score, source="vq")
            for item, score in zip(answer.items, answer.scores)
        ]


def brute_force_rank(
    client: TDStoreClient, query: np.ndarray, items, n: int,
    exclude: set[str] | None = None,
) -> list[str]:
    """Exact dot-product top-N over every row — the recall baseline.

    Probing every centroid with re-rank must converge to this ranking;
    the bench's recall@k measures how close narrow probes get.
    """
    exclude = exclude or set()
    rows = client.multi_get([K.embedding(i) for i in items])
    scored = sorted(
        (
            (-float(np.dot(query, np.asarray(row["vec"], dtype=np.float64))), item)
            for item in items
            if item not in exclude
            and (row := rows.get(K.embedding(item))) is not None
        ),
    )
    return [item for __, item in scored[:n]]


class VQIndexProbe:
    """Read-only index health reader for :class:`SystemMonitor`.

    Stats the index maintains through the op journal (splits, merges,
    reassignments, indexed items) come back exactly even under chaos
    replays; structural figures (centroid count, posting-size p99) are
    recomputed from the live key set.
    """

    def __init__(self, client: TDStoreClient):
        self._store = client

    def stats(self) -> dict:
        meta = self._store.get(K.meta(), None) or {}
        sizes = sorted(
            len(self._store.get(K.posting(cid), None) or {})
            for cid in sorted(meta)
        )
        p99 = sizes[min(len(sizes) - 1, int(len(sizes) * 0.99))] if sizes else 0
        return {
            "centroids": len(meta),
            "indexed_items": int(self._store.get(K.stat("indexed"), 0.0)),
            "reassignments": int(self._store.get(K.stat("reassignments"), 0.0)),
            "splits": int(self._store.get(K.stat("splits"), 0.0)),
            "merges": int(self._store.get(K.stat("merges"), 0.0)),
            "posting_p99": p99,
        }
