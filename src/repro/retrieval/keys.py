"""TDStore key formats for the embedding/VQ retrieval subsystem.

One place for every retrieval key, in the style of
:class:`~repro.topology.state.StateKeys`. Embedding rows are
collisionless — one ``emb:{item}`` key per item, never a hashed bucket —
so the store's op journal, migration, and replication machinery apply
per item with no cross-item interference (the Monolith argument).
"""

from __future__ import annotations


class RetrievalKeys:
    """Key-format conventions for retrieval state in TDStore."""

    @staticmethod
    def embedding(item: str) -> str:
        """Collisionless per-item embedding row."""
        return f"emb:{item}"

    @staticmethod
    def co_window(user: str) -> str:
        """Per-user recent-item window the co-click pairs derive from."""
        return f"embrecent:{user}"

    @staticmethod
    def meta() -> str:
        """The live centroid-id set — the VQ index's root object."""
        return "vq:meta"

    @staticmethod
    def centroid(cid: str) -> str:
        return f"vqcent:{cid}"

    @staticmethod
    def count(cid: str) -> str:
        """Centroid membership mass (== posting-list size by invariant)."""
        return f"vqcount:{cid}"

    @staticmethod
    def posting(cid: str) -> str:
        """Posting list: the items currently assigned to the centroid."""
        return f"vqpost:{cid}"

    @staticmethod
    def assignment(item: str) -> str:
        """The item's current centroid — the primary commit key of every
        VQ update op (probed first, committed last)."""
        return f"vqassign:{item}"

    @staticmethod
    def stat(name: str) -> str:
        """Monotone subsystem counters (reassignments, splits, merges,
        indexed), maintained through the op journal so chaos replays do
        not inflate them."""
        return f"vq:stat:{name}"
