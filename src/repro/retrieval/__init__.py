"""Embedding-based candidate retrieval served from TDStore.

A streaming vector-quantization retriever beside CF/CB/DB/AR: online
item embeddings learned from co-click pairs (one collisionless row per
item), a streaming VQ index (online k-means with split/merge and
per-centroid posting lists), exactly-once bolts that keep both
byte-identical under replays, and an ANN-style read path the engine and
front end serve through.
"""

from repro.retrieval.bolts import (
    EmbeddingPairBolt,
    EmbeddingUpdateBolt,
    RetrievalConfig,
    VQAssignBolt,
)
from repro.retrieval.embedding import (
    EmbeddingConfig,
    EmbeddingRow,
    seed_vector,
    updated_row,
)
from repro.retrieval.keys import RetrievalKeys
from repro.retrieval.retriever import (
    RetrieverConfig,
    VQIndexProbe,
    VQRetriever,
    brute_force_rank,
)
from repro.retrieval.types import (
    CentroidSnapshot,
    RetrievalAnswer,
    RetrievalStats,
    VQOp,
)
from repro.retrieval.vq import (
    StreamingVQIndex,
    VQConfig,
    centroid_snapshots,
    index_integrity,
    sibling_id,
)

__all__ = [
    "CentroidSnapshot",
    "EmbeddingConfig",
    "EmbeddingPairBolt",
    "EmbeddingRow",
    "EmbeddingUpdateBolt",
    "RetrievalAnswer",
    "RetrievalConfig",
    "RetrievalStats",
    "RetrievalKeys",
    "RetrieverConfig",
    "StreamingVQIndex",
    "VQAssignBolt",
    "VQConfig",
    "VQIndexProbe",
    "VQOp",
    "VQRetriever",
    "brute_force_rank",
    "centroid_snapshots",
    "index_integrity",
    "seed_vector",
    "sibling_id",
    "updated_row",
]
