"""Online item-embedding learning on the co-click stream.

Every item owns one collisionless row (``emb:{item}``) in TDStore. Rows
start at a deterministic seed vector and take SGD steps toward the
*seed* vector of each co-clicked partner — the partner's frozen context
vector, not its live row. Freezing the context side makes each update a
pure function of ``(own committed row, tuple)``: combined with the
same-key-same-task guarantee of fields grouping, a replayed update
recomputes byte-identical floats from the committed row, which is what
lets the exactly-once bolts converge exactly under chaos.

The geometry this learns is deliberately simple — items that co-occur
in user windows are pulled toward shared context anchors, so
co-consumed items cluster — because the subsystem's job is serving ANN
candidates from a streaming index, not beating matrix factorization.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EmbeddingConfig:
    """Knobs for the online embedding learner.

    ``lr`` decays per row as ``lr / (1 + lr_decay * updates)`` so early
    co-clicks move a cold row a lot and a well-observed row stabilizes —
    the usual streaming-SGD schedule, kept per-row because rows see
    wildly different traffic.
    """

    dim: int = 16
    lr: float = 0.35
    lr_decay: float = 0.05
    seed_salt: str = "embseed"
    context_salt: str = "embctx"

    def __post_init__(self):
        if self.dim <= 0:
            raise ConfigurationError(f"embedding dim must be positive: {self.dim}")
        if self.lr <= 0.0:
            raise ConfigurationError(f"embedding lr must be positive: {self.lr}")


def seed_vector(key: str, dim: int, salt: str = "embseed") -> np.ndarray:
    """Deterministic unit vector for ``key`` — identical across
    processes and platforms (blake2b seed, not the salted builtin hash).
    """
    digest = hashlib.blake2b(
        f"{salt}:{key}".encode("utf-8"), digest_size=8
    ).digest()
    rng = np.random.default_rng(int.from_bytes(digest, "big"))
    vec = rng.standard_normal(dim)
    return vec / np.linalg.norm(vec)


def normalize(vec: np.ndarray) -> np.ndarray:
    norm = float(np.linalg.norm(vec))
    if norm <= 0.0:
        return vec
    return vec / norm


@dataclass(frozen=True)
class EmbeddingRow:
    """One committed embedding row, as stored in TDStore.

    ``vec`` is a plain tuple of floats (not an ndarray) so the row
    pickles compactly, hashes stably, and round-trips the spawn start
    method without numpy in the loop.
    """

    item: str
    vec: tuple[float, ...]
    updates: int = 0

    def to_value(self) -> dict:
        return {"vec": list(self.vec), "updates": self.updates}

    @classmethod
    def from_value(cls, item: str, value: dict | None, cfg: EmbeddingConfig) -> "EmbeddingRow":
        if value is None:
            seed = seed_vector(item, cfg.dim, cfg.seed_salt)
            return cls(item, tuple(float(x) for x in seed), 0)
        return cls(item, tuple(float(x) for x in value["vec"]), int(value["updates"]))

    def array(self) -> np.ndarray:
        return np.asarray(self.vec, dtype=np.float64)


def updated_row(
    row: EmbeddingRow, context: str, weight: float, cfg: EmbeddingConfig
) -> EmbeddingRow:
    """One SGD step of ``row`` toward ``context``'s frozen anchor.

    Pure: the result depends only on the committed row and the tuple
    payload, never on the partner's live row — see the module docstring
    for why that is the replay-convergence contract.
    """
    anchor = seed_vector(context, cfg.dim, cfg.context_salt)
    eta = cfg.lr / (1.0 + cfg.lr_decay * row.updates)
    stepped = normalize(row.array() + eta * weight * anchor)
    return EmbeddingRow(row.item, tuple(float(x) for x in stepped), row.updates + 1)
