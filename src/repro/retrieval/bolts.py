"""Exactly-once Storm bolts for the retrieval pipeline.

Dataflow, hanging off the same ``user_action`` stream the CF layers
consume:

* :class:`EmbeddingPairBolt` (grouped by user) — keeps a small
  per-user co-click window and emits an ``emb_pair`` per co-occurrence,
  in both directions so both rows learn.
* :class:`EmbeddingUpdateBolt` (grouped by item) — owns the
  collisionless ``emb:{item}`` row; applies the SGD step and emits the
  *new* row downstream as ``emb_row``.
* :class:`VQAssignBolt` (parallelism **1** — the index's single-writer
  contract) — folds each row into the streaming VQ index.

All three follow the CF bolts' RMW commit protocol: probe the primary
key's op journal, compute on copies, emit before committing, commit
last with ``put_once``. Replayed tuples are skipped by the probe;
re-executions over partial state recompute identical results (see
``repro.retrieval.vq`` for the index's own idempotence argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.algorithms.ratings import ActionWeights, DEFAULT_ACTION_WEIGHTS
from repro.errors import ConfigurationError
from repro.retrieval.embedding import EmbeddingConfig, EmbeddingRow, updated_row
from repro.retrieval.keys import RetrievalKeys as K
from repro.retrieval.vq import StreamingVQIndex, VQConfig
from repro.storm.reliability import ExactlyOnceBolt
from repro.storm.tuples import StormTuple
from repro.tdstore.client import TDStoreClient
from repro.topology.state import CachedStore

ClientFactory = Callable[[], TDStoreClient]


@dataclass
class RetrievalConfig:
    """Topology-level knobs for the retrieval bolts.

    ``parallelism`` covers the keyed pair/update layers only; the
    assign layer is pinned to 1 by the index's single-writer contract
    regardless of this value.
    """

    embedding: EmbeddingConfig = field(default_factory=EmbeddingConfig)
    vq: VQConfig = field(default_factory=VQConfig)
    co_window: float = 3600.0
    co_k: int = 4
    parallelism: int = 2


class EmbeddingPairBolt(ExactlyOnceBolt):
    """Grouped by user: turns the action stream into co-click pairs.

    The window (``embrecent:{user}``) is deliberately separate from the
    CF recent-k list: this bolt commits it under its *own* op journal,
    so retrieval riding along never perturbs the CF bolts' journaled
    state or their chaos fingerprints.
    """

    def __init__(
        self,
        client_factory: ClientFactory,
        weights: ActionWeights = DEFAULT_ACTION_WEIGHTS,
        co_window: float = 3600.0,
        co_k: int = 4,
    ):
        super().__init__()
        self._client_factory = client_factory
        self._weights = weights
        self._co_window = co_window
        self._co_k = co_k

    def declare_outputs(self, declarer):
        declarer.declare(("item", "context", "weight"), "emb_pair")

    def prepare(self, context, collector):
        super().prepare(context, collector)
        self._store = CachedStore(self._client_factory())

    def process(self, tup: StormTuple):
        user, item, now = tup["user"], tup["item"], tup["timestamp"]
        key = K.co_window(user)
        op_id = tup.op_id
        if op_id is not None and self._store.op_seen(key, op_id):
            return
        window = list(self._store.get(key, None) or [])
        weight = self._weights.weight(tup["action"])
        if weight > 0.0:
            # emit first (derived op ids dedup downstream), commit last
            for other, ts in window:
                if other == item or now - ts > self._co_window:
                    continue
                self.collector.emit((item, other, weight), stream_id="emb_pair")
                self.collector.emit((other, item, weight), stream_id="emb_pair")
            window = [(o, t) for o, t in window if o != item]
            window.insert(0, (item, now))
            del window[self._co_k :]
        if op_id is not None:
            self._store.put_once(key, op_id, window)
        else:
            self._store.put(key, window)


class EmbeddingUpdateBolt(ExactlyOnceBolt):
    """Grouped by item: the collisionless embedding row's single writer.

    The updated row is emitted *before* the commit: a mid-update
    failure re-executes from the committed row and recomputes the same
    floats (the update is a pure function of row + tuple), while a
    replay after the commit is skipped by the probe — downstream
    already has the row from the first delivery.
    """

    def __init__(
        self,
        client_factory: ClientFactory,
        config: EmbeddingConfig | None = None,
    ):
        super().__init__()
        self._client_factory = client_factory
        self._config = config if config is not None else EmbeddingConfig()
        self.rows_updated = 0

    def declare_outputs(self, declarer):
        declarer.declare(("item", "vec"), "emb_row")

    def prepare(self, context, collector):
        super().prepare(context, collector)
        self._store = CachedStore(self._client_factory())

    def process(self, tup: StormTuple):
        item = tup["item"]
        key = K.embedding(item)
        op_id = tup.op_id
        if op_id is not None and self._store.op_seen(key, op_id):
            return
        row = EmbeddingRow.from_value(
            item, self._store.get(key, None), self._config
        )
        row = updated_row(row, tup["context"], tup["weight"], self._config)
        self.collector.emit((item, row.vec), stream_id="emb_row")
        if op_id is not None:
            self._store.put_once(key, op_id, row.to_value())
        else:
            self._store.put(key, row.to_value())
        self.rows_updated += 1


class VQAssignBolt(ExactlyOnceBolt):
    """The VQ index's single writer — must run with parallelism 1.

    All idempotence lives in :meth:`StreamingVQIndex.observe`; the bolt
    just feeds it the tuple-derived op id so a replayed row is skipped
    by the assignment-key probe even after this task's in-memory ledger
    died with it.
    """

    def __init__(
        self,
        client_factory: ClientFactory,
        config: VQConfig | None = None,
    ):
        super().__init__()
        self._client_factory = client_factory
        self._config = config if config is not None else VQConfig()

    def prepare(self, context, collector):
        super().prepare(context, collector)
        if context.num_tasks != 1:
            raise ConfigurationError(
                "VQAssignBolt is the index's single writer and must run "
                f"with parallelism 1, got {context.num_tasks} tasks"
            )
        self._index = StreamingVQIndex(
            CachedStore(self._client_factory()), self._config
        )

    @property
    def index(self) -> StreamingVQIndex:
        return self._index

    def process(self, tup: StormTuple):
        self._index.observe(tup["item"], list(tup["vec"]), tup.op_id)
