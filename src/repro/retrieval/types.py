"""Value types shared across the retrieval subsystem.

All of these cross process boundaries (spawn workers, monitoring
snapshots, test fixtures), so they are plain frozen dataclasses over
builtin containers — no ndarrays, no store handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CentroidSnapshot:
    """One centroid's full state at a point in time (probe output)."""

    cid: str
    vec: tuple[float, ...]
    count: float
    posting: tuple[str, ...]


@dataclass(frozen=True)
class VQOp:
    """What one :meth:`StreamingVQIndex.observe` call did.

    Returned to the caller (and asserted on in tests) rather than
    logged: the op record is derived state, so persisting it would just
    be a second copy of what the index keys already say.
    """

    item: str
    op_id: str | None
    assigned: str
    previous: str | None = None
    deduped: bool = False
    split_from: str | None = None
    merged: str | None = None
    merged_into: str | None = None
    moved_items: tuple[str, ...] = ()


@dataclass(frozen=True)
class RetrievalAnswer:
    """A retriever response plus how it was produced, for monitoring."""

    items: tuple[str, ...] = ()
    scores: tuple[float, ...] = ()
    probed_centroids: tuple[str, ...] = ()
    candidates_seen: int = 0


@dataclass
class RetrievalStats:
    """Mutable per-retriever counters (mirrors QueryLog's style)."""

    queries: int = 0
    cold_misses: int = 0
    candidates_scored: int = 0
    probes: int = 0
    empty_answers: int = 0
    probe_history: list[int] = field(default_factory=list)
