"""TencentRec reproduction: real-time stream recommendation in practice.

A from-scratch Python implementation of the system described in
*TencentRec: Real-time Stream Recommendation in Practice* (SIGMOD 2015):
a Storm-like stream processor (``repro.storm``), the TDAccess pub/sub
layer (``repro.tdaccess``), the TDStore distributed KV store
(``repro.tdstore``), the recommendation algorithm suite
(``repro.algorithms``) with the paper's practical incremental item-based
CF at its centre, the multi-layer topology assembly (``repro.topology``),
the query-time engine (``repro.engine``), and a synthetic-workload
evaluation harness (``repro.simulation`` / ``repro.evaluation``) that
regenerates the paper's Table 1 and Figures 10–14.

Quick start::

    from repro import PracticalItemCF, UserAction

    cf = PracticalItemCF()
    cf.observe(UserAction("alice", "movie-1", "click", timestamp=0.0))
    cf.observe(UserAction("alice", "movie-2", "click", timestamp=1.0))
    recommendations = cf.recommend("alice", n=5, now=2.0)
"""

from repro.types import (
    UserAction,
    Recommendation,
    UserProfile,
    ItemMeta,
)
from repro.algorithms import (
    Recommender,
    ActionWeights,
    DEFAULT_ACTION_WEIGHTS,
    BasicItemCF,
    PracticalItemCF,
    HoeffdingPruner,
    ContentBasedRecommender,
    DemographicRecommender,
    DemographicScheme,
    AssociationRuleRecommender,
    SituationalCTR,
    CTRRecommender,
    PeriodicRecommender,
)
from repro.utils.clock import SimClock

__version__ = "1.0.0"

__all__ = [
    "UserAction",
    "Recommendation",
    "UserProfile",
    "ItemMeta",
    "Recommender",
    "ActionWeights",
    "DEFAULT_ACTION_WEIGHTS",
    "BasicItemCF",
    "PracticalItemCF",
    "HoeffdingPruner",
    "ContentBasedRecommender",
    "DemographicRecommender",
    "DemographicScheme",
    "AssociationRuleRecommender",
    "SituationalCTR",
    "CTRRecommender",
    "PeriodicRecommender",
    "SimClock",
    "__version__",
]
