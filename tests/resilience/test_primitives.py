"""Unit tests for the resilience primitives."""

import pytest

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    OverloadError,
    RetryBudgetExhaustedError,
)
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    LoadShedder,
    RetryBudget,
    RetryPolicy,
)
from repro.utils.clock import SimClock


class TestDeadline:
    def test_remaining_tracks_clock(self):
        clock = SimClock()
        deadline = Deadline(clock.now, 2.0)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired
        deadline.check()  # still inside budget

    def test_check_raises_once_expired(self):
        clock = SimClock()
        deadline = Deadline(clock.now, 1.0)
        clock.advance(1.0)
        assert deadline.expired
        with pytest.raises(DeadlineExceededError) as err:
            deadline.check("slow read")
        assert err.value.budget == pytest.approx(1.0)
        assert err.value.elapsed >= 1.0

    def test_child_cannot_outlive_parent(self):
        clock = SimClock()
        parent = Deadline(clock.now, 1.0)
        child = parent.child(5.0)
        assert child.expires_at == parent.expires_at
        tight = parent.child(0.25)
        assert tight.remaining() == pytest.approx(0.25)

    def test_allows_costs(self):
        clock = SimClock()
        deadline = Deadline(clock.now, 1.0)
        assert deadline.allows(0.9)
        assert not deadline.allows(1.1)

    def test_nonpositive_budget_rejected(self):
        clock = SimClock()
        with pytest.raises(ConfigurationError):
            Deadline(clock.now, 0.0)


class TestRetryPolicy:
    def test_retries_until_success(self):
        clock = SimClock()
        policy = RetryPolicy(max_attempts=4, sleep=clock.advance, seed=3)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ValueError("transient")
            return "ok"

        assert policy.run(flaky, retryable=(ValueError,)) == "ok"
        assert policy.retries == 2
        assert clock.now() > 0.0  # backoff consumed simulated time

    def test_gives_up_after_max_attempts(self):
        policy = RetryPolicy(max_attempts=2)

        def always_fails():
            raise ValueError("permanent")

        with pytest.raises(ValueError):
            policy.run(always_fails, retryable=(ValueError,))
        assert policy.gave_up == 1

    def test_non_retryable_surfaces_immediately(self):
        policy = RetryPolicy(max_attempts=5)
        calls = []

        def wrong_kind():
            calls.append(1)
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            policy.run(wrong_kind, retryable=(ValueError,))
        assert len(calls) == 1

    def test_jitter_is_deterministic(self):
        a = RetryPolicy(seed=42)
        b = RetryPolicy(seed=42)
        assert [a.delay_for(i) for i in (1, 2, 3)] == [
            b.delay_for(i) for i in (1, 2, 3)
        ]

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=2.0, max_delay=3.0, seed=0
        )
        # jitter scales by [0.5, 1.0], so compare against raw bounds
        assert policy.delay_for(1) <= 1.0
        assert policy.delay_for(5) <= 3.0

    def test_deadline_stops_hopeless_backoff(self):
        clock = SimClock()
        deadline = Deadline(clock.now, 0.01)
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, sleep=clock.advance
        )

        def always_fails():
            raise ValueError("down")

        # the first backoff alone would blow the 10ms budget: the
        # underlying failure surfaces instead of sleeping into a miss
        with pytest.raises(ValueError):
            policy.run(always_fails, retryable=(ValueError,), deadline=deadline)
        assert clock.now() == 0.0

    def test_retry_budget_exhaustion(self):
        policy = RetryPolicy(max_attempts=10)
        budget = RetryBudget(ratio=0.0, initial=1.0)

        def always_fails():
            raise ValueError("down")

        # one token: first retry spends it, second is denied
        with pytest.raises(RetryBudgetExhaustedError):
            policy.run(always_fails, retryable=(ValueError,), budget=budget)
        assert budget.spent == 1
        assert budget.denied == 1

    def test_budget_refills_on_success(self):
        budget = RetryBudget(ratio=0.5, initial=0.0, max_tokens=2.0)
        assert not budget.try_spend()
        budget.record_success()
        budget.record_success()
        assert budget.try_spend()


class TestCircuitBreaker:
    def make(self, clock, threshold=3, recovery=10.0, probes=1):
        return CircuitBreaker(
            clock.now,
            failure_threshold=threshold,
            recovery_time=recovery,
            probe_count=probes,
            name="test",
        )

    def test_opens_after_consecutive_failures(self):
        clock = SimClock()
        breaker = self.make(clock)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.rejections == 1

    def test_success_resets_failure_streak(self):
        clock = SimClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_recloses(self):
        clock = SimClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe slot
        breaker.record_success()
        assert breaker.state == "closed"
        states = [(t.from_state, t.to_state) for t in breaker.transitions]
        assert states == [
            ("closed", "open"), ("open", "half_open"), ("half_open", "closed")
        ]

    def test_half_open_probe_failure_reopens(self):
        clock = SimClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 2
        # the clock has not moved since the re-open: still rejecting
        assert not breaker.allow()

    def test_call_wraps_the_state_machine(self):
        clock = SimClock()
        breaker = self.make(clock, threshold=1)
        with pytest.raises(ValueError):
            breaker.call(lambda: (_ for _ in ()).throw(ValueError("boom")))
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")


class TestLoadShedder:
    def test_capacity_bounds_admissions(self):
        clock = SimClock()
        shedder = LoadShedder(clock.now, capacity=10, window=1.0)
        admitted = sum(shedder.try_admit("high") for _ in range(15))
        assert admitted == 10
        assert shedder.shed["high"] == 5

    def test_low_priority_shed_first(self):
        clock = SimClock()
        shedder = LoadShedder(
            clock.now, capacity=10,
            thresholds={"high": 1.0, "low": 0.5},
        )
        for _ in range(5):
            assert shedder.try_admit("low")
        assert not shedder.try_admit("low")  # low cut off at 50%
        for _ in range(5):
            assert shedder.try_admit("high")  # high may fill the queue
        assert not shedder.try_admit("high")
        assert shedder.shed == {"high": 1, "low": 1}

    def test_window_rolls_with_clock(self):
        clock = SimClock()
        shedder = LoadShedder(clock.now, capacity=2, window=1.0)
        assert shedder.try_admit("high") and shedder.try_admit("high")
        assert not shedder.try_admit("high")
        clock.advance(1.0)
        assert shedder.try_admit("high")
        assert shedder.windows == 2

    def test_idle_gap_does_not_bank_slots(self):
        clock = SimClock()
        shedder = LoadShedder(clock.now, capacity=2, window=1.0)
        clock.advance(7.5)
        for _ in range(2):
            assert shedder.try_admit("high")
        assert not shedder.try_admit("high")

    def test_admit_raises_and_rates(self):
        clock = SimClock()
        shedder = LoadShedder(clock.now, capacity=1)
        shedder.admit()
        with pytest.raises(OverloadError):
            shedder.admit()
        assert shedder.shed_rate() == pytest.approx(0.5)

    def test_unknown_priority_rejected(self):
        clock = SimClock()
        shedder = LoadShedder(clock.now, capacity=1)
        with pytest.raises(ConfigurationError):
            shedder.try_admit("vip")
