"""The ISSUE acceptance scenario: serving 100% of queries through chaos.

A latency spike across the TDStore pool, one data server crashed, and
the active TDAccess master killed — all at once — while the front end
keeps answering every query within a bounded deadline. The rung
histogram proves the ladder engaged (not just that live survived), and
the store breaker's transition log proves it re-closed after recovery.
"""

from repro.engine.degraded import ServeThroughRecovery
from repro.engine.engine import EngineConfig, RecommenderEngine
from repro.recovery import Fault, FaultInjector
from repro.resilience import CircuitBreaker, LoadShedder, RetryPolicy
from repro.tdaccess.cluster import TDAccessCluster
from repro.tdstore.cluster import TDStoreCluster
from repro.topology.state import StateKeys
from repro.utils.clock import SimClock

from repro.engine.front_end import RecommenderFrontEnd

TOPIC = "user_actions"
USERS = ["u0", "u1", "u2", "u3"]
DEADLINE = 0.5
# the spike exceeds the whole per-query budget, so every op against a
# spiked server blows the deadline — consecutive failures that open the
# store breaker (a milder spike lets early ops through, and the breaker
# correctly stays closed on a mixed success/failure stream)
SPIKE = 0.6
ROUNDS = 8


def seed_state(store: TDStoreCluster):
    """Directly write the CF + demographic state the engine reads."""
    client = store.client()
    for i, user in enumerate(USERS):
        liked = f"i{i}"
        client.put(StateKeys.recent(user), [(liked, 5.0, 0.0)])
        client.put(StateKeys.history(user), {liked: 5.0})
        client.put(
            StateKeys.sim_list(liked),
            {f"i{i}-a": 0.9, f"i{i}-b": 0.8},
        )
    client.put(StateKeys.hot("global"), {"h1": 5.0, "h2": 3.0})


def build_front_end(store, access, clock):
    breaker = CircuitBreaker(
        clock.now, failure_threshold=3, recovery_time=2.0, name="tdstore"
    )
    client = store.client(
        clock=clock,
        breaker=breaker,
        retry=RetryPolicy(max_attempts=2, base_delay=0.01, sleep=clock.advance),
    )
    engine = RecommenderEngine(client, EngineConfig())
    degraded = ServeThroughRecovery(engine, in_recovery=lambda: False)
    producer = access.producer(
        retry=RetryPolicy(max_attempts=3, base_delay=0.01, sleep=clock.advance)
    )
    front_end = RecommenderFrontEnd(
        engine,
        algorithm="cf",
        feedback_producer=producer,
        feedback_topic=TOPIC,
        degraded=degraded,
        static_items=("s1", "s2"),
        deadline_budget=DEADLINE,
        clock=clock,
    )
    return front_end, client, breaker, producer


def chaos_plan(store_servers):
    plan = [Fault(2, "crash_tdstore", (1,)),
            Fault(3, "failover_tdaccess_master")]
    for server in store_servers:
        plan.append(Fault(2, "latency_spike", ("tdstore", server, SPIKE)))
        plan.append(Fault(5, "clear_degradation", ("tdstore", server)))
    plan.append(Fault(5, "recover_tdstore", (1,)))
    return plan


class TestChaosServing:
    def test_every_query_served_within_bounds(self):
        clock = SimClock()
        store = TDStoreCluster(num_data_servers=4, num_instances=16)
        access = TDAccessCluster(clock, num_data_servers=2)
        access.create_topic(TOPIC, 3)
        seed_state(store)
        front_end, client, breaker, producer = build_front_end(
            store, access, clock
        )
        injector = FaultInjector(
            chaos_plan(range(4)), tdstore=store, tdaccess=access
        )

        worst_elapsed = 0.0
        for barrier_round in range(1, ROUNDS + 1):
            injector.on_barrier(barrier_round)
            for user in USERS:
                started = clock.now()
                results = front_end.query(user, 2, clock.now())
                worst_elapsed = max(worst_elapsed, clock.now() - started)
                # the whole point: chaos never leaves a query unanswered
                assert results, (
                    f"round {barrier_round}: no answer for {user}"
                )
            clock.advance(1.0)

        log = front_end.log
        assert injector.exhausted
        assert log.queries == ROUNDS * len(USERS)
        assert log.served == log.queries
        assert log.empty == 0
        assert sum(log.rungs.values()) == log.queries

        # bounded latency: a query may overshoot its budget by at most
        # the one degraded op that blew it (plus retry backoff)
        assert worst_elapsed < DEADLINE + SPIKE + 0.1

        # the ladder engaged: live before/after the storm, degraded inside
        assert log.rungs["live"] > 0
        assert log.rungs.get("cache", 0) > 0
        assert log.degraded_fraction() > 0.0

        # the breaker opened under the spike and re-closed after recovery
        assert client.deadline_misses > 0
        assert client.breaker_rejections > 0
        assert breaker.state == "closed"
        edges = [(t.from_state, t.to_state) for t in breaker.transitions]
        assert ("closed", "open") in edges
        assert ("open", "half_open") in edges
        assert ("half_open", "closed") in edges

        # the master failover was absorbed by the feedback producer
        assert access.masters.failovers == 1
        assert producer.send_retries >= 1
        assert log.feedback_failures == 0

        # no impression was lost across the failover
        consumer = access.consumer(TOPIC)
        assert len(consumer.poll(10_000)) == producer.sent

    def test_overload_is_shed_to_the_static_rung(self):
        clock = SimClock()
        store = TDStoreCluster(num_data_servers=4, num_instances=16)
        seed_state(store)
        client = store.client(clock=clock)
        engine = RecommenderEngine(client, EngineConfig())
        shedder = LoadShedder(clock.now, capacity=4, window=1.0)
        front_end = RecommenderFrontEnd(
            engine,
            static_items=("s1", "s2"),
            shedder=shedder,
            deadline_budget=DEADLINE,
            clock=clock,
        )
        for _ in range(10):
            results = front_end.query("u0", 2, clock.now(), priority="low")
            assert results  # shed queries still get the static answer
        log = front_end.log
        assert log.shed == 8  # low priority: 50% of a 4-slot window
        assert log.rungs["static"] == 8
        assert log.rungs["live"] == 2
        assert shedder.total_shed() == 8
